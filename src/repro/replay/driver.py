"""Re-running a reconstructed journal window (the replay side).

:func:`replay` feeds a :class:`~repro.replay.log.ReplayWindow` through a
**fresh** :class:`~repro.service.service.StreamingUpdateService` and
records what the re-run produced, per settle and at the end, as a
:class:`ReplayRun` — the comparable artifact the
:class:`~repro.replay.verify.ReplayVerifier` consumes.

Two modes:

* ``"faithful"`` (default) — the window's recorded settle boundaries are
  reproduced exactly: the service runs with admission auto-cuts off
  (:attr:`~repro.service.service.ServiceConfig.autocut`), each
  :class:`~repro.replay.log.SettleGroup` is submitted payload by payload
  and then force-settled with a drain.  Per-settle observations align
  one-to-one with the recorded checkpoints, so two faithful runs under
  different configurations are comparable settle by settle.
* ``"readmit"`` — the deltas are pushed through the replayed
  configuration's *own* admission path (planner crossover, capacity,
  deadline), so settle boundaries are whatever the replayed config
  chooses.  Only the final state is comparable; this is the mode for
  "would this config have kept up / converged the same?" questions.

Any configuration axis can be overridden per run: ``SLen`` backend and
dense block size, batch plan, snapshot history depth, the label
partition, and the subscription registry itself (defaults to the
registry recorded at the window start).  What is expected to be stable
across such overrides is *semantic* state — match sets, top-k rankings,
SLen distances, graph content, lifetime stamps — not internal layout;
see ``docs/ARCHITECTURE.md`` ("Record & replay") for the exact
determinism contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.batching.planner import STRATEGY_AUTO
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.replay.log import ReplayError, ReplayWindow
from repro.service.service import (
    AlgorithmFactory,
    ServiceConfig,
    StreamingUpdateService,
    default_algorithm_factory,
)
from repro.service.subscriptions import Subscription

#: The two replay modes (see the module docstring).
MODE_FAITHFUL = "faithful"
MODE_READMIT = "readmit"
REPLAY_MODES: tuple[str, ...] = (MODE_FAITHFUL, MODE_READMIT)

#: Defaults of the observation probes: top-k depth per pattern and the
#: number of deterministic SLen probe pairs per settle.
DEFAULT_OBSERVE_K = 5
DEFAULT_SLEN_PROBES = 32

#: Ceiling on the automatic snapshot-history depth (every checkpointed
#: version retained for the final ``as_of`` sweep, up to this many).
MAX_AUTO_HISTORY = 512


def payload_doc(updates: Sequence[Update]) -> dict:
    """Serialize journal updates back to one wire delta payload.

    The inverse of what ingestion did to produce the journal record:
    deltas were accepted in deletes-before-inserts payload order, so
    splitting them back into ``deletes`` / ``inserts`` lists (each in
    recorded order) makes :class:`~repro.service.delta.UpdateData`
    lower them to exactly the recorded update sequence.
    """
    inserts: list[dict] = []
    deletes: list[dict] = []
    for update in updates:
        if isinstance(update, EdgeInsertion):
            inserts.append(
                {"type": "edge", "source": update.source, "target": update.target}
            )
        elif isinstance(update, EdgeDeletion):
            deletes.append(
                {"type": "edge", "source": update.source, "target": update.target}
            )
        elif isinstance(update, NodeInsertion):
            inserts.append(
                {
                    "type": "node",
                    "node": update.node,
                    "labels": list(update.labels),
                    "edges": [list(edge) for edge in update.edges],
                }
            )
        elif isinstance(update, NodeDeletion):
            deletes.append(
                {
                    "type": "node",
                    "node": update.node,
                    "labels": list(update.labels),
                    "edges": [list(edge) for edge in update.edges],
                }
            )
        else:
            raise ReplayError(f"cannot replay update of type {type(update).__name__}")
    return {"inserts": inserts, "deletes": deletes}


# ----------------------------------------------------------------------
# Observations — the comparable record of one re-run
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SettleObservation:
    """What one settled boundary looked like in the replayed run.

    ``recorded_seq`` / ``recorded_version`` carry the checkpoint the
    boundary reproduces (``None`` for the boundary-less window tail);
    ``version`` is the *replayed* snapshot version.  Matches, top-k and
    SLen probes are normalized to plain JSON-able structures so two
    runs compare by value regardless of backend.
    """

    index: int
    recorded_seq: Optional[int]
    recorded_version: Optional[int]
    version: int
    node_count: int
    edge_count: int
    matches: Mapping[str, Mapping[str, tuple[str, ...]]]
    top_k: Mapping[str, Mapping[str, tuple[tuple[str, float], ...]]]
    slen: tuple[tuple[str, str, Optional[float]], ...]

    def as_dict(self) -> dict:
        """JSON-able copy (benchmark artifacts, CLI reports)."""
        return {
            "index": self.index,
            "recorded_seq": self.recorded_seq,
            "recorded_version": self.recorded_version,
            "version": self.version,
            "nodes": self.node_count,
            "edges": self.edge_count,
            "matches": {
                pid: {u: list(vs) for u, vs in per.items()}
                for pid, per in self.matches.items()
            },
            "top_k": {
                pid: {u: [list(entry) for entry in entries] for u, entries in per.items()}
                for pid, per in self.top_k.items()
            },
            "slen": [list(probe) for probe in self.slen],
        }


@dataclass(frozen=True)
class FinalObservation:
    """The replayed run's end state, including the ``as_of`` sweep.

    ``as_of`` maps each retained version's *offset from latest* (0 =
    latest, 1 = one settle back, ...) to the per-pattern matches read
    through the time-travel path at that version — offsets rather than
    raw versions so runs compare even if their absolute numbering ever
    diverged.  ``history`` is the canonical lifetime-stamp document.
    """

    version: int
    nodes: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]
    history: dict
    retained_versions: tuple[int, ...]
    as_of: Mapping[int, Mapping[str, Mapping[str, tuple[str, ...]]]]

    def as_dict(self) -> dict:
        """JSON-able copy (benchmark artifacts, CLI reports)."""
        return {
            "version": self.version,
            "nodes": list(self.nodes),
            "edges": [list(edge) for edge in self.edges],
            "history": self.history,
            "retained_versions": list(self.retained_versions),
            "as_of": {
                str(offset): {
                    pid: {u: list(vs) for u, vs in per.items()}
                    for pid, per in patterns.items()
                }
                for offset, patterns in self.as_of.items()
            },
        }


@dataclass
class ReplayRun:
    """Everything one :func:`replay` invocation produced.

    ``settles`` is empty in ``"readmit"`` mode (boundaries are the
    replayed config's own and do not align with the recorded run);
    ``final`` is always present.
    """

    key: str
    mode: str
    overrides: dict
    settles: tuple[SettleObservation, ...]
    final: FinalObservation
    deltas_submitted: int = 0
    updates_accepted: int = 0
    updates_rejected: int = 0
    settle_count: int = 0
    wall_seconds: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Replayed updates settled per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.updates_accepted / self.wall_seconds

    def as_dict(self) -> dict:
        """JSON-able copy (benchmark artifacts, CLI reports)."""
        return {
            "key": self.key,
            "mode": self.mode,
            "overrides": self.overrides,
            "settles": [obs.as_dict() for obs in self.settles],
            "final": self.final.as_dict(),
            "deltas_submitted": self.deltas_submitted,
            "updates_accepted": self.updates_accepted,
            "updates_rejected": self.updates_rejected,
            "settle_count": self.settle_count,
            "wall_seconds": self.wall_seconds,
        }


# ----------------------------------------------------------------------
# Normalized reads
# ----------------------------------------------------------------------
def _normalize_matches(raw: Mapping) -> dict[str, tuple[str, ...]]:
    """Sort a ``{pattern_node: {data_nodes}}`` relation into stable form."""
    return {
        str(u): tuple(sorted(str(v) for v in vs)) for u, vs in sorted(
            raw.items(), key=lambda item: str(item[0])
        )
    }


def _observe_matches(
    service: StreamingUpdateService, key: str, as_of: Optional[int] = None
) -> dict[str, dict[str, tuple[str, ...]]]:
    """Per-pattern normalized match sets at ``as_of`` (default latest)."""
    snapshot = service.snapshot(key, as_of=as_of)
    return {
        pattern_id: _normalize_matches(snapshot.state_for(pattern_id).result.as_dict())
        for pattern_id in snapshot.pattern_ids
    }


def _observe_top_k(
    service: StreamingUpdateService, key: str, k: int
) -> dict[str, dict[str, tuple[tuple[str, float], ...]]]:
    """Per-pattern normalized top-``k`` rankings at the latest version."""
    snapshot = service.snapshot(key)
    observed: dict[str, dict[str, tuple[tuple[str, float], ...]]] = {}
    for pattern_id in snapshot.pattern_ids:
        ranking = service.top_k(key, k, pattern_id=pattern_id)
        observed[pattern_id] = {
            str(u): tuple(
                (str(entry.data_node), round(float(entry.score), 6))
                for entry in entries
            )
            for u, entries in sorted(ranking.items(), key=lambda item: str(item[0]))
        }
    return observed


def _observe_slen(
    service: StreamingUpdateService, key: str, probes: int
) -> tuple[tuple[str, str, Optional[float]], ...]:
    """Deterministic SLen probe pairs over the snapshot's node set.

    The pair set is a fixed stride walk over the sorted node list — no
    RNG, so two runs over value-equal graphs probe identical pairs.
    ``None`` encodes an unreachable pair (``INF`` is not JSON-able).
    """
    snapshot = service.snapshot(key)
    nodes = sorted(snapshot.data.nodes(), key=str)
    count = len(nodes)
    if count < 2 or probes < 1:
        return ()
    observed: list[tuple[str, str, Optional[float]]] = []
    for index in range(min(probes, count)):
        source = nodes[(index * 13) % count]
        target = nodes[(index * 7 + count // 2) % count]
        if source == target:
            continue
        distance = float(snapshot.slen.distance(source, target))
        observed.append(
            (str(source), str(target), None if distance == float("inf") else distance)
        )
    return tuple(observed)


def _observe_settle(
    service: StreamingUpdateService,
    key: str,
    index: int,
    boundary,
    observe_k: int,
    slen_probes: int,
) -> SettleObservation:
    """Freeze one settled boundary into a :class:`SettleObservation`."""
    snapshot = service.snapshot(key)
    return SettleObservation(
        index=index,
        recorded_seq=None if boundary is None else boundary.seq,
        recorded_version=None if boundary is None else boundary.version,
        version=snapshot.version,
        node_count=snapshot.data.number_of_nodes,
        edge_count=snapshot.data.number_of_edges,
        matches=_observe_matches(service, key),
        top_k=_observe_top_k(service, key, observe_k),
        slen=_observe_slen(service, key, slen_probes),
    )


def _observe_final(service: StreamingUpdateService, key: str) -> FinalObservation:
    """Freeze the run's end state, sweeping ``as_of`` over every
    retained version."""
    snapshot = service.snapshot(key)
    retained = service.stats(key)["snapshot"]["retained_versions"]
    latest = snapshot.version
    as_of: dict[int, dict[str, dict[str, tuple[str, ...]]]] = {}
    for version in retained:
        as_of[latest - version] = _observe_matches(service, key, as_of=version)
    return FinalObservation(
        version=latest,
        nodes=tuple(sorted(str(node) for node in snapshot.data.nodes())),
        edges=tuple(
            sorted((str(source), str(target)) for source, target in snapshot.data.edges())
        ),
        history=service.graph_history(key).canonical_doc(),
        retained_versions=tuple(retained),
        as_of=as_of,
    )


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
async def replay(
    window: ReplayWindow,
    *,
    key: str = "replay",
    mode: str = MODE_FAITHFUL,
    slen_backend: Optional[str] = None,
    dense_block_size: Optional[int] = None,
    batch_plan: Optional[str] = None,
    use_partition: Optional[bool] = None,
    snapshot_history: Optional[int] = None,
    subscriptions: Optional[Sequence[Any]] = None,
    deadline_seconds: float = 0.0,
    max_buffer: int = 1_000_000,
    coalesce_min_batch: Optional[int] = None,
    algorithm_factory: AlgorithmFactory = default_algorithm_factory,
    observe_k: int = DEFAULT_OBSERVE_K,
    slen_probes: int = DEFAULT_SLEN_PROBES,
) -> ReplayRun:
    """Re-run ``window`` through a fresh service; returns the
    :class:`ReplayRun` record of what happened.

    ``subscriptions`` overrides the registry recorded at the window
    start — a sequence of :class:`~repro.service.subscriptions.Subscription`
    objects or serialized docs; recorded subscribe/unsubscribe control
    records inside the window still apply on top (subscribe with
    ``replace``).  ``deadline_seconds`` / ``max_buffer`` /
    ``coalesce_min_batch`` only matter in ``"readmit"`` mode, where the
    replayed config's own admission picks the settle boundaries.  See
    the module docstring for the faithful/readmit contract.
    """
    if mode not in REPLAY_MODES:
        raise ReplayError(f"unknown replay mode {mode!r}; expected one of {REPLAY_MODES}")
    groups = window.settle_groups()
    if snapshot_history is None:
        # Retain every version the window can mint so the final as_of
        # sweep covers each checkpointed version (plus base + tail).
        snapshot_history = min(len(groups) + 2, MAX_AUTO_HISTORY)
    faithful = mode == MODE_FAITHFUL
    config = ServiceConfig(
        # Faithful mode must never cut on its own: boundaries come from
        # the recorded checkpoints, forced below with drains.
        autocut=not faithful,
        deadline_seconds=3600.0 if faithful else deadline_seconds,
        max_buffer=max_buffer,
        coalesce_min_batch=(
            ServiceConfig.coalesce_min_batch
            if coalesce_min_batch is None
            else coalesce_min_batch
        ),
        batch_plan=batch_plan or STRATEGY_AUTO,
        use_partition=ServiceConfig.use_partition if use_partition is None else use_partition,
        slen_backend=slen_backend or ServiceConfig.slen_backend,
        dense_block_size=dense_block_size,
        snapshot_history=snapshot_history,
        push_notifications=False,
    )
    overrides = {
        "mode": mode,
        "slen_backend": config.slen_backend,
        "dense_block_size": config.dense_block_size,
        "batch_plan": config.batch_plan,
        "use_partition": config.use_partition,
        "snapshot_history": config.snapshot_history,
        "subscriptions": "override" if subscriptions is not None else "recorded",
    }
    registry = _resolve_registry(window, subscriptions)
    service = StreamingUpdateService(config=config, algorithm_factory=algorithm_factory)
    run = ReplayRun(
        key=key,
        mode=mode,
        overrides=overrides,
        settles=(),
        final=None,  # type: ignore[arg-type] - set before return
    )
    started = time.perf_counter()
    try:
        await service.register(key, window.base_graph)
        for subscription in registry:
            await service.subscribe(
                key,
                subscription.pattern_id,
                subscription.pattern,
                k=subscription.k,
                replace=True,
            )
        observations: list[SettleObservation] = []
        if faithful:
            for index, group in enumerate(groups):
                await _submit_operations(service, key, group.operations, run)
                await service.drain()
                observations.append(
                    _observe_settle(
                        service, key, index, group.boundary, observe_k, slen_probes
                    )
                )
        else:
            for group in groups:
                await _submit_operations(service, key, group.operations, run)
            await service.drain()
        run.wall_seconds = time.perf_counter() - started
        run.settles = tuple(observations)
        run.final = _observe_final(service, key)
        stats = service.stats(key)
        run.settle_count = stats["settles"]
        run.stats = {
            "settles": stats["settles"],
            "accepted": stats["accepted"],
            "rejected": stats["rejected"],
            "cut_reasons": stats["cut_reasons"],
        }
    finally:
        await service.close()
    return run


def _resolve_registry(
    window: ReplayWindow, override: Optional[Sequence[Any]]
) -> list[Subscription]:
    """The subscriptions to bind before the first replayed delta."""
    if override is None:
        return [Subscription.from_doc(doc) for doc in window.subscriptions]
    resolved: list[Subscription] = []
    for entry in override:
        if isinstance(entry, Subscription):
            resolved.append(entry)
        else:
            resolved.append(Subscription.from_doc(entry))
    return resolved


async def _submit_operations(
    service: StreamingUpdateService,
    key: str,
    operations,
    run: ReplayRun,
) -> None:
    """Feed one group's delta/subscribe/unsubscribe records in order."""
    for record in operations:
        if record.kind == "delta":
            receipt = await service.submit(key, payload_doc(record.updates))
            run.deltas_submitted += 1
            run.updates_accepted += receipt.accepted
            run.updates_rejected += receipt.rejected
        elif record.kind == "subscribe":
            subscription = Subscription.from_doc(record.subscription)
            await service.subscribe(
                key,
                subscription.pattern_id,
                subscription.pattern,
                k=subscription.k,
                replace=True,
            )
        elif record.kind == "unsubscribe":
            await service.unsubscribe(key, record.pattern_id)
