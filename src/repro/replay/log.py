"""Window reconstruction over a write-ahead journal (record side).

A :class:`ReplayLog` reads one graph's journal file — the same
JSON-lines format :class:`~repro.service.journal.GraphJournal` writes —
and turns it back into a *replayable* stream: the snapshot base (graph,
version, lifetime stamps, standing-pattern registry), followed by every
``delta`` / ``subscribe`` / ``unsubscribe`` record in sequence order,
with ``checkpoint`` records marking where the recorded run's settles
landed.  :meth:`ReplayLog.window` extracts a ``[from_seq, to_seq]``
slice of that stream as a :class:`ReplayWindow`: deltas *before* the
window are folded into the window's base graph (and its registry), so a
window can start anywhere after the compaction snapshot — but never
inside it, because deltas absorbed by a snapshot no longer exist as
records (the log is *snapshot-base aware* and refuses such windows
loudly instead of replaying from the wrong state).

The reader is strictly read-only: a torn final line (a crash mid-append)
is ignored exactly as recovery would truncate it, but the file is left
untouched; malformed interior records raise
:class:`~repro.service.journal.JournalError` — a window is never
silently reconstructed around missing history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.graph.digraph import DataGraph
from repro.graph.io import data_graph_from_dict
from repro.graph.updates import Update
from repro.service.journal import (
    JournalError,
    read_journal_records,
    update_from_doc,
)


class ReplayError(RuntimeError):
    """A window that cannot be reconstructed from the journal."""


#: Record kinds a :class:`ReplayRecord` can carry (``snapshot`` records
#: become the log's base, never stream entries).
REPLAY_RECORD_KINDS: tuple[str, ...] = (
    "delta",
    "checkpoint",
    "subscribe",
    "unsubscribe",
)


@dataclass(frozen=True)
class ReplayRecord:
    """One journal record of the replayable stream.

    ``seq`` is the journal's monotone sequence number.  Checkpoints
    share the seq of the highest delta they cover (they do not consume
    the counter), so within one seq a delta sorts before its
    checkpoint; ``sort_key`` encodes that.
    """

    seq: int
    kind: str
    updates: tuple[Update, ...] = ()
    version: Optional[int] = None
    batch: Optional[int] = None
    subscription: Optional[dict] = None
    pattern_id: Optional[str] = None

    @property
    def sort_key(self) -> tuple[int, int]:
        """Deterministic stream position: by seq, checkpoint after delta."""
        return (self.seq, 1 if self.kind == "checkpoint" else 0)


@dataclass(frozen=True)
class SettleGroup:
    """One recorded settle's worth of stream operations.

    ``operations`` are the delta/subscribe/unsubscribe records between
    the previous boundary and this one; ``boundary`` is the checkpoint
    record that closed the group in the recorded run, or ``None`` for
    the stream tail past the last checkpoint (the replay driver settles
    it at window end).
    """

    operations: tuple[ReplayRecord, ...]
    boundary: Optional[ReplayRecord] = None

    @property
    def delta_count(self) -> int:
        """Number of delta payloads in the group."""
        return sum(1 for record in self.operations if record.kind == "delta")


@dataclass(frozen=True)
class ReplayWindow:
    """A ``[from_seq, to_seq]`` slice of a journal, ready to re-run.

    ``base_graph`` is the state at the window start: the journal's
    snapshot base with every pre-window delta applied (the *warmup*
    prefix), so replaying ``entries`` from it reproduces the recorded
    stream exactly.  ``subscriptions`` is the standing-pattern registry
    active at the window start (serialized docs, registration order),
    after folding the snapshot's embedded registry and every pre-window
    control record.
    """

    source: str
    from_seq: int
    to_seq: int
    base_graph: DataGraph
    base_version: int
    stamps: Optional[dict]
    subscriptions: tuple[dict, ...]
    entries: tuple[ReplayRecord, ...]
    warmup_deltas: int = 0
    torn_tail: bool = False

    @property
    def delta_count(self) -> int:
        """Number of delta payloads inside the window."""
        return sum(1 for record in self.entries if record.kind == "delta")

    @property
    def update_count(self) -> int:
        """Total updates across the window's delta payloads."""
        return sum(len(record.updates) for record in self.entries)

    @property
    def checkpoints(self) -> tuple[ReplayRecord, ...]:
        """The recorded settle boundaries inside the window."""
        return tuple(r for r in self.entries if r.kind == "checkpoint")

    def settle_groups(self) -> tuple[SettleGroup, ...]:
        """The window cut at the recorded run's settle boundaries.

        Groups are formed in *sequence* order (a checkpoint bounds every
        delta with ``seq <= checkpoint.seq``, even when the file
        interleaved later deltas before it — settles run concurrently
        with ingestion, so file order is not settle order).  Operations
        past the last checkpoint form a final boundary-less group;
        an empty window yields no groups.
        """
        ordered = sorted(self.entries, key=lambda record: record.sort_key)
        groups: list[SettleGroup] = []
        pending: list[ReplayRecord] = []
        for record in ordered:
            if record.kind == "checkpoint":
                groups.append(SettleGroup(operations=tuple(pending), boundary=record))
                pending = []
            else:
                pending.append(record)
        if pending:
            groups.append(SettleGroup(operations=tuple(pending), boundary=None))
        return tuple(groups)

    def describe(self) -> dict:
        """A JSON-able summary (the CLI's ``replay`` banner)."""
        return {
            "source": self.source,
            "from_seq": self.from_seq,
            "to_seq": self.to_seq,
            "deltas": self.delta_count,
            "updates": self.update_count,
            "checkpoints": len(self.checkpoints),
            "warmup_deltas": self.warmup_deltas,
            "base_version": self.base_version,
            "base_nodes": self.base_graph.number_of_nodes,
            "base_edges": self.base_graph.number_of_edges,
            "subscriptions": [doc["pattern_id"] for doc in self.subscriptions],
            "torn_tail": self.torn_tail,
        }


class ReplayLog:
    """The replayable view of one graph's journal file.

    Parsing happens eagerly in the constructor; the instance then holds
    the snapshot base and the full record stream, and
    :meth:`window` slices it.  Raises
    :class:`~repro.service.journal.JournalError` on interior corruption
    and :class:`ReplayError` on an unusable file (e.g. empty).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        """Parse the journal at ``path`` (read-only)."""
        self.path = Path(path)
        if not self.path.exists():
            raise ReplayError(f"journal file {self.path} does not exist")
        self.base_graph: Optional[DataGraph] = None
        self.base_seq: int = 0
        self.base_version: int = 0
        self.stamps: Optional[dict] = None
        self.base_subscriptions: dict[str, dict] = {}
        self.records: tuple[ReplayRecord, ...] = ()
        self.last_seq: int = 0
        self.torn_tail: bool = False
        self.dropped_duplicates: int = 0
        self._parse()

    @classmethod
    def discover(cls, directory: Union[str, Path]) -> dict[str, Path]:
        """Journal files in ``directory``, keyed by graph slug.

        The slug is the filesystem-safe stem
        :func:`~repro.service.journal.journal_slug` wrote; for keys that
        were already filesystem-safe it *is* the graph key.
        """
        directory = Path(directory)
        found: dict[str, Path] = {}
        if not directory.is_dir():
            return found
        for path in sorted(directory.glob("*.journal.jsonl")):
            found[path.name[: -len(".journal.jsonl")]] = path
        return found

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    def _parse(self) -> None:
        raw_records, torn, _good_bytes = read_journal_records(self.path)
        self.torn_tail = torn
        stream: list[ReplayRecord] = []
        seen_deltas: set[int] = set()
        for position, record in enumerate(raw_records):
            try:
                self._fold(record, stream, seen_deltas)
            except JournalError as exc:
                raise JournalError(
                    f"corrupt journal record at line {position + 1} of {self.path}: {exc}"
                ) from exc
        self.records = tuple(stream)

    def _fold(
        self, record: dict, stream: list[ReplayRecord], seen_deltas: set[int]
    ) -> None:
        kind = record.get("t")
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise JournalError(f"record lacks an integer seq: {record!r}")
        self.last_seq = max(self.last_seq, seq)
        if kind == "snapshot":
            self.base_graph = data_graph_from_dict(record["graph"])
            self.base_seq = seq
            self.base_version = int(record.get("version", 0))
            stamps = record.get("stamps")
            self.stamps = stamps if isinstance(stamps, dict) else None
            embedded = record.get("subscriptions", [])
            if not isinstance(embedded, list):
                raise JournalError(f"snapshot subscriptions must be a list: {record!r}")
            self.base_subscriptions = {}
            for doc in embedded:
                if not isinstance(doc, dict) or "pattern_id" not in doc:
                    raise JournalError(f"malformed snapshot subscription {doc!r}")
                self.base_subscriptions[doc["pattern_id"]] = doc
            # Records at or before the snapshot are inside it; a
            # mid-file snapshot (never written by compaction, but legal
            # in the format) absorbs everything before it.
            absorbed = [r for r in stream if r.seq <= seq]
            self.dropped_duplicates += sum(1 for r in absorbed if r.kind == "delta")
            stream[:] = [r for r in stream if r.seq > seq]
            seen_deltas.difference_update(
                s for s in tuple(seen_deltas) if s <= seq
            )
        elif kind == "delta":
            if seq in seen_deltas or seq <= self.base_seq:
                self.dropped_duplicates += 1
                return
            updates = record.get("updates")
            if not isinstance(updates, list):
                raise JournalError(f"delta record lacks an updates list: {record!r}")
            seen_deltas.add(seq)
            stream.append(
                ReplayRecord(
                    seq=seq,
                    kind="delta",
                    updates=tuple(update_from_doc(doc) for doc in updates),
                )
            )
        elif kind == "checkpoint":
            stream.append(
                ReplayRecord(
                    seq=seq,
                    kind="checkpoint",
                    version=int(record.get("version", 0)),
                    batch=record.get("batch"),
                )
            )
        elif kind == "subscribe":
            doc = record.get("sub")
            if not isinstance(doc, dict) or "pattern_id" not in doc:
                raise JournalError(f"malformed subscribe record {record!r}")
            stream.append(ReplayRecord(seq=seq, kind="subscribe", subscription=doc))
        elif kind == "unsubscribe":
            pattern_id = record.get("pattern_id")
            if not isinstance(pattern_id, str):
                raise JournalError(f"malformed unsubscribe record {record!r}")
            stream.append(ReplayRecord(seq=seq, kind="unsubscribe", pattern_id=pattern_id))
        else:
            raise JournalError(f"unknown journal record type {kind!r}")

    # ------------------------------------------------------------------
    # Window extraction
    # ------------------------------------------------------------------
    def window(
        self,
        from_seq: Optional[int] = None,
        to_seq: Optional[int] = None,
        *,
        base_graph: Optional[DataGraph] = None,
    ) -> ReplayWindow:
        """Extract the ``[from_seq, to_seq]`` slice as a :class:`ReplayWindow`.

        ``from_seq`` defaults to the first record past the snapshot
        base; ``to_seq`` to the last recorded seq.  Records before
        ``from_seq`` are folded into the window's base (deltas applied
        to the graph in sequence order, control records folded into the
        registry); records after ``to_seq`` are dropped.  ``base_graph``
        supplies the starting graph for journals *without* a snapshot
        record (a service journal before its first compaction starts
        from the graph the caller registered, which the journal never
        saw); it is ignored when the journal carries its own base.
        Raises :class:`ReplayError` when the window reaches into the
        snapshot base (those deltas were compacted away and cannot be
        replayed) or is otherwise empty/inverted.
        """
        start = self.base_seq + 1 if from_seq is None else int(from_seq)
        end = self.last_seq if to_seq is None else int(to_seq)
        if start <= self.base_seq:
            raise ReplayError(
                f"window starts at seq {start}, inside the compaction snapshot "
                f"(base seq {self.base_seq}): deltas at or before the base were "
                "absorbed into the snapshot and no longer exist as records"
            )
        if end < start:
            raise ReplayError(f"empty window: from_seq {start} > to_seq {end}")
        base = self.base_graph.copy() if self.base_graph is not None else None
        if base is None and base_graph is not None:
            base = base_graph.copy()
        registry: dict[str, dict] = dict(self.base_subscriptions)
        warmup = 0
        entries: list[ReplayRecord] = []
        for record in sorted(self.records, key=lambda r: r.sort_key):
            if record.seq < start:
                if record.kind == "delta":
                    if base is None:
                        raise ReplayError(
                            f"window starts at seq {start} but the journal has no "
                            f"snapshot base to warm up from before seq {record.seq}"
                        )
                    for update in record.updates:
                        update.apply(base)
                    warmup += 1
                elif record.kind == "subscribe":
                    registry[record.subscription["pattern_id"]] = record.subscription
                elif record.kind == "unsubscribe":
                    registry.pop(record.pattern_id, None)
                continue
            if record.seq > end:
                continue
            entries.append(record)
        if base is None:
            raise ReplayError(
                f"journal {self.path} has no snapshot base: replay needs the "
                "graph the recorded run started from (journals hold one after "
                "the first compaction and live captures always start with one; "
                "for a pre-compaction journal pass base_graph=<the registered "
                "graph>)"
            )
        return ReplayWindow(
            source=str(self.path),
            from_seq=start,
            to_seq=end,
            base_graph=base,
            base_version=self.base_version,
            stamps=self.stamps,
            subscriptions=tuple(registry.values()),
            entries=tuple(entries),
            warmup_deltas=warmup,
            torn_tail=self.torn_tail,
        )
