"""Deterministic record & replay over the write-ahead journal.

The journal (PR 7) already records everything a run *did* — every
accepted delta in admission order, every settle boundary (checkpoint),
every subscription change.  This package closes the loop and re-runs
it: :class:`ReplayLog` reconstructs a ``[from_seq, to_seq]`` window as
a deterministic delta stream with the original settle boundaries,
:func:`replay` drives that window through a fresh service under any
configuration override, and :class:`ReplayVerifier` differentially
compares runs — turning any captured trace into a correctness oracle
(see ``docs/ARCHITECTURE.md``, "Record & replay").
"""

from repro.replay.driver import (
    DEFAULT_OBSERVE_K,
    DEFAULT_SLEN_PROBES,
    MODE_FAITHFUL,
    MODE_READMIT,
    REPLAY_MODES,
    FinalObservation,
    ReplayRun,
    SettleObservation,
    payload_doc,
    replay,
)
from repro.replay.log import (
    ReplayError,
    ReplayLog,
    ReplayRecord,
    ReplayWindow,
    SettleGroup,
)
from repro.replay.verify import (
    Mismatch,
    ReplayVerifier,
    VerificationReport,
    verify_window,
)

__all__ = [
    "DEFAULT_OBSERVE_K",
    "DEFAULT_SLEN_PROBES",
    "MODE_FAITHFUL",
    "MODE_READMIT",
    "REPLAY_MODES",
    "FinalObservation",
    "Mismatch",
    "ReplayError",
    "ReplayLog",
    "ReplayRecord",
    "ReplayRun",
    "ReplayVerifier",
    "ReplayWindow",
    "SettleGroup",
    "SettleObservation",
    "VerificationReport",
    "payload_doc",
    "replay",
    "verify_window",
]
