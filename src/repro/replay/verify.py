"""Differential verification of replayed runs (the oracle side).

The journal records *inputs* (deltas, boundaries, control records), not
answers — so "the recorded run" is reconstructed by a **faithful replay
under the recorded configuration**, and that reference run is compared
against candidate replays under overridden configurations.  Equality of
the normalized observations is the correctness oracle: a sparse↔dense
backend swap or a batch-plan change that alters any match set, top-k
ranking, SLen distance, lifetime stamp, or ``as_of`` read is a bug in
whichever side diverged.

:class:`ReplayVerifier` compares two :class:`~repro.replay.driver.ReplayRun`
records settle-by-settle (faithful candidates) or final-state-only
(re-admitted candidates, whose boundaries are their own) and returns a
structured :class:`VerificationReport`; :func:`verify_window` is the
one-call wrapper the CLI and benchmark use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.replay.driver import MODE_FAITHFUL, ReplayRun, replay
from repro.replay.log import ReplayWindow

#: Longest repr kept for one side of a mismatch — reports stay readable
#: even when a whole match relation diverges.
MAX_DETAIL_CHARS = 400


def _clip(value: object) -> str:
    text = repr(value)
    if len(text) > MAX_DETAIL_CHARS:
        return text[: MAX_DETAIL_CHARS - 3] + "..."
    return text


@dataclass(frozen=True)
class Mismatch:
    """One observed divergence between the reference and a candidate."""

    kind: str
    location: str
    expected: str
    actual: str

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "location": self.location,
            "expected": self.expected,
            "actual": self.actual,
        }

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.location}: "
            f"expected {self.expected}, got {self.actual}"
        )


@dataclass
class VerificationReport:
    """The structured outcome of one reference-vs-candidate comparison."""

    reference: dict
    candidate: dict
    mismatches: tuple[Mismatch, ...] = ()
    settles_compared: int = 0
    patterns_compared: int = 0
    slen_probes_compared: int = 0
    as_of_versions_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "reference": self.reference,
            "candidate": self.candidate,
            "mismatches": [mismatch.as_dict() for mismatch in self.mismatches],
            "settles_compared": self.settles_compared,
            "patterns_compared": self.patterns_compared,
            "slen_probes_compared": self.slen_probes_compared,
            "as_of_versions_compared": self.as_of_versions_compared,
        }

    def summary(self) -> str:
        """One human line per divergence (or the all-clear)."""
        header = (
            f"{'OK' if self.ok else f'{len(self.mismatches)} MISMATCH(ES)'} — "
            f"{self.settles_compared} settle(s), "
            f"{self.patterns_compared} pattern state(s), "
            f"{self.slen_probes_compared} slen probe(s), "
            f"{self.as_of_versions_compared} as_of version(s) compared"
        )
        lines = [header]
        lines.extend(mismatch.describe() for mismatch in self.mismatches)
        return "\n".join(lines)


class ReplayVerifier:
    """Compares two replayed runs of the same window observation-by-observation."""

    def compare(self, reference: ReplayRun, candidate: ReplayRun) -> VerificationReport:
        """Differential comparison; the reference side is the oracle.

        Per-settle observations are compared only when the candidate
        ran faithfully (a re-admitted run's boundaries are its own);
        final graph content and the latest match sets are always
        compared, while the version-indexed observations — lifetime
        stamps and the retained ``as_of`` sweep — are restricted to
        faithful pairs (a re-admitted run has its own version timeline).
        """
        report = VerificationReport(
            reference=dict(reference.overrides), candidate=dict(candidate.overrides)
        )
        found: list[Mismatch] = []
        if candidate.mode == MODE_FAITHFUL and reference.mode == MODE_FAITHFUL:
            self._compare_settles(reference, candidate, report, found)
        self._compare_final(reference, candidate, report, found)
        report.mismatches = tuple(found)
        return report

    # ------------------------------------------------------------------
    def _compare_settles(
        self,
        reference: ReplayRun,
        candidate: ReplayRun,
        report: VerificationReport,
        found: list[Mismatch],
    ) -> None:
        if len(reference.settles) != len(candidate.settles):
            found.append(
                Mismatch(
                    kind="settle.count",
                    location="run",
                    expected=_clip(len(reference.settles)),
                    actual=_clip(len(candidate.settles)),
                )
            )
            return
        for expected, actual in zip(reference.settles, candidate.settles):
            where = f"settle {expected.index}"
            if expected.recorded_seq is not None:
                where += f" (recorded seq {expected.recorded_seq})"
            report.settles_compared += 1
            self._field(found, "settle.version", where, expected.version, actual.version)
            self._field(found, "settle.nodes", where, expected.node_count, actual.node_count)
            self._field(found, "settle.edges", where, expected.edge_count, actual.edge_count)
            self._patterns(found, report, "settle", where, expected.matches, actual.matches)
            for pattern_id in expected.top_k.keys() & actual.top_k.keys():
                self._field(
                    found,
                    "settle.top_k",
                    f"{where}, pattern {pattern_id!r}",
                    expected.top_k[pattern_id],
                    actual.top_k[pattern_id],
                )
            report.slen_probes_compared += len(expected.slen)
            self._field(found, "settle.slen", where, expected.slen, actual.slen)

    def _compare_final(
        self,
        reference: ReplayRun,
        candidate: ReplayRun,
        report: VerificationReport,
        found: list[Mismatch],
    ) -> None:
        expected, actual = reference.final, candidate.final
        faithful_pair = (
            candidate.mode == MODE_FAITHFUL and reference.mode == MODE_FAITHFUL
        )
        self._field(found, "final.nodes", "final", expected.nodes, actual.nodes)
        self._field(found, "final.edges", "final", expected.edges, actual.edges)
        # Lifetime stamps are *version*-indexed, and a re-admitted run
        # picks its own settle cadence (its own version timeline), so
        # history is only comparable between faithful runs — like the
        # as_of sweep below.
        if faithful_pair:
            self._field(
                found, "final.history", "final", expected.history, actual.history
            )
        self._patterns(
            found,
            report,
            "final.matches",
            "final",
            expected.as_of.get(0, {}),
            actual.as_of.get(0, {}),
        )
        # as_of sweep: compare every offset both runs retained.  A
        # re-admitted candidate settles on its own cadence, so offsets
        # denote different cut points there — restrict to faithful pairs.
        if faithful_pair:
            shared = sorted(set(expected.as_of) & set(actual.as_of))
            for offset in shared:
                if offset == 0:
                    continue  # already compared above
                report.as_of_versions_compared += 1
                self._patterns(
                    found,
                    report,
                    "final.as_of",
                    f"as_of latest-{offset}",
                    expected.as_of[offset],
                    actual.as_of[offset],
                )
            missing = set(expected.as_of) - set(actual.as_of)
            if missing:
                found.append(
                    Mismatch(
                        kind="final.as_of.retention",
                        location="final",
                        expected=_clip(sorted(expected.as_of)),
                        actual=_clip(sorted(actual.as_of)),
                    )
                )

    # ------------------------------------------------------------------
    def _patterns(
        self,
        found: list[Mismatch],
        report: VerificationReport,
        kind: str,
        where: str,
        expected,
        actual,
    ) -> None:
        """Compare two ``{pattern_id: matches}`` maps key-by-key."""
        if set(expected) != set(actual):
            found.append(
                Mismatch(
                    kind=f"{kind}.patterns",
                    location=where,
                    expected=_clip(sorted(expected)),
                    actual=_clip(sorted(actual)),
                )
            )
            return
        for pattern_id in expected:
            report.patterns_compared += 1
            self._field(
                found,
                f"{kind}.matches" if not kind.endswith("matches") else kind,
                f"{where}, pattern {pattern_id!r}",
                expected[pattern_id],
                actual[pattern_id],
            )

    @staticmethod
    def _field(
        found: list[Mismatch], kind: str, where: str, expected, actual
    ) -> None:
        if expected != actual:
            found.append(
                Mismatch(
                    kind=kind,
                    location=where,
                    expected=_clip(expected),
                    actual=_clip(actual),
                )
            )


async def verify_window(
    window: ReplayWindow,
    candidates: Sequence[dict],
    *,
    reference_overrides: Optional[dict] = None,
    key: str = "replay",
) -> tuple[ReplayRun, list[tuple[ReplayRun, VerificationReport]]]:
    """Replay ``window`` once as reference, then verify each candidate.

    ``candidates`` is a list of keyword-argument dicts for
    :func:`~repro.replay.driver.replay` (e.g. ``{"slen_backend":
    "dense"}`` or ``{"batch_plan": "coalesced", "mode": "readmit"}``);
    the reference runs faithfully under ``reference_overrides``
    (default: the recorded configuration).  Returns the reference run
    and one ``(candidate_run, report)`` pair per candidate.
    """
    verifier = ReplayVerifier()
    reference = await replay(window, key=key, **(reference_overrides or {}))
    outcomes: list[tuple[ReplayRun, VerificationReport]] = []
    for overrides in candidates:
        candidate = await replay(window, key=key, **overrides)
        outcomes.append((candidate, verifier.compare(reference, candidate)))
    return reference, outcomes
