"""Detection of elimination relationships (DER-I, DER-II, DER-III).

The detectors operate on the per-update candidate sets
(:class:`~repro.matching.candidates.CandidateSet`) and affected sets
(:class:`~repro.matching.affected.AffectedSet`) and implement the
coverage checks of Algorithms 1–3:

* **DER-I** (:func:`detect_type_i`): two pattern updates of the same
  direction (both insertions or both deletions) where one's candidate set
  contains the other's;
* **DER-II** (:func:`detect_type_ii`): two data updates where one's
  affected-node set contains the other's;
* **DER-III** (:func:`detect_type_iii`): a data update whose affected set
  covers a pattern edge insertion's candidate set *and* whose updated
  shortest path lengths already satisfy the inserted bound for every
  candidate pair — the updates cancel out (Example 9).

:func:`detect_all` bundles the three passes and returns an
:class:`EliminationAnalysis`, from which the EH-Tree is built.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.graph.updates import EdgeInsertion, GraphKind, Update
from repro.matching.affected import AffectedSet
from repro.matching.candidates import CandidateSet
from repro.elimination.relations import EliminationRelation, EliminationType
from repro.spl.matrix import SLenMatrix


def detect_type_i(candidate_sets: Sequence[CandidateSet]) -> list[EliminationRelation]:
    """DER-I: pattern update ``UPa`` eliminates ``UPb`` when its candidates cover ``UPb``'s.

    Only updates of the same direction are compared (Algorithm 1 treats
    the insertion and deletion branches separately).  When two updates
    have identical candidate sets, the earlier one in the sequence is the
    eliminator, so the relation stays antisymmetric.
    """
    relations: list[EliminationRelation] = []
    for a_index, set_a in enumerate(candidate_sets):
        for b_index, set_b in enumerate(candidate_sets):
            if a_index == b_index:
                continue
            if set_a.update.is_insertion != set_b.update.is_insertion:
                continue
            if not set_a.covers(set_b):
                continue
            if set_a.all_nodes == set_b.all_nodes and a_index > b_index:
                continue
            relations.append(
                EliminationRelation(set_a.update, set_b.update, EliminationType.SINGLE_PATTERN)
            )
    return relations


def detect_type_ii(affected_sets: Sequence[AffectedSet]) -> list[EliminationRelation]:
    """DER-II: data update ``UDa`` eliminates ``UDb`` when its affected nodes cover ``UDb``'s."""
    relations: list[EliminationRelation] = []
    for a_index, set_a in enumerate(affected_sets):
        for b_index, set_b in enumerate(affected_sets):
            if a_index == b_index:
                continue
            if not set_a.covers(set_b):
                continue
            if set_a.nodes == set_b.nodes and a_index > b_index:
                continue
            relations.append(
                EliminationRelation(set_a.update, set_b.update, EliminationType.SINGLE_DATA)
            )
    return relations


def detect_type_iii(
    candidate_sets: Sequence[CandidateSet],
    affected_sets: Sequence[AffectedSet],
    slen_new: SLenMatrix,
) -> list[EliminationRelation]:
    """DER-III: a data update and a pattern edge insertion cancel each other.

    For a pattern edge insertion ``UPi`` with bound ``b`` and candidate
    set ``Can_N(UPi)``, and a data update ``UDj`` whose affected nodes
    cover ``Can_N(UPi)``: if under the *updated* matrix every candidate
    source still reaches some matched target within ``b`` and every
    candidate target is still reached by some matched source within ``b``
    (Example 9's ``AFF(PM2, TE2) = (∞, 2)`` check), the pattern insertion
    removes nothing, so the two updates eliminate each other.  The data
    update is recorded as the eliminator (see Example 10).
    """
    relations: list[EliminationRelation] = []
    for candidate in candidate_sets:
        update = candidate.update
        if not isinstance(update, EdgeInsertion) or update.graph is not GraphKind.PATTERN:
            continue
        if candidate.bound is None or not candidate.all_nodes:
            continue
        for affected in affected_sets:
            if affected.is_empty:
                continue
            if not affected.nodes >= candidate.all_nodes:
                continue
            sources_ok = all(
                any(
                    _distance(slen_new, vi, vj) <= candidate.bound
                    for vj in candidate.target_pool
                )
                for vi in candidate.source_candidates
            )
            targets_ok = all(
                any(
                    _distance(slen_new, vi, vj) <= candidate.bound
                    for vi in candidate.source_pool
                )
                for vj in candidate.target_candidates
            )
            if sources_ok and targets_ok:
                relations.append(
                    EliminationRelation(
                        affected.update, candidate.update, EliminationType.CROSS_GRAPH
                    )
                )
    return relations


def _distance(slen: SLenMatrix, source, target) -> float:
    """Distance lookup tolerating nodes removed by the update batch."""
    if source not in slen.nodes() or target not in slen.nodes():
        return float("inf")
    return slen.distance(source, target)


@dataclass
class EliminationAnalysis:
    """The output of a full DER run over one update batch.

    Attributes
    ----------
    candidate_sets / affected_sets:
        The per-update sets the detection was based on.
    relations:
        Every detected elimination relationship (all three types).
    """

    candidate_sets: list[CandidateSet] = field(default_factory=list)
    affected_sets: list[AffectedSet] = field(default_factory=list)
    relations: list[EliminationRelation] = field(default_factory=list)

    def relations_of_type(self, kind: EliminationType) -> list[EliminationRelation]:
        """The subset of relationships of one type."""
        return [relation for relation in self.relations if relation.type is kind]

    def eliminated_updates(self) -> set[Update]:
        """Updates that appear on the eliminated side of some relationship."""
        return {relation.eliminated for relation in self.relations}

    def eliminators_of(self, update: Update) -> list[Update]:
        """Every update that eliminates ``update``."""
        return [
            relation.eliminator
            for relation in self.relations
            if relation.eliminated == update
        ]

    @property
    def number_of_eliminated(self) -> int:
        """``|Ue|`` — how many updates are eliminated by at least one other."""
        return len(self.eliminated_updates())


def detect_all(
    candidate_sets: Sequence[CandidateSet],
    affected_sets: Sequence[AffectedSet],
    slen_new: SLenMatrix,
) -> EliminationAnalysis:
    """Run DER-I, DER-II and DER-III and bundle the results."""
    relations = (
        detect_type_i(candidate_sets)
        + detect_type_ii(affected_sets)
        + detect_type_iii(candidate_sets, affected_sets, slen_new)
    )
    return EliminationAnalysis(
        candidate_sets=list(candidate_sets),
        affected_sets=list(affected_sets),
        relations=relations,
    )
