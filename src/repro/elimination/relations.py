"""Elimination relationship records (Section IV-A).

Three relationship types exist between updates:

* **Type I** — single-graph, pattern side: ``UPa ⊒ UPb`` when the
  candidate nodes of ``UPa`` cover those of ``UPb``;
* **Type II** — single-graph, data side: ``UDa ⊵ UDb`` when the affected
  nodes of ``UDa`` cover those of ``UDb``;
* **Type III** — cross-graph: ``UDi ⇔ UPj`` when the two updates leave the
  matching result unchanged (verified through the updated ``SLen``).

A relationship is stored as an ordered ``(eliminator, eliminated)`` pair;
Type III is symmetric, so detectors emit it with the data update as the
eliminator to match the paper's EH-Tree construction (Example 10 sets the
pattern update as the child of the data update).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graph.updates import Update


class EliminationType(enum.Enum):
    """The three elimination relationship types of Section IV-A."""

    SINGLE_PATTERN = "type_i"
    SINGLE_DATA = "type_ii"
    CROSS_GRAPH = "type_iii"


@dataclass(frozen=True)
class EliminationRelation:
    """One detected elimination relationship.

    Attributes
    ----------
    eliminator:
        The update whose candidate / affected set covers the other's.
    eliminated:
        The update made redundant.
    type:
        Which of the three relationship types this is.
    """

    eliminator: Update
    eliminated: Update
    type: EliminationType

    def involves(self, update: Update) -> bool:
        """``True`` when ``update`` is either side of the relationship."""
        return update == self.eliminator or update == self.eliminated

    def __str__(self) -> str:
        symbol = {
            EliminationType.SINGLE_PATTERN: "⊒",
            EliminationType.SINGLE_DATA: "⊵",
            EliminationType.CROSS_GRAPH: "⇔",
        }[self.type]
        return f"{self.eliminator} {symbol} {self.eliminated}"
