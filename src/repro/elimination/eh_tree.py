"""The Elimination Hierarchy Tree (EH-Tree) of Section IV-C.

The EH-Tree indexes the hierarchical structure of all elimination
relationships: each tree node is an update carrying its candidate /
affected node set, a child's set is covered by its parent's set (or, for
Type III, the pattern update hangs under the data update that cancels
it).  The update with the largest set becomes the root; updates that are
not eliminated by anything become additional roots, so strictly speaking
the index is a forest — the paper's examples happen to produce a single
tree.

UA-GPNM uses the tree to split the batch into

* **root updates** (``uneliminated``), which still need the incremental
  GPNM procedure, and
* **descendant updates** (``eliminated``), whose effect is subsumed by an
  ancestor — the ``|Ue|`` term of the paper's complexity analysis.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.elimination.detector import EliminationAnalysis
from repro.elimination.relations import EliminationType
from repro.graph.updates import GraphKind, Update

NodeId = Hashable


@dataclass
class EHTreeNode:
    """One node of the EH-Tree: an update plus its candidate/affected nodes."""

    update: Update
    node_set: frozenset[NodeId]
    parent: Optional["EHTreeNode"] = None
    children: list["EHTreeNode"] = field(default_factory=list)
    relation_type: Optional[EliminationType] = None

    @property
    def is_root(self) -> bool:
        """``True`` when the update is not eliminated by any other."""
        return self.parent is None

    @property
    def depth(self) -> int:
        """Distance from this node to its root (root depth is 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def __repr__(self) -> str:
        return f"EHTreeNode(update={self.update!r}, set_size={len(self.node_set)})"


class EHTree:
    """Forest indexing the elimination hierarchy over one update batch."""

    def __init__(self, nodes: dict[Update, EHTreeNode], insertion_order: list[Update]) -> None:
        self._nodes = nodes
        self._order = insertion_order

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, analysis: EliminationAnalysis, updates: Sequence[Update]) -> "EHTree":
        """Build the EH-Tree from a DER analysis.

        Following the strategy of Section IV-C: every update becomes a
        tree node storing its candidate / affected node set; an update is
        attached as the child of the eliminator with the *largest* set
        among those that eliminate it (ties broken by arrival order), so
        the update with the maximum set naturally ends up as a root.
        """
        sets_by_update: dict[Update, frozenset[NodeId]] = {}
        for candidate in analysis.candidate_sets:
            sets_by_update[candidate.update] = candidate.all_nodes
        for affected in analysis.affected_sets:
            sets_by_update[affected.update] = affected.nodes

        nodes: dict[Update, EHTreeNode] = {}
        order: list[Update] = []
        for update in updates:
            if update in nodes:
                continue
            nodes[update] = EHTreeNode(
                update=update, node_set=sets_by_update.get(update, frozenset())
            )
            order.append(update)

        relation_by_child: dict[Update, list] = {}
        for relation in analysis.relations:
            if relation.eliminated in nodes and relation.eliminator in nodes:
                relation_by_child.setdefault(relation.eliminated, []).append(relation)

        for update in order:
            incoming = relation_by_child.get(update)
            if not incoming:
                continue
            # Prefer single-graph relationships (strategy (b)/(c) of the
            # paper precede the cross-graph strategy (d)); among those,
            # the eliminator with the largest node set wins, ties broken
            # by arrival order.  This reproduces the EH-Tree of Example 10.
            best = max(
                incoming,
                key=lambda relation: (
                    relation.type is not EliminationType.CROSS_GRAPH,
                    len(nodes[relation.eliminator].node_set),
                    -order.index(relation.eliminator),
                ),
            )
            parent_node = nodes[best.eliminator]
            child_node = nodes[update]
            if _would_create_cycle(parent_node, child_node):
                continue
            child_node.parent = parent_node
            child_node.relation_type = best.type
            parent_node.children.append(child_node)
        return cls(nodes, order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, update: Update) -> EHTreeNode:
        """Return the tree node of ``update``."""
        return self._nodes[update]

    def roots(self) -> list[EHTreeNode]:
        """Root nodes — the updates that are not eliminated."""
        return [self._nodes[update] for update in self._order if self._nodes[update].is_root]

    def root_updates(self) -> list[Update]:
        """The uneliminated updates, in arrival order."""
        return [node.update for node in self.roots()]

    def eliminated_updates(self) -> list[Update]:
        """The updates subsumed by an ancestor, in arrival order."""
        return [
            update for update in self._order if not self._nodes[update].is_root
        ]

    def parent_of(self, update: Update) -> Optional[Update]:
        """The eliminating parent of ``update`` or ``None`` for roots."""
        parent = self._nodes[update].parent
        return parent.update if parent is not None else None

    def children_of(self, update: Update) -> list[Update]:
        """The updates directly eliminated by ``update``."""
        return [child.update for child in self._nodes[update].children]

    def depth_of(self, update: Update) -> int:
        """Depth of ``update`` in its tree (roots have depth 0)."""
        return self._nodes[update].depth

    def updates(self) -> list[Update]:
        """All indexed updates, in arrival order."""
        return list(self._order)

    def traverse(self) -> Iterator[tuple[int, Update]]:
        """Depth-first traversal yielding ``(depth, update)`` pairs."""
        for root in self.roots():
            stack: list[tuple[int, EHTreeNode]] = [(0, root)]
            while stack:
                depth, node = stack.pop()
                yield (depth, node.update)
                for child in reversed(node.children):
                    stack.append((depth + 1, child))

    @property
    def number_of_updates(self) -> int:
        """How many updates the tree indexes."""
        return len(self._order)

    @property
    def number_of_eliminated(self) -> int:
        """``|Ue|`` — updates with a parent."""
        return len(self.eliminated_updates())

    def to_ascii(self) -> str:
        """Render the forest as an indented text diagram (for logs and docs)."""
        lines: list[str] = []
        for depth, update in self.traverse():
            lines.append("  " * depth + _short_update_label(update))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"EHTree(updates={self.number_of_updates}, "
            f"roots={len(self.roots())}, eliminated={self.number_of_eliminated})"
        )


def _would_create_cycle(parent: EHTreeNode, child: EHTreeNode) -> bool:
    """Guard against attaching an ancestor below one of its descendants."""
    node: Optional[EHTreeNode] = parent
    while node is not None:
        if node is child:
            return True
        node = node.parent
    return False


def _short_update_label(update: Update) -> str:
    """Compact human-readable label for diagrams."""
    side = "P" if update.graph is GraphKind.PATTERN else "D"
    kind = {
        "edge_insert": "+e",
        "edge_delete": "-e",
        "node_insert": "+n",
        "node_delete": "-n",
    }[update.kind.value]
    detail = getattr(update, "node", None)
    if detail is None:
        detail = f"{getattr(update, 'source', '?')}->{getattr(update, 'target', '?')}"
    return f"U{side}{kind}({detail})"
