"""Elimination relationships between updates and the EH-Tree index (Section IV).

* :mod:`repro.elimination.relations` — the three relationship types
  (single-graph in ``GP``, single-graph in ``GD``, cross-graph) as data
  records;
* :mod:`repro.elimination.detector` — DER-I, DER-II and DER-III
  (Algorithms 1–3), which compute candidate / affected sets and decide
  which updates eliminate which;
* :mod:`repro.elimination.eh_tree` — the Elimination Hierarchy Tree that
  indexes the detected relationships and yields the set of updates that
  still require an incremental GPNM pass.
"""

from repro.elimination.detector import (
    EliminationAnalysis,
    detect_all,
    detect_type_i,
    detect_type_ii,
    detect_type_iii,
)
from repro.elimination.eh_tree import EHTree
from repro.elimination.relations import EliminationRelation, EliminationType

__all__ = [
    "EliminationType",
    "EliminationRelation",
    "detect_type_i",
    "detect_type_ii",
    "detect_type_iii",
    "detect_all",
    "EliminationAnalysis",
    "EHTree",
]
