"""Multi-pattern subscriptions over one evolving graph (ROADMAP item 4).

The paper binds one pattern to one algorithm instance; a production
matcher serves many standing patterns over the same graph.  The
expensive per-batch work — graph application, ``SLen`` maintenance, the
affected-region computation — is pattern-independent, so the service
runs it **once** per settle (through the session's single
:class:`~repro.algorithms.base.GPNMAlgorithm` engine) and fans the
resulting :class:`~repro.matching.shared.SharedDelta` out to every
subscription: a sound label-intersection skip filter
(:func:`~repro.matching.shared.delta_touches_pattern`) decides whether
the pattern can have been touched at all, and if so one amendment pass
(:func:`~repro.matching.amend.amend_match`) refines the subscription's
previous relation to the exact post-batch relation.  The marginal cost
of one more standing pattern is that filter + amendment, not a full
maintenance pass.

This module holds the per-subscription state machine; the service wires
it into settles, snapshots, journaling and the TCP protocol.
"""

from __future__ import annotations

import threading
import warnings
from collections.abc import Callable, Hashable, Mapping
from dataclasses import dataclass
from typing import Any, Optional

from repro.graph.digraph import DataGraph
from repro.graph.io import pattern_graph_from_dict, pattern_graph_to_dict
from repro.graph.pattern import PatternGraph
from repro.matching.bgs import bounded_simulation
from repro.matching.gpnm import MatchResult
from repro.matching.shared import SharedDelta, delta_touches_pattern
from repro.matching.topk import RankedMatch, top_k_matches
from repro.spl.matrix import SLenMatrix

NodeId = Hashable

#: Pattern id the single-pattern compatibility shim subscribes under.
DEFAULT_PATTERN_ID = "default"

#: Signature of a push listener: called with one
#: :class:`SubscriptionDelta` after each settle that changed the
#: subscription's matches (or its top-k ranking).
PushListener = Callable[["SubscriptionDelta"], None]

# ----------------------------------------------------------------------
# The single-pattern ``register_graph`` deprecation fires once per
# process, not once per registration (test suites register hundreds of
# graphs).  Same lock + reset-hook machinery as the ``coalesce_updates``
# deprecation in :mod:`repro.algorithms.base`: registrations can happen
# from several event loops/threads, and an unsynchronized check-then-set
# can emit the warning more than once.
# ----------------------------------------------------------------------
_register_deprecation_warned = False
_register_deprecation_lock = threading.Lock()


def warn_register_graph_deprecated(stacklevel: int = 3) -> None:
    """Emit the single-pattern ``register_graph`` warning at most once."""
    global _register_deprecation_warned
    with _register_deprecation_lock:
        if _register_deprecation_warned:
            return
        _register_deprecation_warned = True
    warnings.warn(
        "register_graph(key, pattern, data) is deprecated: register the "
        "graph with register(key, data) and attach standing patterns "
        "with subscribe(key, pattern_id, pattern); the shim binds the "
        "pattern under pattern_id='default'",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_register_deprecation_warning() -> None:
    """Re-arm the once-per-process deprecation (test hook)."""
    global _register_deprecation_warned
    with _register_deprecation_lock:
        _register_deprecation_warned = False


def _ranking_doc(
    ranking: Mapping[NodeId, list[RankedMatch]],
) -> dict[str, list[dict[str, Any]]]:
    """JSON-able copy of a top-k ranking (wire + journal shape)."""
    return {
        str(pattern_node): [
            {"node": entry.data_node, "score": round(entry.score, 6)}
            for entry in entries
        ]
        for pattern_node, entries in ranking.items()
    }


@dataclass(frozen=True)
class SubscriptionState:
    """One subscription's published state inside a snapshot.

    Snapshots are pattern-aware: a
    :class:`~repro.service.service.GraphSnapshot` carries one frozen
    ``SubscriptionState`` per standing pattern, sharing the snapshot's
    single ``(data, slen)`` pair.  ``top_k`` is only materialised for
    subscriptions registered with a default ``k`` (the push channel
    needs it to detect ranking changes); read-side ``top_k()`` queries
    recompute from the snapshot and are exact either way.
    """

    pattern_id: str
    pattern: PatternGraph
    result: MatchResult
    k: Optional[int] = None
    top_k: Optional[Mapping[NodeId, tuple[RankedMatch, ...]]] = None

    def to_doc(self) -> dict[str, Any]:
        """JSON-able description (journal compaction + recovery)."""
        doc: dict[str, Any] = {
            "pattern_id": self.pattern_id,
            "pattern": pattern_graph_to_dict(self.pattern),
        }
        if self.k is not None:
            doc["k"] = self.k
        return doc


@dataclass(frozen=True)
class SubscriptionDelta:
    """The per-pattern push payload produced by one settle.

    ``added`` / ``removed`` are the match-relation changes per pattern
    node (the shape of :meth:`~repro.matching.gpnm.MatchResult.diff`);
    ``top_k`` carries the new ranking when the subscription tracks one
    and it changed, else ``None``.
    """

    graph: str
    pattern_id: str
    version: int
    added: Mapping[NodeId, frozenset[NodeId]]
    removed: Mapping[NodeId, frozenset[NodeId]]
    top_k: Optional[Mapping[NodeId, tuple[RankedMatch, ...]]] = None

    @property
    def is_empty(self) -> bool:
        """``True`` when neither the relation nor the ranking changed."""
        return not self.added and not self.removed and self.top_k is None

    def to_doc(self) -> dict[str, Any]:
        """The JSON-lines ``notify`` message body (sans envelope)."""
        doc: dict[str, Any] = {
            "kind": "notify",
            "graph": self.graph,
            "pattern_id": self.pattern_id,
            "version": self.version,
            "added": {
                str(u): sorted(nodes, key=str) for u, nodes in self.added.items()
            },
            "removed": {
                str(u): sorted(nodes, key=str) for u, nodes in self.removed.items()
            },
        }
        if self.top_k is not None:
            doc["top_k"] = _ranking_doc(
                {u: list(entries) for u, entries in self.top_k.items()}
            )
        return doc


class Subscription:
    """One standing pattern attached to a graph session.

    Owns the pattern's live (non-collapsed) match relation, the optional
    default ``k`` and the attached push listeners.  Mutated only under
    the session's serialized write queue (the relation itself is only
    touched on the executor, inside a settle or a rebuild), so no
    locking is needed.
    """

    def __init__(
        self,
        pattern_id: str,
        pattern: PatternGraph,
        k: Optional[int] = None,
    ) -> None:
        if not isinstance(pattern_id, str) or not pattern_id:
            raise ValueError("pattern_id must be a non-empty string")
        if k is not None and k < 1:
            raise ValueError("k must be at least 1 when given")
        self.pattern_id = pattern_id
        self.pattern = pattern.copy()
        self.k = k
        #: The live non-collapsed relation, amended in place by settles.
        self.relation: MatchResult = MatchResult({}, enforce_totality=False)
        #: Work accounting for the stats() surface and the acceptance
        #: criterion: amendment passes run vs. settles provably skipped.
        self.amend_passes = 0
        self.skipped_settles = 0
        self.notifications = 0
        self._listeners: dict[int, PushListener] = {}
        self._next_token = 1

    # -- relation lifecycle (executor-side) ----------------------------
    def recompute(self, data: DataGraph, slen: SLenMatrix) -> None:
        """Compute the relation from scratch against ``(data, slen)``.

        Used at subscribe time and after a quarantine rebuild; settles
        use :meth:`amended` instead.
        """
        relation = bounded_simulation(self.pattern, data, slen)
        self.relation = MatchResult(relation, enforce_totality=False)

    def state(self, data: DataGraph, slen: SLenMatrix) -> SubscriptionState:
        """Freeze the current relation into a publishable state."""
        result = MatchResult(self.relation.as_dict(), enforce_totality=True)
        ranking: Optional[dict[NodeId, tuple[RankedMatch, ...]]] = None
        if self.k is not None:
            ranking = {
                u: tuple(entries)
                for u, entries in top_k_matches(
                    result, self.pattern, data, slen, self.k
                ).items()
            }
        return SubscriptionState(
            pattern_id=self.pattern_id,
            pattern=self.pattern.copy(),
            result=result,
            k=self.k,
            top_k=ranking,
        )

    def touched_by(self, delta: Optional[SharedDelta]) -> bool:
        """Whether the settled batch can have changed this pattern's
        matches.  ``None`` (an engine that exposes no shared delta, e.g.
        a test double wrapping ``subsequent_query``) means "assume yes"."""
        if delta is None:
            return True
        return delta_touches_pattern(delta, self.pattern)

    # -- push listeners (event-loop-side) ------------------------------
    def attach(self, listener: PushListener) -> int:
        """Register a push listener; returns a detach token."""
        token = self._next_token
        self._next_token += 1
        self._listeners[token] = listener
        return token

    def detach(self, token: int) -> bool:
        """Remove a listener by token; ``True`` when it was attached."""
        return self._listeners.pop(token, None) is not None

    @property
    def listeners(self) -> tuple[PushListener, ...]:
        """The attached listeners, in attach order."""
        return tuple(self._listeners.values())

    # -- serialization -------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        """JSON-able description (journal records + compaction)."""
        doc: dict[str, Any] = {
            "pattern_id": self.pattern_id,
            "pattern": pattern_graph_to_dict(self.pattern),
        }
        if self.k is not None:
            doc["k"] = self.k
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Subscription":
        """Rebuild a subscription from its journal description."""
        return cls(
            pattern_id=doc["pattern_id"],
            pattern=pattern_graph_from_dict(doc["pattern"]),
            k=doc.get("k"),
        )

    def __repr__(self) -> str:
        return (
            f"Subscription({self.pattern_id!r}, "
            f"pattern_nodes={self.pattern.number_of_nodes}, k={self.k})"
        )


@dataclass
class SubscriptionEvent:
    """One settle's outcome for one subscription (service-internal).

    Produced on the executor during the settle, consumed on the event
    loop to build the published snapshot state and the push delta.
    """

    subscription: Subscription
    state: SubscriptionState
    previous: Optional[SubscriptionState]
    amended: bool

    def delta(self, graph: str, version: int) -> SubscriptionDelta:
        """Build the push payload against the previous published state."""
        if self.previous is None:
            diff = MatchResult({}, enforce_totality=False).diff(self.state.result)
        else:
            diff = self.previous.result.diff(self.state.result)
        added = {u: change[0] for u, change in diff.items() if change[0]}
        removed = {u: change[1] for u, change in diff.items() if change[1]}
        ranking = None
        if self.state.k is not None:
            before = None if self.previous is None else self.previous.top_k
            if self.state.top_k != before:
                ranking = self.state.top_k
        return SubscriptionDelta(
            graph=graph,
            pattern_id=self.subscription.pattern_id,
            version=version,
            added=added,
            removed=removed,
            top_k=ranking,
        )


def pattern_set_doc(subscriptions: Any) -> dict[str, Any]:
    """The inverse of :func:`parse_pattern_set`: serialize a registry.

    Accepts :class:`Subscription` objects or already-serialized entry
    docs (the replay window carries the latter) and emits the
    ``{"patterns": [...]}`` shape ``ua-gpnm serve --patterns`` and
    ``ua-gpnm replay --patterns`` read, so a recorded registry can be
    exported, edited, and fed back in.
    """
    entries: list[dict[str, Any]] = []
    for subscription in subscriptions:
        if isinstance(subscription, Subscription):
            entries.append(subscription.to_doc())
        elif isinstance(subscription, Mapping):
            entries.append(dict(subscription))
        else:
            raise ValueError(
                f"expected a Subscription or its doc, got {subscription!r}"
            )
    return {"patterns": entries}


def parse_pattern_set(doc: Any) -> list[Subscription]:
    """Parse a pattern-set document (the ``ua-gpnm serve --patterns`` file).

    Accepts either a bare list of entries or ``{"patterns": [...]}``;
    each entry is ``{"pattern_id": ..., "pattern": <pattern-graph doc>,
    "k": optional}``.  Duplicate pattern ids are an error.
    """
    if isinstance(doc, Mapping):
        doc = doc.get("patterns")
    if not isinstance(doc, (list, tuple)):
        raise ValueError(
            "pattern set must be a list of entries or {'patterns': [...]}"
        )
    subscriptions: list[Subscription] = []
    seen: set[str] = set()
    for entry in doc:
        if not isinstance(entry, Mapping):
            raise ValueError(f"pattern-set entry must be an object, got {entry!r}")
        subscription = Subscription.from_doc(entry)
        if subscription.pattern_id in seen:
            raise ValueError(f"duplicate pattern_id {subscription.pattern_id!r}")
        seen.add(subscription.pattern_id)
        subscriptions.append(subscription)
    return subscriptions
