"""Asyncio streaming ingestion + query service over the GPNM algorithms.

The package turns the batch-oriented algorithm state machine into a
continuously-available service (ROADMAP item: streaming service layer):

* :mod:`repro.service.delta` — the structured insert/delete payload
  vocabulary (:class:`~repro.service.delta.UpdateData`);
* :mod:`repro.service.queue` — per-graph serialized action queues with
  fire-and-forget scheduling and graceful drain;
* :mod:`repro.service.service` — the
  :class:`~repro.service.service.StreamingUpdateService` core: staged
  validation, planner-driven batch admission, deadline cuts, executor
  settles, snapshot reads;
* :mod:`repro.service.server` — a stdlib JSON-lines TCP front end
  (``ua-gpnm serve``).
"""

from repro.service.delta import DeltaDelete, DeltaError, DeltaInsert, UpdateData
from repro.service.queue import ActionQueue, ActionScheduler, QueueClosedError
from repro.service.server import ServiceServer
from repro.service.service import (
    CUT_CAPACITY,
    CUT_CROSSOVER,
    CUT_DEADLINE,
    CUT_DRAIN,
    GraphSnapshot,
    IngestReceipt,
    ServiceConfig,
    ServiceError,
    StreamingUpdateService,
    default_algorithm_factory,
)

__all__ = [
    "ActionQueue",
    "ActionScheduler",
    "QueueClosedError",
    "DeltaInsert",
    "DeltaDelete",
    "DeltaError",
    "UpdateData",
    "ServiceConfig",
    "ServiceError",
    "GraphSnapshot",
    "IngestReceipt",
    "StreamingUpdateService",
    "ServiceServer",
    "default_algorithm_factory",
    "CUT_CROSSOVER",
    "CUT_CAPACITY",
    "CUT_DEADLINE",
    "CUT_DRAIN",
]
