"""Asyncio streaming ingestion + query service over the GPNM algorithms.

The package turns the batch-oriented algorithm state machine into a
continuously-available, durable service (ROADMAP items: streaming
service layer, crash recovery):

* :mod:`repro.service.delta` — the structured insert/delete payload
  vocabulary (:class:`~repro.service.delta.UpdateData`);
* :mod:`repro.service.queue` — per-graph serialized action queues with
  fire-and-forget scheduling, graceful drain and hard abort;
* :mod:`repro.service.journal` — the per-graph write-ahead delta
  journal (fsync-append before receipt, checkpoints, size-bounded
  compaction, torn-tail-tolerant recovery) and the dead-letter journal
  for quarantined deltas;
* :mod:`repro.service.faults` — the deterministic fault-injection
  switchboard (named crash points, torn writes, flaky kernels) the
  durability claims are tested with;
* :mod:`repro.service.subscriptions` — multi-pattern subscriptions:
  per-pattern state machines fed by one shared maintenance pass per
  settle, with push deltas to attached listeners;
* :mod:`repro.service.service` — the
  :class:`~repro.service.service.StreamingUpdateService` core: staged
  validation, write-ahead journaling, planner-driven batch admission,
  deadline cuts, executor settles with retry/bisect/quarantine,
  subscription fan-out, pattern-addressed snapshot reads, journal
  recovery on registration;
* :mod:`repro.service.server` — a stdlib JSON-lines TCP front end
  (``ua-gpnm serve``) with overload refusal, idle timeouts, and the
  ``subscribe`` / ``notify`` push channel.
"""

from repro.service.delta import DeltaDelete, DeltaError, DeltaInsert, UpdateData
from repro.service.faults import (
    CRASH_POINTS,
    MID_SETTLE,
    POST_APPEND,
    PRE_APPEND,
    PRE_CHECKPOINT,
    PRE_SETTLE,
    FaultInjector,
    InjectedCrash,
    KernelFault,
    flaky_algorithm_factory,
)
from repro.service.journal import (
    DeadLetterJournal,
    GraphJournal,
    JournalError,
    RecoveredState,
    journal_slug,
)
from repro.service.queue import ActionQueue, ActionScheduler, QueueClosedError
from repro.service.server import ServiceServer
from repro.service.service import (
    CUT_CAPACITY,
    CUT_CROSSOVER,
    CUT_DEADLINE,
    CUT_DRAIN,
    GraphSnapshot,
    IngestReceipt,
    ServiceConfig,
    ServiceError,
    StreamingUpdateService,
    default_algorithm_factory,
)
from repro.service.subscriptions import (
    DEFAULT_PATTERN_ID,
    PushListener,
    Subscription,
    SubscriptionDelta,
    SubscriptionState,
    parse_pattern_set,
    reset_register_deprecation_warning,
)

__all__ = [
    "ActionQueue",
    "ActionScheduler",
    "QueueClosedError",
    "DeltaInsert",
    "DeltaDelete",
    "DeltaError",
    "UpdateData",
    "ServiceConfig",
    "ServiceError",
    "GraphSnapshot",
    "IngestReceipt",
    "StreamingUpdateService",
    "ServiceServer",
    "default_algorithm_factory",
    "DEFAULT_PATTERN_ID",
    "PushListener",
    "Subscription",
    "SubscriptionDelta",
    "SubscriptionState",
    "parse_pattern_set",
    "reset_register_deprecation_warning",
    "CUT_CROSSOVER",
    "CUT_CAPACITY",
    "CUT_DEADLINE",
    "CUT_DRAIN",
    "GraphJournal",
    "DeadLetterJournal",
    "JournalError",
    "RecoveredState",
    "journal_slug",
    "FaultInjector",
    "InjectedCrash",
    "KernelFault",
    "flaky_algorithm_factory",
    "CRASH_POINTS",
    "PRE_APPEND",
    "POST_APPEND",
    "PRE_SETTLE",
    "MID_SETTLE",
    "PRE_CHECKPOINT",
]
