"""Deterministic fault injection for the durable streaming service.

The durability claims of :mod:`repro.service` ("no accepted delta is
ever lost", "a poison delta cannot kill a graph") are only testable if
failures can be produced *on demand and deterministically*.  This module
is that switchboard:

* **Crash points** — the service and journal call
  :meth:`FaultInjector.hit` at the named points of the
  append/settle/checkpoint pipeline (:data:`CRASH_POINTS`).  Arming a
  point makes the Nth hit raise :class:`InjectedCrash`, which derives
  from :class:`BaseException` on purpose: like ``KeyboardInterrupt``, it
  models the *process dying* and must never be caught by the service's
  retry/quarantine machinery.  A test then abandons the "crashed"
  service instance (``await service.abort()``) and proves that a fresh
  instance recovers the journal to the oracle state.
* **Torn writes** — :meth:`FaultInjector.arm_torn_append` makes the
  journal write only a prefix of the next record before "crashing",
  reproducing the half-a-line tail a real power loss leaves behind.
* **Kernel faults** — :func:`flaky_algorithm_factory` wraps an
  algorithm factory so ``subsequent_query`` raises :class:`KernelFault`
  either for the first N settles (transient: proves retry) or whenever
  the batch contains a *poison* update (permanent: proves bisection and
  quarantine).

Everything is counter-based — no randomness, no clocks — so every
failure schedule is exactly reproducible.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from typing import Optional

#: Named points of the ingest/settle pipeline where a crash can be
#: injected, in pipeline order:
#:
#: * ``pre-append`` — the delta was validated but not yet journaled; a
#:   crash here loses it *before* a receipt was issued (allowed).
#: * ``post-append`` — the delta is durable but the receipt was never
#:   returned; recovery must replay it (at-least-once from the
#:   journal's point of view).
#: * ``pre-settle`` — the batch was cut but maintenance never started.
#: * ``mid-settle`` — maintenance finished mutating in-memory state but
#:   the snapshot was not yet published.
#: * ``pre-checkpoint`` — the snapshot is published but the journal
#:   checkpoint record was never written; recovery must not
#:   double-apply the batch it covers.
PRE_APPEND = "pre-append"
POST_APPEND = "post-append"
PRE_SETTLE = "pre-settle"
MID_SETTLE = "mid-settle"
PRE_CHECKPOINT = "pre-checkpoint"
CRASH_POINTS: tuple[str, ...] = (
    PRE_APPEND,
    POST_APPEND,
    PRE_SETTLE,
    MID_SETTLE,
    PRE_CHECKPOINT,
)


class InjectedCrash(BaseException):
    """A simulated process death at a named crash point.

    Derives from :class:`BaseException` so the service's failure
    handling (which catches :class:`Exception` for retry/quarantine)
    can never absorb it — exactly like a real ``kill -9`` cannot be
    caught.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


class KernelFault(RuntimeError):
    """An injected maintenance-kernel failure (an ordinary exception).

    This is what the retry/bisect/quarantine machinery is *supposed* to
    handle, as opposed to :class:`InjectedCrash` which it must not.
    """


class FaultInjector:
    """Deterministic, counter-based fault switchboard.

    An unarmed injector is a no-op and is safe (and cheap) to leave on
    every hot path; the service uses a shared module-level
    :data:`NULL_INJECTOR` by default.
    """

    def __init__(self) -> None:
        #: Remaining hits before each armed point fires (1 = next hit).
        self._armed: dict[str, int] = {}
        #: Remaining appends before the next append is torn (1 = next).
        self._torn_in: int = 0
        #: Observability: how often each point was reached (fired or not).
        self.hits: Counter = Counter()

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self, point: str, *, after: int = 0) -> None:
        """Arm ``point`` to crash on its ``after + 1``-th upcoming hit."""
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}; expected one of {CRASH_POINTS}")
        self._armed[point] = after + 1

    def arm_torn_append(self, *, after: int = 0) -> None:
        """Tear the ``after + 1``-th upcoming journal append mid-record."""
        self._torn_in = after + 1

    def disarm(self) -> None:
        """Clear every armed point (counters are kept)."""
        self._armed.clear()
        self._torn_in = 0

    # ------------------------------------------------------------------
    # Trigger points (called by the service / journal)
    # ------------------------------------------------------------------
    def hit(self, point: str) -> None:
        """Record reaching ``point``; raise :class:`InjectedCrash` if armed."""
        self.hits[point] += 1
        remaining = self._armed.get(point)
        if remaining is None:
            return
        if remaining > 1:
            self._armed[point] = remaining - 1
            return
        del self._armed[point]
        raise InjectedCrash(point)

    def take_torn_append(self) -> bool:
        """Whether the journal should tear the append it is about to do.

        Consumes the arming when it fires, so exactly one append is torn.
        """
        if self._torn_in == 0:
            return False
        self._torn_in -= 1
        return self._torn_in == 0


#: The default injector: never armed, shared by every service instance
#: that was not handed an explicit one.
NULL_INJECTOR = FaultInjector()


def flaky_algorithm_factory(
    base_factory,
    *,
    fail_times: int = 0,
    poison: Optional[Callable[[object], bool]] = None,
    message: str = "injected kernel fault",
):
    """Wrap ``base_factory`` so settles fail on a deterministic schedule.

    Parameters
    ----------
    base_factory:
        The real :data:`~repro.service.service.AlgorithmFactory` to wrap.
    fail_times:
        The first ``fail_times`` calls to ``subsequent_query`` raise
        :class:`KernelFault`; whether the algorithm state was already
        partially mutated is not guaranteed either way — exactly the
        contract a real kernel bug breaks.  The countdown is shared
        across every algorithm the factory builds, because the service
        *rebuilds* the algorithm after a failed settle and the schedule
        must survive that.  Later calls succeed.  Use this to prove
        bounded-retry recovery.
    poison:
        Predicate over :class:`~repro.graph.updates.Update`; whenever a
        batch contains a matching update the settle raises — every time,
        so only bisection + quarantine can make progress.  Use this to
        prove poison isolation.
    message:
        The :class:`KernelFault` message (useful to assert on in the
        dead-letter journal).
    """

    remaining = {"count": fail_times}

    def factory(pattern, data, config, telemetry):
        algorithm = base_factory(pattern, data, config, telemetry)
        inner = algorithm.subsequent_query

        def wrapped(batch):
            if poison is not None and any(poison(update) for update in batch):
                raise KernelFault(message)
            if remaining["count"] > 0:
                remaining["count"] -= 1
                raise KernelFault(message)
            return inner(batch)

        algorithm.subsequent_query = wrapped
        return algorithm

    return factory
