"""Per-key serialized action queues for the streaming service.

The service must apply every graph's deltas **in arrival order** while
letting unrelated graphs make progress concurrently.  The shape that
achieves both (the mu-swarm action-scheduler idiom, SNIPPETS.md §1) is
one ordered asyncio queue per key with a single worker task draining it:
actions scheduled on the same key never overlap or reorder, actions on
different keys interleave freely, and the caller chooses per call
whether to await the result or fire and forget.

:class:`ActionScheduler` owns the per-key :class:`ActionQueue` map and
adds the two lifecycle pieces the service needs — :meth:`~ActionScheduler.drain`
(wait until every queue is idle, including actions that were scheduled
*by* actions while draining) and :meth:`~ActionScheduler.close` (drain,
then stop the workers).  Fire-and-forget errors are not lost: every
action future gets a done-callback that records failures on the
scheduler's ``errors`` list (and consumes the exception so asyncio never
logs a "Future exception was never retrieved" warning).
"""

from __future__ import annotations

import asyncio
import logging
from collections.abc import Awaitable, Callable
from typing import Any, Optional

logger = logging.getLogger("repro.service")

#: An action: a zero-argument callable returning an awaitable.  Factories
#: (rather than bare coroutines) let the queue create the coroutine only
#: when its turn arrives, so a closed queue never leaks a never-awaited
#: coroutine object.
ActionFactory = Callable[[], Awaitable[Any]]


class QueueClosedError(RuntimeError):
    """Raised when scheduling on a queue that has been closed."""


class ActionQueue:
    """One key's ordered action queue, drained by a single worker task.

    Actions run strictly one at a time in scheduling order.  The worker
    task is created lazily on the first :meth:`schedule` (so queues can
    be built outside a running event loop) and exits when :meth:`close`
    enqueues the stop sentinel.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._queue: asyncio.Queue = asyncio.Queue()
        self._worker: Optional[asyncio.Task] = None
        self._closed = False
        self._unfinished = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, factory: ActionFactory) -> "asyncio.Future[Any]":
        """Enqueue ``factory`` and return a future for its result.

        The returned future is safe to drop (fire and forget): a
        done-callback always consumes the outcome, so an unobserved
        failure never triggers asyncio's unretrieved-exception warning.
        Callers that care simply ``await`` the future.
        """
        if self._closed:
            raise QueueClosedError(f"action queue {self.name!r} is closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        future.add_done_callback(self._consume_outcome)
        self._unfinished += 1
        self._idle.clear()
        self._queue.put_nowait((factory, future))
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"action-queue:{self.name}"
            )
        return future

    @staticmethod
    def _consume_outcome(future: "asyncio.Future[Any]") -> None:
        if not future.cancelled():
            future.exception()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                break
            factory, future = item
            try:
                result = await factory()
            except BaseException as exc:  # noqa: BLE001 - routed to the future
                if not future.cancelled():
                    future.set_exception(exc)
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                self._unfinished -= 1
                if self._unfinished == 0:
                    self._idle.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Actions scheduled but not yet finished (incl. the running one)."""
        return self._unfinished

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    async def drain(self) -> None:
        """Wait until every already-scheduled action has finished."""
        await self._idle.wait()

    async def close(self) -> None:
        """Drain, then stop the worker task.  Idempotent."""
        if self._closed:
            await self.drain()
            return
        self._closed = True
        await self.drain()
        if self._worker is not None:
            self._queue.put_nowait(None)
            await self._worker
            self._worker = None

    async def abort(self) -> None:
        """Stop immediately: cancel the worker and every queued action.

        Unlike :meth:`close` this does **not** run the backlog — queued
        actions are cancelled and the in-flight one (if any) receives a
        :class:`asyncio.CancelledError`.  This is the in-process stand-in
        for ``kill -9``, used by the fault-injection tests to abandon a
        "crashed" service instance.  Idempotent.
        """
        self._closed = True
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is None:
                continue
            _, future = item
            if not future.done():
                future.cancel()
        self._unfinished = 0
        self._idle.set()


class ActionScheduler:
    """A map of per-key :class:`ActionQueue` instances, created on demand.

    Guarantees: actions with the same ``key`` run serially in scheduling
    order; actions with different keys run concurrently; :meth:`drain`
    returns only once the whole system is quiescent, even when draining
    actions schedule follow-up actions (the service's batch cuts schedule
    their settles this way).
    """

    def __init__(self) -> None:
        self._queues: dict[str, ActionQueue] = {}
        self._closed = False
        #: ``(key, exception)`` pairs from fire-and-forget actions that
        #: failed.  Awaited actions surface their errors to the caller
        #: *and* appear here, which keeps post-mortems in one place.
        self.errors: list[tuple[str, BaseException]] = []

    def queue(self, key: str) -> ActionQueue:
        """The (possibly newly created) queue for ``key``."""
        queue = self._queues.get(key)
        if queue is None:
            if self._closed:
                raise QueueClosedError("scheduler is closed")
            queue = ActionQueue(name=key)
            self._queues[key] = queue
        return queue

    def schedule(self, key: str, factory: ActionFactory) -> "asyncio.Future[Any]":
        """Enqueue ``factory`` on ``key``'s queue; see :meth:`ActionQueue.schedule`."""
        if self._closed:
            raise QueueClosedError("scheduler is closed")
        future = self.queue(key).schedule(factory)
        future.add_done_callback(lambda f: self._record_error(key, f))
        return future

    def _record_error(self, key: str, future: "asyncio.Future[Any]") -> None:
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            self.errors.append((key, exc))
            logger.error(
                "action on queue %r failed: %r", key, exc, exc_info=exc
            )

    @property
    def pending(self) -> int:
        """Unfinished actions across all queues."""
        return sum(queue.pending for queue in self._queues.values())

    async def drain(self) -> None:
        """Wait until all queues are idle *and stay* idle.

        Draining one queue can schedule actions on another (or on
        itself), so a single pass is not enough: loop until a full pass
        over every queue observes zero pending work.
        """
        while True:
            queues = list(self._queues.values())
            for queue in queues:
                await queue.drain()
            if self.pending == 0 and len(self._queues) == len(queues):
                # Idle — but done-callbacks (error recording, outcome
                # consumption) scheduled via call_soon may still be
                # queued behind us.  Yield once so "drained" also means
                # "bookkeeping settled", then re-check in case one of
                # them scheduled new work.
                await asyncio.sleep(0)
                if self.pending == 0 and len(self._queues) == len(queues):
                    return

    async def close(self) -> None:
        """Drain everything, then stop all workers.  Idempotent."""
        await self.drain()
        self._closed = True
        for queue in self._queues.values():
            await queue.close()

    async def abort(self) -> None:
        """Cancel every queue's worker and backlog without draining.

        See :meth:`ActionQueue.abort` — the simulated ``kill -9`` used
        when a fault-injection test abandons a crashed service instance.
        """
        self._closed = True
        for queue in self._queues.values():
            await queue.abort()

    def __repr__(self) -> str:
        return (
            f"<ActionScheduler queues={len(self._queues)} pending={self.pending} "
            f"errors={len(self.errors)}>"
        )
