"""Structured insert/delete delta payloads for the streaming service.

The wire shape follows the mu-swarm delta idiom (SNIPPETS.md §1–2): a
payload names a **graph key** and carries two lists of delta specs,

.. code-block:: python

    {
        "graph": "social",
        "inserts": [
            {"type": "edge", "source": "u7", "target": "u9"},
            {"type": "node", "node": "u99", "labels": ["SE"],
             "edges": [["u99", "u7"]]},
        ],
        "deletes": [
            {"type": "edge", "source": "u1", "target": "u2"},
        ],
    }

(the nested ``{"graph": ..., "delta": {"inserts": ..., "deletes": ...}}``
variant is accepted too).  :class:`UpdateData` validates the envelope,
turns every spec into a :class:`DeltaInsert` / :class:`DeltaDelete`, and
:meth:`UpdateData.updates` lowers the payload to the repository's
:class:`~repro.graph.updates.Update` vocabulary — **deletes first, then
inserts**, so a delete+insert of the same edge in one payload reads as a
replace and a delete-then-reinsert of a node is a well-formed
resurrection for the batch compiler.

Only *data*-graph deltas stream through the service (patterns are
subscribed, not streamed), so every produced update targets
:data:`~repro.graph.updates.GraphKind.DATA`.  A payload carrying a
``"pattern"`` key is rejected outright with a pointer at the
subscription API — standing patterns change via ``subscribe`` /
``unsubscribe``, never mid-stream.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.updates import (
    Update,
    delete_data_edge,
    delete_data_node,
    insert_data_edge,
    insert_data_node,
)


class DeltaError(ValueError):
    """A malformed delta payload (bad envelope or bad spec)."""


#: Spec discriminators accepted in ``inserts`` / ``deletes`` lists.
DELTA_TYPES: tuple[str, ...] = ("edge", "node")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DeltaError(message)


@dataclass(frozen=True)
class _DeltaSpec:
    """One parsed delta spec (an edge or a node, see ``type``)."""

    type: str
    source: Optional[str] = None
    target: Optional[str] = None
    node: Optional[str] = None
    labels: tuple[str, ...] = ()
    edges: tuple[tuple[str, str], ...] = ()

    @classmethod
    def parse(cls, raw: object, *, inserting: bool) -> "_DeltaSpec":
        """Validate one raw spec dict into a :class:`_DeltaSpec`."""
        _require(isinstance(raw, Mapping), f"delta spec must be a mapping, got {raw!r}")
        kind = raw.get("type", "edge")
        _require(
            kind in DELTA_TYPES,
            f"unknown delta spec type {kind!r}; expected one of {DELTA_TYPES}",
        )
        if kind == "edge":
            _require(
                "source" in raw and "target" in raw,
                f"edge delta spec needs 'source' and 'target': {raw!r}",
            )
            _require(
                "node" not in raw, f"edge delta spec cannot name a 'node': {raw!r}"
            )
            return cls(type="edge", source=raw["source"], target=raw["target"])
        _require("node" in raw, f"node delta spec needs 'node': {raw!r}")
        labels = raw.get("labels", ())
        if isinstance(labels, str):
            labels = (labels,)
        _require(
            isinstance(labels, Sequence)
            and all(isinstance(label, str) for label in labels),
            f"node delta spec 'labels' must be a list of strings: {raw!r}",
        )
        _require(
            not inserting or len(tuple(labels)) > 0,
            f"node insert spec needs at least one label: {raw!r}",
        )
        edges = raw.get("edges", ())
        _require(
            isinstance(edges, Sequence) and not isinstance(edges, str),
            f"node delta spec 'edges' must be a list of [source, target] pairs: {raw!r}",
        )
        parsed_edges = []
        for edge in edges:
            _require(
                isinstance(edge, Sequence)
                and not isinstance(edge, str)
                and len(edge) == 2,
                f"node delta spec edge must be a [source, target] pair: {edge!r}",
            )
            parsed_edges.append((edge[0], edge[1]))
        return cls(
            type="node",
            node=raw["node"],
            labels=tuple(labels),
            edges=tuple(parsed_edges),
        )


@dataclass(frozen=True)
class DeltaInsert:
    """One insertion spec of a delta payload."""

    spec: _DeltaSpec = field(repr=False)

    def to_update(self) -> Update:
        """Lower to an :class:`~repro.graph.updates.Update` (data graph)."""
        if self.spec.type == "edge":
            return insert_data_edge(self.spec.source, self.spec.target)
        return insert_data_node(self.spec.node, self.spec.labels, self.spec.edges)

    def __repr__(self) -> str:
        if self.spec.type == "edge":
            return f"DeltaInsert(edge {self.spec.source!r}->{self.spec.target!r})"
        return f"DeltaInsert(node {self.spec.node!r})"


@dataclass(frozen=True)
class DeltaDelete:
    """One deletion spec of a delta payload."""

    spec: _DeltaSpec = field(repr=False)

    def to_update(self) -> Update:
        """Lower to an :class:`~repro.graph.updates.Update` (data graph)."""
        if self.spec.type == "edge":
            return delete_data_edge(self.spec.source, self.spec.target)
        return delete_data_node(self.spec.node, self.spec.labels, self.spec.edges)

    def __repr__(self) -> str:
        if self.spec.type == "edge":
            return f"DeltaDelete(edge {self.spec.source!r}->{self.spec.target!r})"
        return f"DeltaDelete(node {self.spec.node!r})"


class UpdateData:
    """One validated delta payload: a graph key plus insert/delete lists.

    Accepts the flat mu-swarm shape (``inserts`` / ``deletes`` at the top
    level) and the nested one (under a ``delta`` key).  ``graph`` may be
    omitted when the service call already names the graph key.
    """

    __slots__ = ("graph", "inserts", "deletes")

    def __init__(self, data: Mapping, default_graph: Optional[str] = None) -> None:
        _require(isinstance(data, Mapping), f"delta payload must be a mapping, got {data!r}")
        envelope = data
        if "delta" in data:
            envelope = data["delta"]
            _require(
                isinstance(envelope, Mapping),
                f"'delta' must be a mapping of inserts/deletes, got {envelope!r}",
            )
        for scope in (data, envelope):
            _require(
                "pattern" not in scope and "pattern_updates" not in scope,
                "delta payloads cannot carry pattern changes; standing "
                "patterns are managed with subscribe/unsubscribe, not "
                "streamed as updates",
            )
        graph = data.get("graph", default_graph)
        _require(
            graph is None or isinstance(graph, str),
            f"'graph' must be a string graph key, got {graph!r}",
        )
        inserts = envelope.get("inserts", [])
        deletes = envelope.get("deletes", [])
        for name, specs in (("inserts", inserts), ("deletes", deletes)):
            _require(
                isinstance(specs, Sequence) and not isinstance(specs, str),
                f"{name!r} must be a list of delta specs, got {specs!r}",
            )
        self.graph: Optional[str] = graph
        self.inserts: list[DeltaInsert] = [
            DeltaInsert(_DeltaSpec.parse(raw, inserting=True)) for raw in inserts
        ]
        self.deletes: list[DeltaDelete] = [
            DeltaDelete(_DeltaSpec.parse(raw, inserting=False)) for raw in deletes
        ]

    def __len__(self) -> int:
        return len(self.inserts) + len(self.deletes)

    def updates(self) -> list[Update]:
        """Lower the payload to updates — deletes first, then inserts."""
        return [delta.to_update() for delta in self.deletes] + [
            delta.to_update() for delta in self.inserts
        ]

    def __repr__(self) -> str:
        return (
            f"<UpdateData graph={self.graph!r} inserts={len(self.inserts)} "
            f"deletes={len(self.deletes)}>"
        )
