"""Asyncio streaming ingestion + query layer over the GPNM algorithms.

:class:`StreamingUpdateService` turns the batch-oriented
:class:`~repro.algorithms.base.GPNMAlgorithm` state machine into a
continuously-available service:

* **Ingestion** — :meth:`~StreamingUpdateService.submit` accepts one
  delta payload (:class:`~repro.service.delta.UpdateData`), validates
  every delta against the graph's *staged* state (settled state plus the
  not-yet-settled buffer), and appends the valid ones to the graph's
  buffer.  All mutation runs as actions on the graph's serialized
  :class:`~repro.service.queue.ActionQueue`, so concurrent submitters
  to one graph are applied in a single well-defined order while distinct
  graphs proceed independently.
* **Admission** — after every ingest the service consults the batch
  planner (:func:`~repro.batching.planner.plan_batch`) on the buffered
  batch's :class:`~repro.batching.planner.BatchStatistics`.  The buffer
  is *cut* — swapped out and handed to the algorithm's
  ``subsequent_query`` — when the planner's coalescing crossover is
  reached (strategy ≠ per-update: the batch is now cheaper settled as a
  whole than as it trickles), when the buffer hits ``max_buffer``
  (capacity backstop), or when the configured latency ``deadline``
  expires with deltas still buffered (bounded staleness for small
  trickles).
* **Settling** — the cut batch settles via the algorithm on an executor
  thread (the event loop keeps serving), scheduled on the *same*
  per-graph queue, so maintenance is serialized with ingestion and a
  graph's batches settle in cut order.  When the settle finishes, the
  service publishes a fresh immutable :class:`GraphSnapshot` by plain
  attribute assignment.
* **Reads** — :meth:`~StreamingUpdateService.matches`,
  :meth:`~StreamingUpdateService.top_k` and
  :meth:`~StreamingUpdateService.slen_distance` answer from the last
  published snapshot.  They are plain synchronous methods that never
  enter the action queue, so a read never blocks behind an in-flight
  settle — it simply sees the last settled version.
* **Shutdown** — :meth:`~StreamingUpdateService.drain` cuts every
  non-empty buffer and waits for all queues to go quiescent;
  :meth:`~StreamingUpdateService.close` then stops the workers.  Every
  accepted delta is settled before ``close`` returns — nothing accepted
  is ever dropped.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.algorithms import GPNMAlgorithm, UAGPNM
from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH
from repro.batching.planner import (
    PLAN_CHOICES,
    STRATEGY_AUTO,
    STRATEGY_PER_UPDATE,
    BatchStatistics,
    CostModel,
    plan_batch,
)
from repro.batching.telemetry import TelemetryLog
from repro.graph import DataGraph, PatternGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
    UpdateBatch,
    UpdateError,
)
from repro.matching import MatchResult, RankedMatch, top_k_matches
from repro.service.delta import DeltaError, UpdateData
from repro.service.queue import ActionScheduler, QueueClosedError
from repro.spl.matrix import SLenMatrix

#: Cut reasons reported in receipts and per-graph statistics.
CUT_CROSSOVER = "crossover"
CUT_CAPACITY = "capacity"
CUT_DEADLINE = "deadline"
CUT_DRAIN = "drain"


class ServiceError(RuntimeError):
    """Service-level failure (unknown graph, duplicate registration...)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of a :class:`StreamingUpdateService`.

    Attributes
    ----------
    deadline_seconds:
        Maximum time an accepted delta may sit buffered before the
        service cuts the batch anyway.  ``0`` cuts after every payload
        (lowest staleness, least coalescing benefit).
    max_buffer:
        Capacity backstop: the buffer is cut as soon as it holds this
        many deltas regardless of planner or deadline.
    coalesce_min_batch:
        The planner's crossover batch size (rule 1 of
        :func:`~repro.batching.planner.plan_batch`).
    batch_plan:
        Plan handed to the underlying algorithm (``"auto"`` routes per
        batch through the cost model).
    use_partition:
        Whether the default algorithm factory builds UA-GPNM with the
        label partition (Section V).
    slen_backend / dense_block_size:
        ``SLen`` storage knobs, passed through to the algorithm.
    telemetry_path:
        When set, the service's shared telemetry log is saved here on
        :meth:`StreamingUpdateService.close`.
    recalibrate_every / cost_model_path:
        Planner calibration knobs, passed through to the algorithm.
    """

    deadline_seconds: float = 0.05
    max_buffer: int = 1024
    coalesce_min_batch: int = DEFAULT_COALESCE_MIN_BATCH
    batch_plan: str = STRATEGY_AUTO
    use_partition: bool = True
    slen_backend: str = "sparse"
    dense_block_size: Optional[int] = None
    telemetry_path: Optional[str] = None
    recalibrate_every: int = 0
    cost_model_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if self.max_buffer < 1:
            raise ValueError("max_buffer must be at least 1")
        if self.coalesce_min_batch < 0:
            raise ValueError("coalesce_min_batch must be non-negative")
        if self.batch_plan not in PLAN_CHOICES:
            raise ValueError(
                f"unknown batch_plan {self.batch_plan!r}; expected one of {PLAN_CHOICES}"
            )
        if self.recalibrate_every < 0:
            raise ValueError("recalibrate_every must be non-negative")

    @classmethod
    def from_experiment(cls, config) -> "ServiceConfig":
        """Derive service tunables from an ``ExperimentConfig``."""
        return cls(
            deadline_seconds=config.service_deadline_seconds,
            max_buffer=config.service_max_buffer,
            coalesce_min_batch=config.coalesce_min_batch,
            batch_plan=config.batch_plan or STRATEGY_AUTO,
            slen_backend=config.slen_backend,
            dense_block_size=config.dense_block_size,
            telemetry_path=config.telemetry_path,
            recalibrate_every=config.recalibrate_every,
            cost_model_path=config.cost_model_path,
        )


@dataclass(frozen=True)
class GraphSnapshot:
    """One settled, immutable state of a registered graph.

    Reads answer from a snapshot without coordination: every field is a
    private copy taken when the settle finished, and the service only
    ever *replaces* the published snapshot (never mutates it).
    """

    version: int
    result: MatchResult
    pattern: PatternGraph
    data: DataGraph
    slen: SLenMatrix


@dataclass(frozen=True)
class IngestReceipt:
    """The outcome of one submitted delta payload.

    Attributes
    ----------
    accepted / rejected:
        How many of the payload's deltas were buffered vs. refused
        (stale or conflicting against the staged state).
    pending:
        Buffered-but-unsettled deltas on the graph right after this
        payload (0 means the payload triggered a cut).
    cut:
        Why this payload triggered a batch cut (``"crossover"``,
        ``"capacity"`` or ``"deadline"``), or ``None`` if the deltas
        remain buffered.
    errors:
        One message per rejected delta, in payload order.
    """

    accepted: int
    rejected: int
    pending: int
    cut: Optional[str] = None
    errors: tuple[str, ...] = ()


@dataclass
class _GraphSession:
    """Mutable per-graph state, touched only from the graph's queue."""

    key: str
    algorithm: GPNMAlgorithm
    #: Settled state plus the buffered-but-unsettled deltas; the
    #: submit-time validation target.
    staged: DataGraph
    snapshot: GraphSnapshot
    buffer: UpdateBatch = field(default_factory=UpdateBatch)
    #: Bumped on every cut; lets an expired deadline recognise that the
    #: buffer it armed for was already cut.
    generation: int = 0
    deadline_handle: Optional[asyncio.TimerHandle] = None
    accepted: int = 0
    rejected: int = 0
    settled: int = 0
    settles: int = 0
    settle_failures: int = 0
    settle_seconds: float = 0.0
    cut_reasons: Counter = field(default_factory=Counter)


#: Builds the per-graph algorithm; injectable for tests (e.g. a slow
#: settle wrapper proving reads do not block).
AlgorithmFactory = Callable[[PatternGraph, DataGraph, "ServiceConfig", Optional[TelemetryLog]], GPNMAlgorithm]


def default_algorithm_factory(
    pattern: PatternGraph,
    data: DataGraph,
    config: ServiceConfig,
    telemetry: Optional[TelemetryLog],
) -> GPNMAlgorithm:
    """The stock factory: UA-GPNM wired to the service's tunables."""
    cost_model = None
    if config.cost_model_path:
        cost_model = CostModel.load_json(config.cost_model_path)
    return UAGPNM(
        pattern,
        data,
        use_partition=config.use_partition,
        batch_plan=config.batch_plan,
        coalesce_min_batch=config.coalesce_min_batch,
        slen_backend=config.slen_backend,
        dense_block_size=config.dense_block_size,
        cost_model=cost_model,
        telemetry=telemetry,
        recalibrate_every=config.recalibrate_every,
    )


class StreamingUpdateService:
    """Per-graph serialized streaming ingestion over GPNM algorithms.

    See the module docstring for the architecture.  All coroutine
    methods must run on the service's event loop; the read methods are
    synchronous and loop-free.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        algorithm_factory: AlgorithmFactory = default_algorithm_factory,
    ) -> None:
        self.config = config or ServiceConfig()
        self._factory = algorithm_factory
        self._scheduler = ActionScheduler()
        self._sessions: dict[str, _GraphSession] = {}
        #: One log shared by every graph's algorithm — the reason
        #: TelemetryLog.record is lock-guarded.
        self.telemetry = TelemetryLog()
        self._closed = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    async def register_graph(
        self, key: str, pattern: PatternGraph, data: DataGraph
    ) -> GraphSnapshot:
        """Register ``key`` and run its initial query (off-loop).

        Returns the initial snapshot.  Raises :class:`ServiceError` on a
        duplicate key.
        """
        self._ensure_open()
        if key in self._sessions:
            raise ServiceError(f"graph {key!r} is already registered")
        # Reserve the key before the (slow) initial query so concurrent
        # registrations of the same key fail fast instead of racing.
        self._sessions[key] = None  # type: ignore[assignment]
        loop = asyncio.get_running_loop()
        try:
            algorithm = await loop.run_in_executor(
                None, self._factory, pattern, data, self.config, self.telemetry
            )
            snapshot = await loop.run_in_executor(
                None, self._initial_snapshot, algorithm
            )
        except BaseException:
            del self._sessions[key]
            raise
        self._sessions[key] = _GraphSession(
            key=key,
            algorithm=algorithm,
            staged=snapshot.data.copy(),
            snapshot=snapshot,
        )
        return snapshot

    @staticmethod
    def _initial_snapshot(algorithm: GPNMAlgorithm) -> GraphSnapshot:
        return GraphSnapshot(
            version=0,
            result=algorithm.initial_result,
            pattern=algorithm.pattern,
            data=algorithm.data,
            slen=algorithm.slen,
        )

    @property
    def graphs(self) -> tuple[str, ...]:
        """The registered graph keys (registration order)."""
        return tuple(key for key, session in self._sessions.items() if session is not None)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    async def submit(self, key: str, payload) -> IngestReceipt:
        """Validate and buffer one delta payload for graph ``key``.

        ``payload`` is either an :class:`~repro.service.delta.UpdateData`
        or a raw mapping in the wire shape (parsed here, so parse errors
        surface as :class:`~repro.service.delta.DeltaError` before
        anything is enqueued).  The returned receipt reports how many
        deltas were accepted and whether the payload triggered a cut.
        """
        session = self._session(key)
        data = payload if isinstance(payload, UpdateData) else UpdateData(payload, default_graph=key)
        if data.graph is not None and data.graph != key:
            raise DeltaError(
                f"payload addresses graph {data.graph!r} but was submitted to {key!r}"
            )
        return await self._scheduler.schedule(
            key, lambda: self._ingest(session, data)
        )

    def submit_nowait(self, key: str, payload) -> "asyncio.Future[IngestReceipt]":
        """Fire-and-forget :meth:`submit`; the receipt future may be dropped."""
        session = self._session(key)
        data = payload if isinstance(payload, UpdateData) else UpdateData(payload, default_graph=key)
        if data.graph is not None and data.graph != key:
            raise DeltaError(
                f"payload addresses graph {data.graph!r} but was submitted to {key!r}"
            )
        return self._scheduler.schedule(key, lambda: self._ingest(session, data))

    async def _ingest(self, session: _GraphSession, data: UpdateData) -> IngestReceipt:
        """Queue action: validate, buffer, and maybe cut.  Serialized."""
        accepted = 0
        errors: list[str] = []
        for update in data.updates():
            problem = _stage_conflict(session.staged, update)
            if problem is None:
                try:
                    session.buffer.append(update)
                except UpdateError as exc:
                    problem = str(exc)
            if problem is not None:
                errors.append(f"{update!r}: {problem}")
                continue
            # Preconditions passed and the batch accepted it — applying
            # to the staged graph cannot fail now.
            update.apply(session.staged)
            accepted += 1
        session.accepted += accepted
        session.rejected += len(errors)
        cut_reason = self._admit(session)
        return IngestReceipt(
            accepted=accepted,
            rejected=len(errors),
            pending=len(session.buffer),
            cut=cut_reason,
            errors=tuple(errors),
        )

    def _admit(self, session: _GraphSession) -> Optional[str]:
        """Decide whether the buffered batch should settle now."""
        if not len(session.buffer):
            return None
        algorithm = session.algorithm
        if len(session.buffer) >= self.config.max_buffer:
            return self._cut(session, CUT_CAPACITY)
        statistics = BatchStatistics.from_updates(
            session.buffer,
            node_count=session.staged.number_of_nodes,
            backend=algorithm.slen_backend,
            partition_available=algorithm.uses_partition,
        )
        plan = plan_batch(
            statistics,
            requested=STRATEGY_AUTO,
            min_batch=self.config.coalesce_min_batch,
            model=algorithm.cost_model,
        )
        if plan.strategy != STRATEGY_PER_UPDATE:
            # Past the coalescing crossover: the batch is now cheaper
            # settled as a whole than it would be growing further.
            return self._cut(session, CUT_CROSSOVER)
        if self.config.deadline_seconds <= 0:
            return self._cut(session, CUT_DEADLINE)
        if session.deadline_handle is None:
            self._arm_deadline(session)
        return None

    def _arm_deadline(self, session: _GraphSession) -> None:
        generation = session.generation
        loop = asyncio.get_running_loop()
        session.deadline_handle = loop.call_later(
            self.config.deadline_seconds,
            self._deadline_expired,
            session,
            generation,
        )

    def _deadline_expired(self, session: _GraphSession, generation: int) -> None:
        """Timer callback: schedule the deadline cut on the graph's queue."""
        session.deadline_handle = None
        if session.generation != generation:
            return  # the armed-for buffer was already cut
        try:
            self._scheduler.schedule(
                session.key, lambda: self._deadline_cut(session, generation)
            )
        except QueueClosedError:
            # Shutdown raced the timer; drain() already cut the buffer.
            pass

    async def _deadline_cut(self, session: _GraphSession, generation: int) -> None:
        """Queue action: cut if the armed-for buffer is still pending."""
        if session.generation == generation and len(session.buffer):
            self._cut(session, CUT_DEADLINE)

    def _cut(self, session: _GraphSession, reason: str) -> str:
        """Swap the buffer out and schedule its settle.  Serialized."""
        batch = session.buffer
        session.buffer = UpdateBatch()
        session.generation += 1
        if session.deadline_handle is not None:
            session.deadline_handle.cancel()
            session.deadline_handle = None
        session.cut_reasons[reason] += 1
        self._scheduler.schedule(session.key, lambda: self._settle(session, batch))
        return reason

    async def _settle(self, session: _GraphSession, batch: UpdateBatch) -> None:
        """Queue action: run the algorithm's maintenance off-loop."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            outcome = await loop.run_in_executor(
                None, session.algorithm.subsequent_query, batch
            )
            snapshot = await loop.run_in_executor(
                None, self._settled_snapshot, session, outcome.result
            )
        except BaseException:
            session.settle_failures += 1
            await loop.run_in_executor(None, self._resync_staged, session)
            raise
        session.snapshot = snapshot
        session.settled += len(batch)
        session.settles += 1
        session.settle_seconds += loop.time() - started

    @staticmethod
    def _settled_snapshot(session: _GraphSession, result: MatchResult) -> GraphSnapshot:
        algorithm = session.algorithm
        return GraphSnapshot(
            version=session.snapshot.version + 1,
            result=result,
            pattern=algorithm.pattern,
            data=algorithm.data,
            slen=algorithm.slen,
        )

    @staticmethod
    def _resync_staged(session: _GraphSession) -> None:
        """Rebuild the staged graph after a failed settle.

        The algorithm's state is authoritative; the still-buffered
        deltas are re-validated against it and survivors re-applied
        (a failed settle can invalidate deltas that were accepted
        against state that never materialised).
        """
        staged = session.algorithm.data
        survivors = UpdateBatch()
        for update in session.buffer:
            if _stage_conflict(staged, update) is None:
                try:
                    survivors.append(update)
                except UpdateError:
                    continue
                update.apply(staged)
        session.buffer = survivors
        session.staged = staged

    # ------------------------------------------------------------------
    # Reads — synchronous, snapshot-backed, never enter the queue
    # ------------------------------------------------------------------
    def snapshot(self, key: str) -> GraphSnapshot:
        """The graph's last settled state."""
        return self._session(key).snapshot

    def matches(self, key: str, pattern_node=None):
        """Settled match sets: all of them, or one pattern node's."""
        result = self._session(key).snapshot.result
        if pattern_node is None:
            return result.as_dict()
        return result.matches(pattern_node)

    def top_k(
        self, key: str, k: int, pattern_node=None
    ) -> dict[object, list[RankedMatch]]:
        """Settled top-``k`` ranked matches (optionally one pattern node's)."""
        snapshot = self._session(key).snapshot
        return top_k_matches(
            snapshot.result,
            snapshot.pattern,
            snapshot.data,
            snapshot.slen,
            k,
            pattern_node=pattern_node,
        )

    def slen_distance(self, key: str, source, target) -> float | int:
        """Settled shortest-path length (``INF`` when unreachable)."""
        return self._session(key).snapshot.slen.distance(source, target)

    def stats(self, key: str) -> dict:
        """Per-graph counters: ingestion, cuts, settles."""
        session = self._session(key)
        return {
            "graph": key,
            "snapshot_version": session.snapshot.version,
            "accepted": session.accepted,
            "rejected": session.rejected,
            "settled": session.settled,
            "pending": len(session.buffer),
            "settles": session.settles,
            "settle_failures": session.settle_failures,
            "settle_seconds": session.settle_seconds,
            "cut_reasons": dict(session.cut_reasons),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Cut every non-empty buffer and wait for full quiescence."""
        for session in self._sessions.values():
            if session is None:
                continue

            async def _drain_cut(session=session) -> None:
                if len(session.buffer):
                    self._cut(session, CUT_DRAIN)

            self._scheduler.schedule(session.key, _drain_cut)
        await self._scheduler.drain()

    async def close(self) -> None:
        """Drain, stop all queue workers, persist telemetry.  Idempotent."""
        if self._closed:
            return
        await self.drain()
        await self._scheduler.close()
        self._closed = True
        if self.config.telemetry_path and len(self.telemetry):
            self.telemetry.save(self.config.telemetry_path)

    @property
    def errors(self) -> list[tuple[str, BaseException]]:
        """Failures from fire-and-forget actions (settles included)."""
        return self._scheduler.errors

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def _session(self, key: str) -> _GraphSession:
        session = self._sessions.get(key)
        if session is None:
            raise ServiceError(f"unknown graph {key!r}")
        return session


def _stage_conflict(staged: DataGraph, update: Update) -> Optional[str]:
    """Why ``update`` cannot apply to ``staged`` (``None`` when it can).

    These are exactly the preconditions of
    :meth:`~repro.graph.updates.Update.apply`, checked up front so an
    accepted delta is guaranteed to apply and a conflicting one is
    rejected with a message instead of poisoning the batch.
    """
    if isinstance(update, EdgeInsertion):
        if not staged.has_node(update.source):
            return f"source node {update.source!r} does not exist"
        if not staged.has_node(update.target):
            return f"target node {update.target!r} does not exist"
        if staged.has_edge(update.source, update.target):
            return "edge already exists"
        return None
    if isinstance(update, EdgeDeletion):
        if not staged.has_edge(update.source, update.target):
            return "edge does not exist"
        return None
    if isinstance(update, NodeInsertion):
        if staged.has_node(update.node):
            return f"node {update.node!r} already exists"
        seen: set[tuple] = set()
        for source, target in update.edges:
            if update.node not in (source, target):
                return f"payload edge ({source!r}, {target!r}) does not touch the new node"
            other = target if source == update.node else source
            if other != update.node and not staged.has_node(other):
                return f"payload edge endpoint {other!r} does not exist"
            if (source, target) in seen:
                return f"duplicate payload edge ({source!r}, {target!r})"
            seen.add((source, target))
        return None
    if isinstance(update, NodeDeletion):
        if not staged.has_node(update.node):
            return f"node {update.node!r} does not exist"
        return None
    return f"unsupported update kind {type(update).__name__}"
