"""Asyncio streaming ingestion + query layer over the GPNM algorithms.

:class:`StreamingUpdateService` turns the batch-oriented
:class:`~repro.algorithms.base.GPNMAlgorithm` state machine into a
continuously-available — and, with a journal directory configured,
*durable* and *fault-tolerant* — service:

* **Ingestion** — :meth:`~StreamingUpdateService.submit` accepts one
  delta payload (:class:`~repro.service.delta.UpdateData`), validates
  every delta against the graph's *staged* state (settled state plus the
  not-yet-settled buffer), and appends the valid ones to the graph's
  buffer.  All mutation runs as actions on the graph's serialized
  :class:`~repro.service.queue.ActionQueue`, so concurrent submitters
  to one graph are applied in a single well-defined order while distinct
  graphs proceed independently.
* **Durability** — with :attr:`ServiceConfig.journal_dir` set, every
  accepted payload is fsync-appended to the graph's write-ahead
  :class:`~repro.service.journal.GraphJournal` *before* its receipt is
  returned; settles append a checkpoint record and trigger size-bounded
  compaction.  :meth:`register_graph` recovers any journal found for
  the key: the compaction snapshot becomes the base graph and the
  uncheckpointed tail is replayed through the normal admission path, so
  a crash loses nothing a receipt was issued for.
* **Admission** — after every ingest the service consults the batch
  planner (:func:`~repro.batching.planner.plan_batch`) on the buffered
  batch's :class:`~repro.batching.planner.BatchStatistics`.  The buffer
  is *cut* — swapped out and handed to the algorithm's
  ``subsequent_query`` — when the planner's coalescing crossover is
  reached, when the buffer hits ``max_buffer`` (capacity backstop), or
  when the configured latency ``deadline`` expires.
* **Settling, and what happens when it fails** — the cut batch settles
  via the algorithm on an executor thread, serialized on the graph's
  queue.  A settle that raises is retried with capped exponential
  backoff against a restored copy of the last good state; if the batch
  still fails, it is bisected to isolate the *poison* deltas, which are
  durably recorded in the graph's
  :class:`~repro.service.journal.DeadLetterJournal` while every
  innocent delta settles normally.  Reads keep answering from the last
  good snapshot throughout.
* **Subscriptions** — a graph session binds *any number* of standing
  patterns, not one: :meth:`~StreamingUpdateService.subscribe` /
  :meth:`~StreamingUpdateService.unsubscribe` manage the registry, each
  subscription owning its own match relation and optional top-k.  A
  settle runs the pattern-independent work (graph application, ``SLen``
  maintenance, affected-region computation) **once** through the
  session's single engine, then fans the resulting
  :class:`~repro.matching.shared.SharedDelta` out to every
  subscription: a sound label-intersection filter skips untouched
  patterns, touched ones get one amendment pass.  Subscriptions are
  journaled (they ride compaction and recover on restart) and each
  settle pushes per-pattern match/top-k deltas to attached listeners.
  The legacy one-pattern :meth:`register_graph` remains as a
  deprecated shim over ``register`` + ``subscribe`` under the
  ``"default"`` pattern id.
* **Reads** — :meth:`~StreamingUpdateService.matches`,
  :meth:`~StreamingUpdateService.top_k` and
  :meth:`~StreamingUpdateService.slen_distance` answer from the last
  published snapshot, addressed by ``(key, pattern_id)`` (``None``
  resolves to the default pattern for backward compatibility).  They
  are plain synchronous methods that never enter the action queue, so
  a read never blocks behind an in-flight settle.
* **Shutdown** — :meth:`~StreamingUpdateService.drain` cuts every
  non-empty buffer and waits for all queues to go quiescent;
  :meth:`~StreamingUpdateService.close` then stops the workers.  Every
  accepted delta is settled (or durably dead-lettered) before ``close``
  returns.  :meth:`~StreamingUpdateService.abort` is the opposite: a
  simulated ``kill -9`` that stops everything *without* settling, used
  by the fault-injection tests to prove journal recovery.
"""

from __future__ import annotations

import asyncio
import functools
import logging
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.algorithms import GPNMAlgorithm, UAGPNM
from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH
from repro.batching.planner import (
    PLAN_CHOICES,
    STRATEGY_AUTO,
    STRATEGY_PER_UPDATE,
    BatchStatistics,
    CostModel,
    plan_batch,
)
from repro.batching.telemetry import TelemetryLog
from repro.graph import DataGraph, PatternGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
    UpdateBatch,
    UpdateError,
)
from repro.matching import MatchResult, RankedMatch, amend_match, top_k_matches
from repro.service.delta import DeltaError, UpdateData
from repro.service.faults import (
    MID_SETTLE,
    PRE_CHECKPOINT,
    PRE_SETTLE,
    NULL_INJECTOR,
    FaultInjector,
)
from repro.service.journal import (
    DEFAULT_COMPACT_BYTES,
    DeadLetterJournal,
    GraphJournal,
    journal_slug,
)
from repro.service.queue import ActionScheduler, QueueClosedError
from repro.service.subscriptions import (
    DEFAULT_PATTERN_ID,
    PushListener,
    Subscription,
    SubscriptionEvent,
    SubscriptionState,
    warn_register_graph_deprecated,
)
from repro.partition.label_partition import LabelPartition
from repro.spl.matrix import SLenMatrix
from repro.versioning import (
    DEFAULT_SNAPSHOT_HISTORY,
    GraphHistory,
    SnapshotHandle,
    VersionStore,
)

logger = logging.getLogger("repro.service")

#: Cut reasons reported in receipts and per-graph statistics.
CUT_CROSSOVER = "crossover"
CUT_CAPACITY = "capacity"
CUT_DEADLINE = "deadline"
CUT_DRAIN = "drain"


class ServiceError(RuntimeError):
    """Service-level failure (unknown graph, duplicate registration...)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of a :class:`StreamingUpdateService`.

    Attributes
    ----------
    deadline_seconds:
        Maximum time an accepted delta may sit buffered before the
        service cuts the batch anyway.  ``0`` cuts after every payload
        (lowest staleness, least coalescing benefit).
    max_buffer:
        Capacity backstop: the buffer is cut as soon as it holds this
        many deltas regardless of planner or deadline.
    autocut:
        Whether admission cuts batches on its own (planner crossover
        and latency deadline).  Off, only the ``max_buffer`` capacity
        backstop and explicit :meth:`StreamingUpdateService.drain`
        calls cut — the mode the replay driver uses to reproduce a
        recorded run's settle boundaries exactly instead of letting
        the replayed configuration pick its own.
    coalesce_min_batch:
        The planner's crossover batch size (rule 1 of
        :func:`~repro.batching.planner.plan_batch`).
    batch_plan:
        Plan handed to the underlying algorithm (``"auto"`` routes per
        batch through the cost model).
    use_partition:
        Whether the default algorithm factory builds UA-GPNM with the
        label partition (Section V).
    slen_backend / dense_block_size:
        ``SLen`` storage knobs, passed through to the algorithm.
    telemetry_path:
        When set, the service's shared telemetry log is saved here on
        :meth:`StreamingUpdateService.close`.
    recalibrate_every / cost_model_path:
        Planner calibration knobs, passed through to the algorithm.
    journal_dir:
        Directory for per-graph write-ahead journals.  ``None`` (the
        default) disables durability: accepted-but-unsettled deltas die
        with the process, exactly the pre-journal behaviour.
    journal_compact_bytes:
        Compaction threshold: once a graph's journal exceeds this many
        bytes (and a checkpoint has advanced), it is rewritten as a
        snapshot plus the uncheckpointed tail.
    settle_retries:
        How many times a failed settle is retried (against a restored
        copy of the last good state) before the batch is bisected and
        its poison deltas quarantined.  ``0`` goes straight to
        bisection.
    settle_backoff_seconds / settle_backoff_cap_seconds:
        Capped exponential backoff between settle retries: retry ``n``
        waits ``min(backoff * 2**(n-1), cap)`` seconds.
    snapshot_history:
        How many settled snapshot versions each graph retains for
        time-travel reads (``as_of``).  Older versions are evicted from
        the :class:`~repro.versioning.store.VersionStore` (reads of them
        raise :class:`~repro.versioning.store.VersionExpiredError`), but
        stay alive for readers that already pinned them.
    max_subscriptions:
        Cap on standing patterns per graph session.  The marginal cost
        of a subscription is one filter + amendment per settle, but the
        cap keeps a misbehaving client from degrading every settle on
        the graph.
    push_notifications:
        Whether settles produce per-pattern push deltas for attached
        listeners (library callbacks and TCP ``subscribe`` clients).
        Off, subscriptions still settle and serve reads — clients poll.
    """

    deadline_seconds: float = 0.05
    max_buffer: int = 1024
    autocut: bool = True
    coalesce_min_batch: int = DEFAULT_COALESCE_MIN_BATCH
    batch_plan: str = STRATEGY_AUTO
    use_partition: bool = True
    slen_backend: str = "sparse"
    dense_block_size: Optional[int] = None
    telemetry_path: Optional[str] = None
    recalibrate_every: int = 0
    cost_model_path: Optional[str] = None
    journal_dir: Optional[str] = None
    journal_compact_bytes: int = DEFAULT_COMPACT_BYTES
    settle_retries: int = 2
    settle_backoff_seconds: float = 0.05
    settle_backoff_cap_seconds: float = 1.0
    snapshot_history: int = DEFAULT_SNAPSHOT_HISTORY
    max_subscriptions: int = 64
    push_notifications: bool = True

    def __post_init__(self) -> None:
        if self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if self.max_buffer < 1:
            raise ValueError("max_buffer must be at least 1")
        if self.coalesce_min_batch < 0:
            raise ValueError("coalesce_min_batch must be non-negative")
        if self.batch_plan not in PLAN_CHOICES:
            raise ValueError(
                f"unknown batch_plan {self.batch_plan!r}; expected one of {PLAN_CHOICES}"
            )
        if self.recalibrate_every < 0:
            raise ValueError("recalibrate_every must be non-negative")
        if self.journal_compact_bytes < 1:
            raise ValueError("journal_compact_bytes must be positive")
        if self.settle_retries < 0:
            raise ValueError("settle_retries must be non-negative")
        if self.settle_backoff_seconds < 0 or self.settle_backoff_cap_seconds < 0:
            raise ValueError("settle backoff values must be non-negative")
        if self.snapshot_history < 1:
            raise ValueError("snapshot_history must retain at least one version")
        if self.max_subscriptions < 1:
            raise ValueError("max_subscriptions must allow at least one pattern")

    @classmethod
    def from_experiment(cls, config) -> "ServiceConfig":
        """Derive service tunables from an ``ExperimentConfig``."""
        return cls(
            deadline_seconds=config.service_deadline_seconds,
            max_buffer=config.service_max_buffer,
            coalesce_min_batch=config.coalesce_min_batch,
            batch_plan=config.batch_plan or STRATEGY_AUTO,
            slen_backend=config.slen_backend,
            dense_block_size=config.dense_block_size,
            telemetry_path=config.telemetry_path,
            recalibrate_every=config.recalibrate_every,
            cost_model_path=config.cost_model_path,
            journal_dir=config.journal_dir,
            settle_retries=config.service_settle_retries,
            snapshot_history=config.service_snapshot_history,
            max_subscriptions=config.service_max_subscriptions,
            push_notifications=config.service_push_notifications,
        )


@dataclass(frozen=True)
class GraphSnapshot:
    """One settled, immutable state of a registered graph.

    Reads answer from a snapshot without coordination: the service only
    ever *replaces* the published snapshot (never mutates it in place) —
    the red-green switch.  ``slen`` is a copy-on-write fork of the
    algorithm's matrix (see :meth:`repro.spl.matrix.SLenMatrix.fork`),
    so publishing a snapshot shares every unmodified block with the
    live state instead of deep-copying the whole grid.  ``partition``
    carries the label partition pinned with the same version (``None``
    when partitioned maintenance is off or its cache was cold).

    Snapshots are *pattern-aware*: ``subscriptions`` maps each standing
    pattern id to its frozen
    :class:`~repro.service.subscriptions.SubscriptionState` (pattern +
    match result + optional top-k), all sharing this one ``(data,
    slen)`` pair.  The legacy single-pattern accessors ``result`` /
    ``pattern`` resolve the ``"default"`` subscription the
    :meth:`StreamingUpdateService.register_graph` shim binds.
    """

    version: int
    data: DataGraph
    slen: SLenMatrix
    subscriptions: Mapping[str, SubscriptionState] = field(default_factory=dict)
    partition: Optional[LabelPartition] = None

    def state_for(self, pattern_id: Optional[str] = None) -> SubscriptionState:
        """The subscription state for ``pattern_id`` (``None`` = default)."""
        resolved = DEFAULT_PATTERN_ID if pattern_id is None else pattern_id
        try:
            return self.subscriptions[resolved]
        except KeyError:
            raise ServiceError(
                f"no subscription {resolved!r} in snapshot version {self.version}"
            ) from None

    @property
    def pattern_ids(self) -> tuple[str, ...]:
        """The subscribed pattern ids (registration order)."""
        return tuple(self.subscriptions)

    @property
    def result(self) -> MatchResult:
        """The default subscription's match result (legacy accessor)."""
        return self.state_for().result

    @property
    def pattern(self) -> PatternGraph:
        """The default subscription's pattern (legacy accessor)."""
        return self.state_for().pattern


@dataclass(frozen=True)
class IngestReceipt:
    """The outcome of one submitted delta payload.

    Attributes
    ----------
    accepted / rejected:
        How many of the payload's deltas were buffered vs. refused
        (stale or conflicting against the staged state).
    pending:
        Buffered-but-unsettled deltas on the graph right after this
        payload (0 means the payload triggered a cut).
    cut:
        Why this payload triggered a batch cut (``"crossover"``,
        ``"capacity"`` or ``"deadline"``), or ``None`` if the deltas
        remain buffered.
    errors:
        One message per rejected delta, in payload order.

    When the service runs with a journal, a receipt with ``accepted >
    0`` is a *durability* promise: the accepted deltas were fsynced to
    the write-ahead journal before this receipt was created.
    """

    accepted: int
    rejected: int
    pending: int
    cut: Optional[str] = None
    errors: tuple[str, ...] = ()


@dataclass
class _GraphSession:
    """Mutable per-graph state, touched only from the graph's queue."""

    key: str
    algorithm: GPNMAlgorithm
    #: Settled state plus the buffered-but-unsettled deltas; the
    #: submit-time validation target.
    staged: DataGraph
    snapshot: GraphSnapshot
    journal: Optional[GraphJournal] = None
    dead_letter: Optional[DeadLetterJournal] = None
    buffer: UpdateBatch = field(default_factory=UpdateBatch)
    #: Bumped on every cut; lets an expired deadline recognise that the
    #: buffer it armed for was already cut.
    generation: int = 0
    deadline_handle: Optional[asyncio.TimerHandle] = None
    #: Journal seq of the most recently appended (or replayed) payload;
    #: captured at cut time as the batch's checkpoint high-water mark.
    last_seq: int = 0
    accepted: int = 0
    rejected: int = 0
    settled: int = 0
    settles: int = 0
    #: ``settles`` split by provenance: a settle whose batch consumed
    #: at least one journal-replayed delta counts as *recovered*, every
    #: other as *live* (``settles == recovered_settles + live_settles``).
    recovered_settles: int = 0
    live_settles: int = 0
    #: Journal-replayed deltas accepted but not yet settled; drained by
    #: the settle classification above.
    recovery_pending: int = 0
    settle_failures: int = 0
    settle_retries: int = 0
    settle_seconds: float = 0.0
    quarantined: int = 0
    rebuilds: int = 0
    recovered: int = 0
    recovery_skipped: int = 0
    cut_reasons: Counter = field(default_factory=Counter)
    #: Bounded ring of retained snapshot versions (time-travel reads).
    versions: VersionStore = field(default_factory=VersionStore)
    #: created/expired lifetime stamps per node/edge (KBase idiom).
    history: GraphHistory = field(default_factory=GraphHistory)
    #: Cumulative wall time spent building + publishing snapshots.
    publish_seconds: float = 0.0
    #: Standing patterns, ``pattern_id`` → live state (subscribe order).
    subscriptions: dict[str, Subscription] = field(default_factory=dict)
    #: Shared-maintenance accounting.  A settle bumps the first two
    #: exactly once no matter how many patterns are subscribed — the
    #: acceptance criterion of shared maintenance — while the fan-out
    #: counters split per-pattern work into amendments vs. provable
    #: skips.
    maintenance_passes: int = 0
    slen_update_passes: int = 0
    fanout_amend_passes: int = 0
    fanout_skips: int = 0
    notifications_sent: int = 0


#: Builds the per-graph algorithm; injectable for tests (e.g. a slow
#: settle wrapper proving reads do not block, or the fault harness's
#: flaky wrapper proving retry and quarantine).
AlgorithmFactory = Callable[[PatternGraph, DataGraph, "ServiceConfig", Optional[TelemetryLog]], GPNMAlgorithm]


def default_algorithm_factory(
    pattern: PatternGraph,
    data: DataGraph,
    config: ServiceConfig,
    telemetry: Optional[TelemetryLog],
) -> GPNMAlgorithm:
    """The stock factory: UA-GPNM wired to the service's tunables."""
    cost_model = None
    if config.cost_model_path:
        cost_model = CostModel.load_json(config.cost_model_path)
    return UAGPNM(
        pattern,
        data,
        use_partition=config.use_partition,
        batch_plan=config.batch_plan,
        coalesce_min_batch=config.coalesce_min_batch,
        slen_backend=config.slen_backend,
        dense_block_size=config.dense_block_size,
        cost_model=cost_model,
        telemetry=telemetry,
        recalibrate_every=config.recalibrate_every,
    )


class StreamingUpdateService:
    """Per-graph serialized streaming ingestion over GPNM algorithms.

    See the module docstring for the architecture.  All coroutine
    methods must run on the service's event loop; the read methods are
    synchronous and loop-free.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        algorithm_factory: AlgorithmFactory = default_algorithm_factory,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._factory = algorithm_factory
        self._faults = faults if faults is not None else NULL_INJECTOR
        self._scheduler = ActionScheduler()
        self._sessions: dict[str, _GraphSession] = {}
        #: One log shared by every graph's algorithm — the reason
        #: TelemetryLog.record is lock-guarded.
        self.telemetry = TelemetryLog()
        self._closed = False

    # ------------------------------------------------------------------
    # Registration and recovery
    # ------------------------------------------------------------------
    async def register(self, key: str, data: DataGraph) -> GraphSnapshot:
        """Register ``key``, prepare its engine, recover its journal.

        Registration binds no pattern: standing patterns are attached
        afterwards with :meth:`subscribe`.  The session's single engine
        is built over an *empty* pattern — it exists to run the shared
        per-batch work (graph application, ``SLen`` maintenance,
        affected-region computation) that every subscription then
        consumes.

        With :attr:`ServiceConfig.journal_dir` set, an existing journal
        for ``key`` takes precedence over ``data``: its compaction
        snapshot (when present) becomes the base graph, subscriptions
        recorded in the journal are restored (their relations recomputed
        against the recovered graph), and the uncheckpointed delta tail
        is replayed through the normal admission path before this
        coroutine returns (replayed batches may still be settling;
        :meth:`drain` flushes them).  Returns the initial snapshot.
        Raises :class:`ServiceError` on a duplicate key.
        """
        self._ensure_open()
        if key in self._sessions:
            raise ServiceError(f"graph {key!r} is already registered")
        # Reserve the key before the (slow) initial query so concurrent
        # registrations of the same key fail fast instead of racing.
        self._sessions[key] = None  # type: ignore[assignment]
        loop = asyncio.get_running_loop()
        journal: Optional[GraphJournal] = None
        dead_letter: Optional[DeadLetterJournal] = None
        recovered = None
        try:
            if self.config.journal_dir:
                slug = journal_slug(key)
                directory = Path(self.config.journal_dir)
                journal = GraphJournal(
                    directory / f"{slug}.journal.jsonl",
                    compact_bytes=self.config.journal_compact_bytes,
                    faults=self._faults,
                )
                dead_letter = DeadLetterJournal(directory / f"{slug}.deadletter.jsonl")
                recovered = await loop.run_in_executor(None, journal.open)
                if recovered.base_graph is not None:
                    data = recovered.base_graph
            algorithm = await loop.run_in_executor(
                None, self._factory, PatternGraph(), data, self.config, self.telemetry
            )
            base_version = recovered.checkpoint_version if recovered is not None else 0
            restored: dict[str, Subscription] = {}
            if recovered is not None and recovered.subscriptions:
                restored = {
                    pattern_id: Subscription.from_doc(doc)
                    for pattern_id, doc in recovered.subscriptions.items()
                }
            snapshot = await loop.run_in_executor(
                None, self._initial_snapshot, algorithm, base_version, restored
            )
        except BaseException:
            if journal is not None:
                journal.close()
            del self._sessions[key]
            raise
        session = _GraphSession(
            key=key,
            algorithm=algorithm,
            staged=snapshot.data.copy(),
            snapshot=snapshot,
            journal=journal,
            dead_letter=dead_letter,
            versions=VersionStore(self.config.snapshot_history),
            subscriptions=restored,
        )
        session.versions.publish(snapshot)
        if recovered is not None and recovered.stamps is not None:
            session.history = GraphHistory.from_doc(recovered.stamps)
        else:
            session.history.observe_base(snapshot.data, snapshot.version)
        if recovered is not None:
            session.last_seq = recovered.checkpoint_seq
        self._sessions[key] = session
        if recovered is not None and recovered.tail:
            logger.info(
                "graph %r: replaying %d journaled payload(s) past checkpoint seq %d",
                key,
                len(recovered.tail),
                recovered.checkpoint_seq,
            )
            for seq, updates in recovered.tail:
                await self._scheduler.schedule(
                    key, functools.partial(self._replay_ingest, session, updates, seq)
                )
        return session.snapshot

    async def register_graph(
        self, key: str, pattern: PatternGraph, data: DataGraph
    ) -> GraphSnapshot:
        """Deprecated single-pattern registration (shim).

        Equivalent to :meth:`register` followed by :meth:`subscribe`
        under the ``"default"`` pattern id, which is what every
        pattern-unaddressed read resolves; returns the snapshot with the
        default subscription bound.  Journal recovery still works: if
        the recovered journal already holds a ``"default"``
        subscription with the same pattern, the re-subscribe is an
        idempotent no-op.  Emits a :class:`DeprecationWarning` once per
        process.
        """
        warn_register_graph_deprecated()
        await self.register(key, data)
        await self.subscribe(key, DEFAULT_PATTERN_ID, pattern, replace=True)
        return self._session(key).snapshot

    @staticmethod
    def _initial_snapshot(
        algorithm: GPNMAlgorithm,
        version: int = 0,
        subscriptions: Optional[Mapping[str, Subscription]] = None,
    ) -> GraphSnapshot:
        """Build a registration/rebuild snapshot from a fresh engine.

        Each subscription's relation is recomputed from scratch against
        the forked state — registration and quarantine rebuilds have no
        previous relation worth amending from.
        """
        data, slen, partition = algorithm.fork_state()
        states: dict[str, SubscriptionState] = {}
        if subscriptions:
            for pattern_id, subscription in subscriptions.items():
                subscription.recompute(data, slen)
                states[pattern_id] = subscription.state(data, slen)
        return GraphSnapshot(
            version=version,
            data=data,
            slen=slen,
            subscriptions=states,
            partition=partition,
        )

    @property
    def graphs(self) -> tuple[str, ...]:
        """The registered graph keys (registration order)."""
        return tuple(key for key, session in self._sessions.items() if session is not None)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    async def subscribe(
        self,
        key: str,
        pattern_id: str,
        pattern: PatternGraph,
        k: Optional[int] = None,
        *,
        replace: bool = False,
    ) -> SubscriptionState:
        """Attach a standing pattern to ``key``; returns its initial state.

        Runs as an action on the graph's serialized queue, so it never
        interleaves with a settle: the subscription's relation is
        computed against the last published snapshot (value-equal to
        the live engine state between settles) and the snapshot is
        republished *at the same version* with the new pattern bound —
        subscribing is not a settle and does not advance time.  With a
        journal configured the subscription is durably recorded first
        and rides compaction, so it survives restarts.  ``k`` arms the
        subscription's standing top-``k`` ranking (pushed with match
        deltas to attached listeners).  Raises :class:`ServiceError` on
        a duplicate ``pattern_id`` unless ``replace`` is given, and
        when the graph is at :attr:`ServiceConfig.max_subscriptions`.
        """
        session = self._session(key)
        subscription = Subscription(pattern_id, pattern, k=k)
        return await self._scheduler.schedule(
            key, functools.partial(self._subscribe, session, subscription, replace)
        )

    async def _subscribe(
        self, session: _GraphSession, subscription: Subscription, replace: bool
    ) -> SubscriptionState:
        """Queue action: journal, bind, and republish one subscription."""
        pattern_id = subscription.pattern_id
        existing = session.subscriptions.get(pattern_id)
        if existing is not None:
            if not replace:
                raise ServiceError(
                    f"graph {session.key!r} already has subscription {pattern_id!r}"
                )
            if existing.to_doc() == subscription.to_doc():
                # Idempotent re-subscribe (the register_graph shim after
                # journal recovery): keep the live relation + listeners.
                return session.snapshot.state_for(pattern_id)
            for listener in existing.listeners:
                subscription.attach(listener)
        elif len(session.subscriptions) >= self.config.max_subscriptions:
            raise ServiceError(
                f"graph {session.key!r} is at its subscription cap "
                f"({self.config.max_subscriptions})"
            )
        loop = asyncio.get_running_loop()
        if session.journal is not None:
            await loop.run_in_executor(
                None, session.journal.append_subscribe, subscription.to_doc()
            )
        return await loop.run_in_executor(
            None, self._bind_subscription, session, subscription
        )

    @staticmethod
    def _bind_subscription(
        session: _GraphSession, subscription: Subscription
    ) -> SubscriptionState:
        """Executor-side: compute the relation and republish the snapshot."""
        snapshot = session.snapshot
        subscription.recompute(snapshot.data, snapshot.slen)
        state = subscription.state(snapshot.data, snapshot.slen)
        session.subscriptions[subscription.pattern_id] = subscription
        states = dict(snapshot.subscriptions)
        states[subscription.pattern_id] = state
        session.snapshot = StreamingUpdateService._republish(session, states)
        return state

    async def unsubscribe(self, key: str, pattern_id: str) -> bool:
        """Detach a standing pattern; ``True`` when it was subscribed.

        Serialized on the graph's queue: an unsubscribe issued while a
        settle is in flight takes effect right after it, so the pattern
        receives that settle's delta (its listeners were attached when
        the settle published) and nothing afterwards.  Journaled, so
        the pattern stays gone across restarts.
        """
        session = self._session(key)
        return await self._scheduler.schedule(
            key, functools.partial(self._unsubscribe, session, pattern_id)
        )

    async def _unsubscribe(self, session: _GraphSession, pattern_id: str) -> bool:
        """Queue action: drop the subscription, journal, republish."""
        if pattern_id not in session.subscriptions:
            return False
        del session.subscriptions[pattern_id]
        if session.journal is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, session.journal.append_unsubscribe, pattern_id
            )
        states = {
            pid: state
            for pid, state in session.snapshot.subscriptions.items()
            if pid != pattern_id
        }
        session.snapshot = self._republish(session, states)
        return True

    @staticmethod
    def _republish(
        session: _GraphSession, states: Mapping[str, SubscriptionState]
    ) -> GraphSnapshot:
        """Replace the latest snapshot in place with new subscription states.

        Subscribe/unsubscribe change *which* patterns are bound, not
        the graph: the data, SLen and partition are reused and the
        version is unchanged (the version store supports replacing the
        latest version, the same mechanism quarantine rebuilds use).
        """
        old = session.snapshot
        snapshot = GraphSnapshot(
            version=old.version,
            data=old.data,
            slen=old.slen,
            subscriptions=dict(states),
            partition=old.partition,
        )
        session.versions.publish(snapshot)
        return snapshot

    def attach_listener(self, key: str, pattern_id: str, listener: PushListener) -> int:
        """Attach a push listener to a subscription; returns a detach token.

        The listener is called on the service's event loop with one
        :class:`~repro.service.subscriptions.SubscriptionDelta` after
        each settle that changed the subscription's matches or ranking
        (when :attr:`ServiceConfig.push_notifications` is on).  It must
        not block; a raising listener is logged and skipped.
        """
        session = self._session(key)
        subscription = session.subscriptions.get(pattern_id)
        if subscription is None:
            raise ServiceError(f"graph {key!r} has no subscription {pattern_id!r}")
        return subscription.attach(listener)

    def detach_listener(self, key: str, pattern_id: str, token: int) -> bool:
        """Detach a push listener; ``True`` when it was attached.

        Tolerates the graph or subscription having gone away — the TCP
        front end detaches on disconnect, which can race an
        unsubscribe.
        """
        session = self._sessions.get(key)
        if session is None:
            return False
        subscription = session.subscriptions.get(pattern_id)
        if subscription is None:
            return False
        return subscription.detach(token)

    def subscription_docs(self, key: str) -> dict[str, dict]:
        """The standing patterns on ``key`` with per-pattern counters."""
        session = self._session(key)
        docs: dict[str, dict] = {}
        for pattern_id, subscription in session.subscriptions.items():
            doc = subscription.to_doc()
            doc["amend_passes"] = subscription.amend_passes
            doc["skipped_settles"] = subscription.skipped_settles
            doc["notifications"] = subscription.notifications
            doc["listeners"] = len(subscription.listeners)
            docs[pattern_id] = doc
        return docs

    # ------------------------------------------------------------------
    # Live capture — start/stop journaling without a restart
    # ------------------------------------------------------------------
    async def start_capture(self, key: str, directory) -> dict:
        """Begin journaling a live, so-far-unjournaled graph session.

        Writes a fresh write-ahead journal for ``key`` under
        ``directory``: one compaction-style snapshot of the current
        settled state (graph, version, lifetime stamps, subscriptions),
        then — if deltas are buffered — one delta record holding the
        accepted-but-unsettled buffer, which is exactly the tail a
        journal-from-birth would carry at this moment.  From here on
        every accepted payload is journaled, settles checkpoint and
        compact, and the file is a valid replay source
        (:class:`~repro.replay.log.ReplayLog`) — no restart with
        :attr:`ServiceConfig.journal_dir` needed.

        Serialized on the graph's queue, so the captured snapshot can
        never miss an in-flight settle: any batch cut before this call
        settles first.  Returns ``{"path", "base_seq", "last_seq"}``.
        Raises :class:`ServiceError` if the graph is already journaled
        (including via ``journal_dir``).
        """
        session = self._session(key)
        return await self._scheduler.schedule(
            key, functools.partial(self._start_capture, session, Path(directory))
        )

    async def _start_capture(self, session: _GraphSession, directory: Path) -> dict:
        """Queue action: snapshot the session into a brand-new journal."""
        if session.journal is not None:
            raise ServiceError(f"graph {session.key!r} is already journaled")
        slug = journal_slug(session.key)
        journal = GraphJournal(
            directory / f"{slug}.journal.jsonl",
            compact_bytes=self.config.journal_compact_bytes,
            faults=self._faults,
        )
        loop = asyncio.get_running_loop()
        base_seq = session.last_seq
        await loop.run_in_executor(
            None,
            functools.partial(
                journal.initialize,
                session.snapshot.data,
                seq=base_seq,
                version=session.snapshot.version,
                stamps=session.history.to_doc(),
                subscriptions=[
                    subscription.to_doc()
                    for subscription in session.subscriptions.values()
                ],
            ),
        )
        if len(session.buffer):
            session.last_seq = await loop.run_in_executor(
                None, journal.append_delta, list(session.buffer)
            )
        session.journal = journal
        session.dead_letter = DeadLetterJournal(
            directory / f"{slug}.deadletter.jsonl"
        )
        logger.info(
            "graph %r: capture started at seq %d version %d (%s)",
            session.key,
            base_seq,
            session.snapshot.version,
            journal.path,
        )
        return {
            "path": str(journal.path),
            "base_seq": base_seq,
            "last_seq": session.last_seq,
        }

    async def stop_capture(self, key: str) -> dict:
        """Stop journaling ``key``; the file stays behind for replay.

        The inverse of :meth:`start_capture` (it also detaches a
        ``journal_dir`` journal — durability for this graph ends here,
        which is the point: the recorded window is now immutable).
        Returns ``{"path", "last_seq", "checkpoint_seq"}``.  Raises
        :class:`ServiceError` when the graph has no journal.
        """
        session = self._session(key)
        return await self._scheduler.schedule(
            key, functools.partial(self._stop_capture, session)
        )

    async def _stop_capture(self, session: _GraphSession) -> dict:
        """Queue action: close and detach the session's journal."""
        journal = session.journal
        if journal is None:
            raise ServiceError(f"graph {session.key!r} has no journal to stop")
        info = {
            "path": str(journal.path),
            "last_seq": journal.last_seq,
            "checkpoint_seq": journal.checkpoint_seq,
        }
        journal.close()
        session.journal = None
        session.dead_letter = None
        logger.info(
            "graph %r: capture stopped at seq %d (%s)",
            session.key,
            info["last_seq"],
            info["path"],
        )
        return info

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    async def submit(self, key: str, payload) -> IngestReceipt:
        """Validate, journal, and buffer one delta payload for ``key``.

        ``payload`` is either an :class:`~repro.service.delta.UpdateData`
        or a raw mapping in the wire shape (parsed here, so parse errors
        surface as :class:`~repro.service.delta.DeltaError` before
        anything is enqueued).  The returned receipt reports how many
        deltas were accepted and whether the payload triggered a cut;
        with a journal configured, accepted deltas are durable before
        the receipt exists.
        """
        session = self._session(key)
        data = payload if isinstance(payload, UpdateData) else UpdateData(payload, default_graph=key)
        if data.graph is not None and data.graph != key:
            raise DeltaError(
                f"payload addresses graph {data.graph!r} but was submitted to {key!r}"
            )
        return await self._scheduler.schedule(
            key, lambda: self._ingest(session, data)
        )

    def submit_nowait(self, key: str, payload) -> "asyncio.Future[IngestReceipt]":
        """Fire-and-forget :meth:`submit`; the receipt future may be dropped."""
        session = self._session(key)
        data = payload if isinstance(payload, UpdateData) else UpdateData(payload, default_graph=key)
        if data.graph is not None and data.graph != key:
            raise DeltaError(
                f"payload addresses graph {data.graph!r} but was submitted to {key!r}"
            )
        return self._scheduler.schedule(key, lambda: self._ingest(session, data))

    def backlog(self, key: str) -> int:
        """Pending work on ``key``: buffered deltas + queued actions.

        The TCP front end uses this as its overload signal — it refuses
        new update requests with a ``retry_after`` hint instead of
        queueing without bound.
        """
        session = self._session(key)
        return len(session.buffer) + self._scheduler.queue(key).pending

    async def _ingest(self, session: _GraphSession, data: UpdateData) -> IngestReceipt:
        """Queue action: validate, journal, buffer, and maybe cut."""
        accepted: list[Update] = []
        errors: list[str] = []
        for update in data.updates():
            problem = _stage_conflict(session.staged, update)
            if problem is None:
                try:
                    session.buffer.append(update)
                except UpdateError as exc:
                    problem = str(exc)
            if problem is not None:
                errors.append(f"{update!r}: {problem}")
                continue
            # Preconditions passed and the batch accepted it — applying
            # to the staged graph cannot fail now.
            update.apply(session.staged)
            accepted.append(update)
        if accepted and session.journal is not None:
            # Write-ahead: the receipt below must not exist before the
            # deltas are on disk.  (A crash between buffer mutation and
            # journal append loses in-memory state only, and no receipt
            # was issued for it.)
            session.last_seq = await asyncio.get_running_loop().run_in_executor(
                None, session.journal.append_delta, accepted
            )
        session.accepted += len(accepted)
        session.rejected += len(errors)
        cut_reason = self._admit(session)
        return IngestReceipt(
            accepted=len(accepted),
            rejected=len(errors),
            pending=len(session.buffer),
            cut=cut_reason,
            errors=tuple(errors),
        )

    async def _replay_ingest(
        self, session: _GraphSession, updates: list[Update], seq: int
    ) -> None:
        """Queue action: re-admit one journaled payload during recovery.

        The updates were accepted (and journaled) by a previous
        incarnation, so they are *not* re-appended.  Validation still
        runs against the staged state: a delta whose effect is already
        present in the recovered base (it settled into a snapshot whose
        checkpoint was lost) is skipped, not double-applied.
        """
        for update in updates:
            problem = _stage_conflict(session.staged, update)
            if problem is None:
                try:
                    session.buffer.append(update)
                except UpdateError as exc:
                    problem = str(exc)
            if problem is not None:
                session.recovery_skipped += 1
                continue
            update.apply(session.staged)
            session.accepted += 1
            session.recovered += 1
            session.recovery_pending += 1
        session.last_seq = seq
        self._admit(session)

    def _admit(self, session: _GraphSession) -> Optional[str]:
        """Decide whether the buffered batch should settle now."""
        if not len(session.buffer):
            return None
        algorithm = session.algorithm
        if len(session.buffer) >= self.config.max_buffer:
            return self._cut(session, CUT_CAPACITY)
        if not self.config.autocut:
            # Externally-paced mode (replay): boundaries come from
            # drain(), never from the planner or a deadline.
            return None
        statistics = BatchStatistics.from_updates(
            session.buffer,
            node_count=session.staged.number_of_nodes,
            backend=algorithm.slen_backend,
            partition_available=algorithm.uses_partition,
        )
        plan = plan_batch(
            statistics,
            requested=STRATEGY_AUTO,
            min_batch=self.config.coalesce_min_batch,
            model=algorithm.cost_model,
        )
        if plan.strategy != STRATEGY_PER_UPDATE:
            # Past the coalescing crossover: the batch is now cheaper
            # settled as a whole than it would be growing further.
            return self._cut(session, CUT_CROSSOVER)
        if self.config.deadline_seconds <= 0:
            return self._cut(session, CUT_DEADLINE)
        if session.deadline_handle is None:
            self._arm_deadline(session)
        return None

    def _arm_deadline(self, session: _GraphSession) -> None:
        generation = session.generation
        loop = asyncio.get_running_loop()
        session.deadline_handle = loop.call_later(
            self.config.deadline_seconds,
            self._deadline_expired,
            session,
            generation,
        )

    def _deadline_expired(self, session: _GraphSession, generation: int) -> None:
        """Timer callback: schedule the deadline cut on the graph's queue."""
        session.deadline_handle = None
        if session.generation != generation:
            return  # the armed-for buffer was already cut
        try:
            self._scheduler.schedule(
                session.key, lambda: self._deadline_cut(session, generation)
            )
        except QueueClosedError:
            # Shutdown raced the timer; drain() already cut the buffer.
            pass

    async def _deadline_cut(self, session: _GraphSession, generation: int) -> None:
        """Queue action: cut if the armed-for buffer is still pending."""
        if session.generation == generation and len(session.buffer):
            self._cut(session, CUT_DEADLINE)

    def _cut(self, session: _GraphSession, reason: str) -> str:
        """Swap the buffer out and schedule its settle.  Serialized."""
        batch = session.buffer
        seq_high = session.last_seq
        session.buffer = UpdateBatch()
        session.generation += 1
        if session.deadline_handle is not None:
            session.deadline_handle.cancel()
            session.deadline_handle = None
        session.cut_reasons[reason] += 1
        self._scheduler.schedule(
            session.key, functools.partial(self._settle, session, batch, seq_high)
        )
        return reason

    # ------------------------------------------------------------------
    # Settling: retries, bisection, quarantine, checkpointing
    # ------------------------------------------------------------------
    async def _settle(
        self, session: _GraphSession, batch: UpdateBatch, seq_high: int
    ) -> None:
        """Queue action: settle ``batch``, surviving kernel failures.

        Every path out of here (plain success, retry success, or
        bisection + quarantine) leaves the algorithm consistent and the
        snapshot published; the checkpoint then covers ``seq_high``
        because every delta up to it either settled or was durably
        dead-lettered.  Only an injected crash (a
        :class:`BaseException`) escapes, exactly like process death.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._faults.hit(PRE_SETTLE)
        try:
            await self._settle_with_recovery(session, batch)
        finally:
            session.settle_seconds += loop.time() - started
        if session.journal is not None and seq_high > session.journal.checkpoint_seq:
            self._faults.hit(PRE_CHECKPOINT)
            await loop.run_in_executor(
                None,
                session.journal.checkpoint,
                seq_high,
                session.snapshot.version,
                session.settles,
            )
            if session.journal.should_compact():
                await loop.run_in_executor(
                    None,
                    functools.partial(
                        session.journal.compact,
                        session.snapshot.data,
                        session.snapshot.version,
                        stamps=session.history.to_doc(),
                        subscriptions=[
                            sub.to_doc() for sub in session.subscriptions.values()
                        ],
                    ),
                )

    async def _settle_with_recovery(
        self, session: _GraphSession, batch: UpdateBatch
    ) -> None:
        """Retry the batch with capped backoff, then bisect if still failing."""
        config = self.config
        last_error: Optional[Exception] = None
        for attempt in range(config.settle_retries + 1):
            if attempt:
                session.settle_retries += 1
                delay = min(
                    config.settle_backoff_seconds * (2 ** (attempt - 1)),
                    config.settle_backoff_cap_seconds,
                )
                if delay > 0:
                    await asyncio.sleep(delay)
            try:
                await self._attempt_settle(session, batch)
                return
            except Exception as exc:  # noqa: BLE001 - InjectedCrash passes through
                last_error = exc
                logger.warning(
                    "graph %r: settle attempt %d/%d failed: %r",
                    session.key,
                    attempt + 1,
                    config.settle_retries + 1,
                    exc,
                )
        # Bounded retries exhausted: the batch contains at least one
        # poison delta.  Isolate it so the rest of the graph lives on.
        await self._bisect(session, list(batch), last_error)
        dropped = await asyncio.get_running_loop().run_in_executor(
            None, self._resync_staged, session
        )
        for update in dropped:
            await self._quarantine(
                session,
                update,
                f"invalidated by quarantine of {last_error!r}",
                kind="cascade",
            )

    async def _attempt_settle(self, session: _GraphSession, batch: UpdateBatch) -> None:
        """One all-or-nothing settle attempt; raises the kernel's error.

        On failure the algorithm is rebuilt from the published
        snapshot's graph — immutable and value-equal to the pre-attempt
        state, because settles are serialized on the graph's queue — so
        no per-attempt restore copy is needed (the PR-7 restore point
        deep-copied the graph before every attempt).  On success the
        copy-on-write snapshot is published red-green style: the store
        gains the new version and the session pointer swaps atomically,
        while readers holding older handles keep them.
        """
        loop = asyncio.get_running_loop()
        try:
            events = await loop.run_in_executor(
                None, self._execute_settle, session, batch
            )
        except Exception:
            session.settle_failures += 1
            await loop.run_in_executor(
                None, self._rebuild_algorithm, session, session.snapshot.data
            )
            raise
        self._faults.hit(MID_SETTLE)
        publish_started = loop.time()
        snapshot = await loop.run_in_executor(
            None, self._settled_snapshot, session, events
        )
        session.versions.publish(snapshot)
        session.history.record(batch, snapshot.version)
        session.snapshot = snapshot
        session.publish_seconds += loop.time() - publish_started
        session.settles += 1
        if session.recovery_pending > 0:
            # The batch drained recovery backlog (it may mix replayed
            # and freshly-live deltas; provenance is per-settle, not
            # per-delta — documented in stats()).
            session.recovered_settles += 1
            session.recovery_pending = max(0, session.recovery_pending - len(batch))
        else:
            session.live_settles += 1
        session.settled += len(batch)
        self._notify(session, events, snapshot.version)

    def _execute_settle(
        self, session: _GraphSession, batch: UpdateBatch
    ) -> list[SubscriptionEvent]:
        """Executor-side settle body: shared maintenance, then fan-out.

        The pattern-independent work — applying the batch, maintaining
        ``SLen``, computing the affected region — runs **once** through
        the session's single engine (``subsequent_query``).  Every
        subscription then pays only its own share: the sound
        label-intersection filter, and (when the pattern may have been
        touched) one amendment pass over the shared delta's update
        stream against the engine's post-batch state.  A subscription
        the filter clears republishes its previous state unchanged —
        the skip is provably lossless, see
        :func:`~repro.matching.shared.delta_touches_pattern`.
        """
        session.algorithm.subsequent_query(batch)
        session.maintenance_passes += 1
        session.slen_update_passes += 1
        if not session.subscriptions:
            return []
        shared = getattr(session.algorithm, "last_shared_delta", None)
        data, slen = self._live_state(session.algorithm)
        # The shared delta carries the *maintained* (possibly compiled)
        # update stream — same net effect as the raw batch.  An engine
        # that exposes none (a test double wrapping subsequent_query)
        # falls back to the raw data updates and amends every pattern.
        updates = shared.updates if shared is not None else tuple(batch.data_updates())
        previous = session.snapshot.subscriptions
        events: list[SubscriptionEvent] = []
        for pattern_id, subscription in session.subscriptions.items():
            prev_state = previous.get(pattern_id)
            if prev_state is not None and not subscription.touched_by(shared):
                subscription.skipped_settles += 1
                session.fanout_skips += 1
                events.append(
                    SubscriptionEvent(
                        subscription=subscription,
                        state=prev_state,
                        previous=prev_state,
                        amended=False,
                    )
                )
                continue
            subscription.relation = amend_match(
                subscription.relation,
                subscription.pattern,
                data,
                slen,
                updates,
                enforce_totality=False,
            )
            subscription.amend_passes += 1
            session.fanout_amend_passes += 1
            events.append(
                SubscriptionEvent(
                    subscription=subscription,
                    state=subscription.state(data, slen),
                    previous=prev_state,
                    amended=True,
                )
            )
        return events

    @staticmethod
    def _live_state(algorithm: GPNMAlgorithm) -> tuple[DataGraph, SLenMatrix]:
        """The engine's post-batch ``(data, slen)`` for fan-out amendment.

        Borrowed references when the engine exposes them (cheap; safe
        because settles are serialized on the graph's queue), a forked
        copy otherwise.
        """
        shared_state = getattr(algorithm, "shared_state", None)
        if shared_state is not None:
            return shared_state()
        data, slen, _ = algorithm.fork_state()
        return data, slen

    def _notify(
        self,
        session: _GraphSession,
        events: Iterable[SubscriptionEvent],
        version: int,
    ) -> None:
        """Push one settle's per-pattern deltas to attached listeners.

        Runs on the event loop after the snapshot is published, so a
        listener that immediately reads sees the state its delta
        describes.  Listener exceptions are logged and swallowed — a
        broken client must not fail the settle.
        """
        if not self.config.push_notifications:
            return
        for event in events:
            if not event.amended:
                continue
            listeners = event.subscription.listeners
            if not listeners:
                continue
            delta = event.delta(session.key, version)
            if delta.is_empty:
                continue
            event.subscription.notifications += 1
            session.notifications_sent += 1
            for listener in listeners:
                try:
                    listener(delta)
                except Exception:  # noqa: BLE001 - listener bugs must not kill settles
                    logger.exception(
                        "graph %r: push listener for %r failed",
                        session.key,
                        event.subscription.pattern_id,
                    )

    async def _bisect(
        self,
        session: _GraphSession,
        updates: list[Update],
        error: Optional[Exception],
        *,
        try_whole: bool = False,
    ) -> None:
        """Recursively isolate the poison updates of a failed batch.

        Sub-batches preserve arrival order, so the surviving updates
        settle with exactly the semantics they were accepted under.  A
        single update that still fails is quarantined: durably appended
        to the dead-letter journal, then dropped from the stream.
        """
        if not updates:
            return
        if try_whole:
            sub: Optional[UpdateBatch]
            try:
                sub = UpdateBatch(updates)
            except UpdateError as exc:
                # The slice lost an update (a sibling quarantine) it
                # depended on; treat it like a failing settle.
                sub, error = None, exc
            if sub is not None:
                try:
                    await self._attempt_settle(session, sub)
                    return
                except Exception as exc:  # noqa: BLE001 - isolated below
                    error = exc
        if len(updates) == 1:
            await self._quarantine(session, updates[0], repr(error))
            return
        mid = len(updates) // 2
        await self._bisect(session, updates[:mid], error, try_whole=True)
        await self._bisect(session, updates[mid:], error, try_whole=True)

    async def _quarantine(
        self, session: _GraphSession, update: Update, error: str, *, kind: str = "poison"
    ) -> None:
        """Durably dead-letter one update the service gave up settling."""
        session.quarantined += 1
        logger.warning(
            "graph %r: quarantined %s delta %r: %s", session.key, kind, update, error
        )
        if session.dead_letter is not None:
            await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(session.dead_letter.append, update, error, kind=kind),
            )

    def _rebuild_algorithm(self, session: _GraphSession, base: DataGraph) -> None:
        """Rebuild the algorithm from the last good graph after a failure.

        A failed ``subsequent_query`` may leave the algorithm's graph,
        SLen and match state arbitrarily half-mutated; the only sound
        recovery is a fresh engine on the pre-attempt state, with every
        subscription's relation recomputed from scratch against it (a
        half-amended relation is as suspect as the half-mutated graph).
        The published snapshot is re-pointed at the rebuilt objects (and
        re-published into the version store at the same version) so
        reads never touch the corrupted ones.  ``base`` may be the
        published snapshot's own graph: the algorithm constructor
        copies its data argument, so the frozen snapshot stays frozen.
        """
        algorithm = self._factory(PatternGraph(), base, self.config, self.telemetry)
        session.algorithm = algorithm
        session.rebuilds += 1
        snapshot = self._initial_snapshot(
            algorithm, session.snapshot.version, session.subscriptions
        )
        session.versions.publish(snapshot)
        session.snapshot = snapshot

    @staticmethod
    def _settled_snapshot(
        session: _GraphSession, events: Iterable[SubscriptionEvent]
    ) -> GraphSnapshot:
        """Build the next version's snapshot from the settled algorithm.

        ``fork_state`` makes this cheap: the SLen matrix is shared
        block-by-block with the live state (copy-on-write), only the
        O(|V| + |E|) graph and partition are copied.  Subscription
        states come from the settle's fan-out; a filter-skipped
        subscription republishes its previous state object unchanged
        (patterns are subscribed, never streamed, so a pattern cannot
        change mid-settle).
        """
        data, slen, partition = session.algorithm.fork_state()
        return GraphSnapshot(
            version=session.snapshot.version + 1,
            data=data,
            slen=slen,
            subscriptions={
                event.subscription.pattern_id: event.state for event in events
            },
            partition=partition,
        )

    @staticmethod
    def _resync_staged(session: _GraphSession) -> list[Update]:
        """Rebuild the staged graph after a quarantine; returns the drops.

        The algorithm's state is authoritative; the still-buffered
        deltas are re-validated against a *copy* of it and survivors
        re-applied (a quarantined delta can invalidate deltas that were
        accepted against state that never materialised).  Returns the
        invalidated updates so the caller can dead-letter them — an
        accepted delta is never silently dropped.
        """
        staged = session.algorithm.data.copy()
        survivors = UpdateBatch()
        dropped: list[Update] = []
        for update in session.buffer:
            problem = _stage_conflict(staged, update)
            if problem is None:
                try:
                    survivors.append(update)
                except UpdateError:
                    dropped.append(update)
                    continue
                update.apply(staged)
            else:
                dropped.append(update)
        session.buffer = survivors
        session.staged = staged
        return dropped

    # ------------------------------------------------------------------
    # Reads — synchronous, snapshot-backed, never enter the queue
    # ------------------------------------------------------------------
    def snapshot(self, key: str, as_of: Optional[int] = None) -> GraphSnapshot:
        """The graph's last settled state (or the retained ``as_of`` version).

        With ``as_of`` set, answers from the version store: raises
        :class:`~repro.versioning.store.VersionExpiredError` when that
        version was evicted from the history window (or never
        published) instead of answering from the wrong state.
        """
        session = self._session(key)
        if as_of is None:
            return session.snapshot
        return session.versions.get(as_of).snapshot

    def pin(self, key: str, version: Optional[int] = None) -> SnapshotHandle:
        """Pin a retained version (``None`` = latest) for repeated reads.

        The returned handle keeps its ``(graph, SLen, partition)``
        triple alive across later settles and evictions until released
        (use it as a context manager).  This is the red-green reader
        side: pinning is wait-free with respect to the writer.
        """
        return self._session(key).versions.pin(version)

    def graph_history(self, key: str) -> GraphHistory:
        """The graph's created/expired lifetime stamps (time travel)."""
        return self._session(key).history

    def matches(
        self,
        key: str,
        pattern_node=None,
        as_of: Optional[int] = None,
        pattern_id: Optional[str] = None,
    ):
        """Settled match sets: all of them, or one pattern node's.

        Addressed by ``(key, pattern_id)``; ``pattern_id=None`` resolves
        the ``"default"`` subscription (the single-pattern shim's).
        """
        state = self.snapshot(key, as_of=as_of).state_for(pattern_id)
        if pattern_node is None:
            return state.result.as_dict()
        return state.result.matches(pattern_node)

    def top_k(
        self,
        key: str,
        k: int,
        pattern_node=None,
        as_of: Optional[int] = None,
        pattern_id: Optional[str] = None,
    ) -> dict[object, list[RankedMatch]]:
        """Settled top-``k`` ranked matches (optionally one pattern node's).

        Addressed by ``(key, pattern_id)`` like :meth:`matches`; ``k``
        is free per read and independent of the subscription's standing
        ``k`` (which only controls the push channel).
        """
        snapshot = self.snapshot(key, as_of=as_of)
        state = snapshot.state_for(pattern_id)
        return top_k_matches(
            state.result,
            state.pattern,
            snapshot.data,
            snapshot.slen,
            k,
            pattern_node=pattern_node,
        )

    def slen_distance(
        self, key: str, source, target, as_of: Optional[int] = None
    ) -> float | int:
        """Settled shortest-path length (``INF`` when unreachable)."""
        return self.snapshot(key, as_of=as_of).slen.distance(source, target)

    def stats(self, key: str) -> dict:
        """Per-graph counters: ingestion, cuts, settles, faults, journal."""
        session = self._session(key)
        journal_stats = None
        if session.journal is not None:
            journal_stats = {
                "path": str(session.journal.path),
                "last_seq": session.journal.last_seq,
                "checkpoint_seq": session.journal.checkpoint_seq,
                "appends": session.journal.appends,
                "checkpoints": session.journal.checkpoints,
                "compactions": session.journal.compactions,
                "torn_lines": session.journal.torn_lines,
            }
        backend = session.snapshot.slen.backend
        snapshot_stats = {
            "version": session.snapshot.version,
            "retained_versions": list(session.versions.versions()),
            "history_limit": session.versions.history,
            "publish_seconds": session.publish_seconds,
            "store_allocated_bytes": session.versions.allocated_bytes(),
            "stamped_latest": session.history.latest_version,
        }
        if hasattr(backend, "shared_blocks"):
            snapshot_stats["slen_shared_blocks"] = backend.shared_blocks()
            snapshot_stats["slen_owned_blocks"] = backend.owned_blocks()
        return {
            "graph": key,
            "snapshot_version": session.snapshot.version,
            "snapshot": snapshot_stats,
            "shared": {
                "maintenance_passes": session.maintenance_passes,
                "slen_update_passes": session.slen_update_passes,
                "fanout_amend_passes": session.fanout_amend_passes,
                "fanout_skips": session.fanout_skips,
                "notifications_sent": session.notifications_sent,
            },
            "subscriptions": self.subscription_docs(key),
            "accepted": session.accepted,
            "rejected": session.rejected,
            "settled": session.settled,
            "pending": len(session.buffer),
            "settles": session.settles,
            "recovered_settles": session.recovered_settles,
            "live_settles": session.live_settles,
            "settle_failures": session.settle_failures,
            "settle_retries": session.settle_retries,
            "settle_seconds": session.settle_seconds,
            "quarantined": session.quarantined,
            "rebuilds": session.rebuilds,
            "recovered": session.recovered,
            "recovery_skipped": session.recovery_skipped,
            "queue_errors": sum(
                1 for error_key, _ in self._scheduler.errors if error_key == key
            ),
            "cut_reasons": dict(session.cut_reasons),
            "journal": journal_stats,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Cut every non-empty buffer and wait for full quiescence."""
        for session in self._sessions.values():
            if session is None:
                continue

            async def _drain_cut(session=session) -> None:
                if len(session.buffer):
                    self._cut(session, CUT_DRAIN)

            self._scheduler.schedule(session.key, _drain_cut)
        await self._scheduler.drain()

    async def quiesce(self) -> None:
        """Wait for all already-scheduled actions — without cutting.

        Unlike :meth:`drain` this leaves buffered deltas buffered; it
        exists so tests (and the fault harness) can wait for in-flight
        settles and their journal writes to finish.
        """
        await self._scheduler.drain()

    async def close(self) -> None:
        """Drain, stop all queue workers, persist telemetry.  Idempotent."""
        if self._closed:
            return
        await self.drain()
        await self._scheduler.close()
        self._closed = True
        for session in self._sessions.values():
            if session is not None and session.journal is not None:
                session.journal.close()
        if self.config.telemetry_path and len(self.telemetry):
            self.telemetry.save(self.config.telemetry_path)

    async def abort(self) -> None:
        """Simulated ``kill -9``: stop everything without settling.

        No buffers are cut, no settles run, no checkpoints are written —
        the journal is left exactly as the "crash" found it, which is
        the state recovery must cope with.  The fault-injection tests
        call this after an :class:`~repro.service.faults.InjectedCrash`
        to abandon the dead instance cleanly.  Idempotent.
        """
        self._closed = True
        await self._scheduler.abort()
        for session in self._sessions.values():
            if session is None:
                continue
            if session.deadline_handle is not None:
                session.deadline_handle.cancel()
                session.deadline_handle = None
            if session.journal is not None:
                session.journal.close()

    @property
    def errors(self) -> list[tuple[str, BaseException]]:
        """Failures from fire-and-forget actions (settles included)."""
        return self._scheduler.errors

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def _session(self, key: str) -> _GraphSession:
        session = self._sessions.get(key)
        if session is None:
            raise ServiceError(f"unknown graph {key!r}")
        return session


def _stage_conflict(staged: DataGraph, update: Update) -> Optional[str]:
    """Why ``update`` cannot apply to ``staged`` (``None`` when it can).

    These are exactly the preconditions of
    :meth:`~repro.graph.updates.Update.apply`, checked up front so an
    accepted delta is guaranteed to apply and a conflicting one is
    rejected with a message instead of poisoning the batch.
    """
    if isinstance(update, EdgeInsertion):
        if not staged.has_node(update.source):
            return f"source node {update.source!r} does not exist"
        if not staged.has_node(update.target):
            return f"target node {update.target!r} does not exist"
        if staged.has_edge(update.source, update.target):
            return "edge already exists"
        return None
    if isinstance(update, EdgeDeletion):
        if not staged.has_edge(update.source, update.target):
            return "edge does not exist"
        return None
    if isinstance(update, NodeInsertion):
        if staged.has_node(update.node):
            return f"node {update.node!r} already exists"
        seen: set[tuple] = set()
        for source, target in update.edges:
            if update.node not in (source, target):
                return f"payload edge ({source!r}, {target!r}) does not touch the new node"
            other = target if source == update.node else source
            if other != update.node and not staged.has_node(other):
                return f"payload edge endpoint {other!r} does not exist"
            if (source, target) in seen:
                return f"duplicate payload edge ({source!r}, {target!r})"
            seen.add((source, target))
        return None
    if isinstance(update, NodeDeletion):
        if not staged.has_node(update.node):
            return f"node {update.node!r} does not exist"
        return None
    return f"unsupported update kind {type(update).__name__}"
