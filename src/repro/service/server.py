"""A stdlib JSON-lines TCP front end for the streaming service.

One request per line, one JSON object per response line.  The protocol
is deliberately minimal — it exists so ``ua-gpnm serve`` can expose a
registered graph to external producers/consumers without any dependency
beyond the standard library:

.. code-block:: text

    -> {"op": "update", "graph": "g", "inserts": [...], "deletes": [...]}
    <- {"ok": true, "accepted": 2, "rejected": 0, "pending": 2, "cut": null}

    -> {"op": "matches", "graph": "g", "pattern_node": "p0"}
    <- {"ok": true, "matches": ["u3", "u7"]}

    -> {"op": "top-k", "graph": "g", "k": 3}
    <- {"ok": true, "top_k": {"p0": [{"node": "u3", "score": 0.91}, ...]}}

    -> {"op": "slen", "graph": "g", "source": "u1", "target": "u9"}
    <- {"ok": true, "distance": 3}            # null when unreachable

    -> {"op": "stats", "graph": "g"}          / {"op": "graphs"} / {"op": "ping"}
    <- {"ok": true, ...}

Failures come back as ``{"ok": false, "error": "..."}`` on the same
line; a malformed line never kills the connection.  ``update`` requests
ride the service's per-graph serialized queues, so two clients writing
to one graph are ordered exactly as their requests are read; read
requests answer from the last settled snapshot immediately.

Two protection mechanisms keep a slow consumer (of settles) or an idle
producer from degrading the whole server:

* **Overload** — an ``update`` for a graph whose backlog (buffered
  deltas + queued actions) is at ``max_pending`` is *refused* with
  ``{"ok": false, "error": "overloaded", "overloaded": true,
  "retry_after": s}`` instead of queueing without bound.  The client
  owns the retry; the server's memory stays bounded.
* **Idle timeout** — a connection that sends nothing for
  ``idle_timeout`` seconds gets a best-effort
  ``{"ok": false, "error": "idle timeout"}`` line and is closed, so
  abandoned sockets do not accumulate.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Optional

from repro.service.delta import DeltaError
from repro.service.service import ServiceError, StreamingUpdateService
from repro.versioning import VersionExpiredError

#: Upper bound on one request line (protects the reader from unbounded
#: buffering on a misbehaving client).
MAX_LINE_BYTES: int = 1 << 20

#: Default cap on a graph's backlog before updates are refused.
DEFAULT_MAX_PENDING: int = 4096


class ServiceServer:
    """Serve a :class:`StreamingUpdateService` over JSON lines on TCP."""

    def __init__(
        self,
        service: StreamingUpdateService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive when set")
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()
        #: Observability for tests and operators.
        self.overload_rejections = 0
        self.idle_closes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        Port ``0`` binds an ephemeral port (the tests' idiom); the bound
        port is reflected into :attr:`port`.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting, close the listener and every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI entry point's mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    if self.idle_timeout is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), self.idle_timeout
                        )
                    else:
                        line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(writer, {"ok": False, "error": "request line too long"})
                    break
                except asyncio.TimeoutError:
                    self.idle_closes += 1
                    try:
                        await self._reply(
                            writer, {"ok": False, "error": "idle timeout", "idle_timeout": True}
                        )
                    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                        pass
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = await self._dispatch(text)
                await self._reply(writer, response)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch(self, text: str) -> dict:
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"invalid JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            known = ", ".join(sorted(self._HANDLERS))
            return {"ok": False, "error": f"unknown op {op!r}; expected one of: {known}"}
        try:
            return await handler(self, request)
        except VersionExpiredError as exc:
            # Time-travel reads outside the retained window fail loudly
            # and distinguishably: clients asked for history the server
            # no longer (or does not yet) holds, never a wrong answer.
            return {"ok": False, "error": str(exc), "expired": True}
        except (DeltaError, ServiceError, ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": str(exc)}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _graph_key(self, request: dict) -> str:
        key = request.get("graph")
        if not isinstance(key, str):
            raise ServiceError("request needs a 'graph' key naming the graph")
        return key

    @staticmethod
    def _as_of(request: dict) -> "Optional[int]":
        """The optional ``as_of`` snapshot version of a read request."""
        as_of = request.get("as_of")
        if as_of is None:
            return None
        if isinstance(as_of, bool) or not isinstance(as_of, int):
            raise ServiceError("'as_of' must be an integer snapshot version")
        return as_of

    async def _op_update(self, request: dict) -> dict:
        key = self._graph_key(request)
        if self.service.backlog(key) >= self.max_pending:
            # Refuse rather than queue without bound: the client owns
            # the retry, the server's memory stays bounded.  The hint is
            # one deadline period — by then the buffered batch has cut.
            self.overload_rejections += 1
            return {
                "ok": False,
                "error": "overloaded",
                "overloaded": True,
                "retry_after": max(self.service.config.deadline_seconds, 0.05),
            }
        receipt = await self.service.submit(key, request)
        return {
            "ok": True,
            "accepted": receipt.accepted,
            "rejected": receipt.rejected,
            "pending": receipt.pending,
            "cut": receipt.cut,
            "errors": list(receipt.errors),
        }

    async def _op_matches(self, request: dict) -> dict:
        key = self._graph_key(request)
        as_of = self._as_of(request)
        pattern_node = request.get("pattern_node")
        if pattern_node is not None:
            matched = self.service.matches(key, pattern_node, as_of=as_of)
            return {"ok": True, "matches": sorted(str(node) for node in matched)}
        all_matches = self.service.matches(key, as_of=as_of)
        return {
            "ok": True,
            "matches": {
                str(p): sorted(str(node) for node in nodes)
                for p, nodes in all_matches.items()
            },
        }

    async def _op_top_k(self, request: dict) -> dict:
        key = self._graph_key(request)
        k = int(request.get("k", 10))
        ranked = self.service.top_k(
            key, k, pattern_node=request.get("pattern_node"), as_of=self._as_of(request)
        )
        return {
            "ok": True,
            "top_k": {
                str(p): [
                    {"node": str(match.data_node), "score": match.score}
                    for match in matches
                ]
                for p, matches in ranked.items()
            },
        }

    async def _op_slen(self, request: dict) -> dict:
        key = self._graph_key(request)
        distance = self.service.slen_distance(
            key, request["source"], request["target"], as_of=self._as_of(request)
        )
        finite = not (isinstance(distance, float) and math.isinf(distance))
        return {"ok": True, "distance": int(distance) if finite else None}

    async def _op_stats(self, request: dict) -> dict:
        key = self._graph_key(request)
        return {"ok": True, **self.service.stats(key)}

    async def _op_graphs(self, request: dict) -> dict:
        return {"ok": True, "graphs": list(self.service.graphs)}

    async def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True}

    _HANDLERS = {
        "update": _op_update,
        "matches": _op_matches,
        "top-k": _op_top_k,
        "slen": _op_slen,
        "stats": _op_stats,
        "graphs": _op_graphs,
        "ping": _op_ping,
    }
