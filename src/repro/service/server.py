"""A stdlib JSON-lines TCP front end for the streaming service.

One request per line, one JSON object per response line.  The protocol
is deliberately minimal — it exists so ``ua-gpnm serve`` can expose a
registered graph to external producers/consumers without any dependency
beyond the standard library:

.. code-block:: text

    -> {"op": "update", "graph": "g", "inserts": [...], "deletes": [...]}
    <- {"ok": true, "accepted": 2, "rejected": 0, "pending": 2, "cut": null}

    -> {"op": "matches", "graph": "g", "pattern_node": "p0"}
    <- {"ok": true, "matches": ["u3", "u7"]}

    -> {"op": "top-k", "graph": "g", "k": 3}
    <- {"ok": true, "top_k": {"p0": [{"node": "u3", "score": 0.91}, ...]}}

    -> {"op": "slen", "graph": "g", "source": "u1", "target": "u9"}
    <- {"ok": true, "distance": 3}            # null when unreachable

    -> {"op": "stats", "graph": "g"}          / {"op": "graphs"} / {"op": "ping"}
    <- {"ok": true, ...}

Reads are *pattern-addressed*: ``matches`` and ``top-k`` accept an
optional ``"pattern_id"`` naming one of the graph's standing patterns
(omitted, they resolve the ``"default"`` pattern the single-pattern
registration shim binds).

``subscribe`` attaches a standing pattern — and this connection — to
the push channel; after every settle that changes the pattern's
matches (or its standing top-``k``), the server pushes one
``{"kind": "notify", ...}`` line, interleaved with regular responses:

    -> {"op": "subscribe", "graph": "g", "pattern_id": "fraud",
        "pattern": {"nodes": [...], "edges": [...]}, "k": 3}
    <- {"ok": true, "graph": "g", "pattern_id": "fraud", "version": 4}
    ...
    <- {"kind": "notify", "graph": "g", "pattern_id": "fraud",
        "version": 5, "added": {"p0": ["u9"]}, "removed": {}, "top_k": ...}

Omit ``"pattern"`` to attach to an already-subscribed pattern id
without (re)defining it.  ``unsubscribe`` detaches this connection;
with ``"drop": true`` it also removes the standing pattern from the
service (affecting every client):

    -> {"op": "unsubscribe", "graph": "g", "pattern_id": "fraud"}
    <- {"ok": true, "graph": "g", "pattern_id": "fraud",
        "detached": true, "dropped": false}

Failures come back as ``{"ok": false, "error": "..."}`` on the same
line; a malformed line never kills the connection.  ``update`` requests
ride the service's per-graph serialized queues, so two clients writing
to one graph are ordered exactly as their requests are read; read
requests answer from the last settled snapshot immediately.  Pushed
``notify`` lines and request responses are serialized per connection,
so lines never interleave mid-JSON.

Two protection mechanisms keep a slow consumer (of settles) or an idle
producer from degrading the whole server:

* **Overload** — an ``update`` for a graph whose backlog (buffered
  deltas + queued actions) is at ``max_pending`` is *refused* with
  ``{"ok": false, "error": "overloaded", "overloaded": true,
  "retry_after": s}`` instead of queueing without bound.  The client
  owns the retry; the server's memory stays bounded.
* **Idle timeout** — a connection that sends nothing for
  ``idle_timeout`` seconds gets a best-effort
  ``{"ok": false, "error": "idle timeout"}`` line and is closed, so
  abandoned sockets do not accumulate.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Optional

from repro.graph.io import pattern_graph_from_dict
from repro.service.delta import DeltaError
from repro.service.service import ServiceError, StreamingUpdateService
from repro.service.subscriptions import SubscriptionDelta
from repro.versioning import VersionExpiredError

#: Upper bound on one request line (protects the reader from unbounded
#: buffering on a misbehaving client).
MAX_LINE_BYTES: int = 1 << 20

#: Default cap on a graph's backlog before updates are refused.
DEFAULT_MAX_PENDING: int = 4096


class _Connection:
    """Per-connection state: the writer, its lock, and attached pushes.

    The lock serializes pushed ``notify`` lines with request responses
    on one socket; ``listeners`` maps ``(graph, pattern_id)`` to the
    service-side detach token so the connection's push attachments are
    cleaned up on disconnect.
    """

    __slots__ = ("writer", "lock", "listeners")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.listeners: dict[tuple[str, str], int] = {}


class ServiceServer:
    """Serve a :class:`StreamingUpdateService` over JSON lines on TCP."""

    def __init__(
        self,
        service: StreamingUpdateService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive when set")
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.idle_timeout = idle_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()
        #: Observability for tests and operators.
        self.overload_rejections = 0
        self.idle_closes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        Port ``0`` binds an ephemeral port (the tests' idiom); the bound
        port is reflected into :attr:`port`.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting, close the listener and every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI entry point's mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        connection = _Connection(writer)
        try:
            while True:
                try:
                    if self.idle_timeout is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), self.idle_timeout
                        )
                    else:
                        line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(connection, {"ok": False, "error": "request line too long"})
                    break
                except asyncio.TimeoutError:
                    self.idle_closes += 1
                    try:
                        await self._reply(
                            connection,
                            {"ok": False, "error": "idle timeout", "idle_timeout": True},
                        )
                    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                        pass
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = await self._dispatch(text, connection)
                await self._reply(connection, response)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            self._detach_connection(connection)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _detach_connection(self, connection: _Connection) -> None:
        """Drop every push attachment the connection holds."""
        for (key, pattern_id), token in connection.listeners.items():
            self.service.detach_listener(key, pattern_id, token)
        connection.listeners.clear()

    @staticmethod
    async def _reply(connection: _Connection, response: dict) -> None:
        async with connection.lock:
            connection.writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await connection.writer.drain()

    def _push_listener(self, connection: _Connection) -> "callable":
        """A service push listener that writes ``notify`` lines here.

        The service calls listeners synchronously on the event loop and
        requires them not to block, so the actual socket write happens
        in a spawned task (serialized with responses by the
        connection's lock).
        """

        def listener(delta: SubscriptionDelta) -> None:
            asyncio.get_running_loop().create_task(
                self._push(connection, delta.to_doc())
            )

        return listener

    async def _push(self, connection: _Connection, doc: dict) -> None:
        try:
            await self._reply(connection, doc)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def _dispatch(self, text: str, connection: _Connection) -> dict:
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"invalid JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            known = ", ".join(sorted(self._HANDLERS))
            return {"ok": False, "error": f"unknown op {op!r}; expected one of: {known}"}
        try:
            return await handler(self, request, connection)
        except VersionExpiredError as exc:
            # Time-travel reads outside the retained window fail loudly
            # and distinguishably: clients asked for history the server
            # no longer (or does not yet) holds, never a wrong answer.
            return {"ok": False, "error": str(exc), "expired": True}
        except (DeltaError, ServiceError, ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "error": str(exc)}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _graph_key(self, request: dict) -> str:
        key = request.get("graph")
        if not isinstance(key, str):
            raise ServiceError("request needs a 'graph' key naming the graph")
        return key

    @staticmethod
    def _as_of(request: dict) -> "Optional[int]":
        """The optional ``as_of`` snapshot version of a read request."""
        as_of = request.get("as_of")
        if as_of is None:
            return None
        if isinstance(as_of, bool) or not isinstance(as_of, int):
            raise ServiceError("'as_of' must be an integer snapshot version")
        return as_of

    @staticmethod
    def _pattern_id(request: dict, *, required: bool = False) -> "Optional[str]":
        """The optional (or required) ``pattern_id`` of a request."""
        pattern_id = request.get("pattern_id")
        if pattern_id is None:
            if required:
                raise ServiceError("request needs a 'pattern_id' key")
            return None
        if not isinstance(pattern_id, str) or not pattern_id:
            raise ServiceError("'pattern_id' must be a non-empty string")
        return pattern_id

    async def _op_update(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        if self.service.backlog(key) >= self.max_pending:
            # Refuse rather than queue without bound: the client owns
            # the retry, the server's memory stays bounded.  The hint is
            # one deadline period — by then the buffered batch has cut.
            self.overload_rejections += 1
            return {
                "ok": False,
                "error": "overloaded",
                "overloaded": True,
                "retry_after": max(self.service.config.deadline_seconds, 0.05),
            }
        receipt = await self.service.submit(key, request)
        return {
            "ok": True,
            "accepted": receipt.accepted,
            "rejected": receipt.rejected,
            "pending": receipt.pending,
            "cut": receipt.cut,
            "errors": list(receipt.errors),
        }

    async def _op_matches(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        as_of = self._as_of(request)
        pattern_id = self._pattern_id(request)
        pattern_node = request.get("pattern_node")
        if pattern_node is not None:
            matched = self.service.matches(
                key, pattern_node, as_of=as_of, pattern_id=pattern_id
            )
            return {"ok": True, "matches": sorted(str(node) for node in matched)}
        all_matches = self.service.matches(key, as_of=as_of, pattern_id=pattern_id)
        return {
            "ok": True,
            "matches": {
                str(p): sorted(str(node) for node in nodes)
                for p, nodes in all_matches.items()
            },
        }

    async def _op_top_k(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        k = int(request.get("k", 10))
        ranked = self.service.top_k(
            key,
            k,
            pattern_node=request.get("pattern_node"),
            as_of=self._as_of(request),
            pattern_id=self._pattern_id(request),
        )
        return {
            "ok": True,
            "top_k": {
                str(p): [
                    {"node": str(match.data_node), "score": match.score}
                    for match in matches
                ]
                for p, matches in ranked.items()
            },
        }

    async def _op_subscribe(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        pattern_id = self._pattern_id(request, required=True)
        pattern_doc = request.get("pattern")
        if pattern_doc is not None:
            k = request.get("k")
            if k is not None and (isinstance(k, bool) or not isinstance(k, int) or k < 1):
                raise ServiceError("'k' must be a positive integer when given")
            await self.service.subscribe(
                key,
                pattern_id,
                pattern_graph_from_dict(pattern_doc),
                k=k,
                replace=bool(request.get("replace", False)),
            )
        if (key, pattern_id) not in connection.listeners:
            token = self.service.attach_listener(
                key, pattern_id, self._push_listener(connection)
            )
            connection.listeners[(key, pattern_id)] = token
        return {
            "ok": True,
            "graph": key,
            "pattern_id": pattern_id,
            "version": self.service.snapshot(key).version,
        }

    async def _op_unsubscribe(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        pattern_id = self._pattern_id(request, required=True)
        token = connection.listeners.pop((key, pattern_id), None)
        detached = False
        if token is not None:
            detached = self.service.detach_listener(key, pattern_id, token)
        dropped = False
        if request.get("drop"):
            dropped = await self.service.unsubscribe(key, pattern_id)
        return {
            "ok": True,
            "graph": key,
            "pattern_id": pattern_id,
            "detached": detached,
            "dropped": dropped,
        }

    async def _op_slen(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        distance = self.service.slen_distance(
            key, request["source"], request["target"], as_of=self._as_of(request)
        )
        finite = not (isinstance(distance, float) and math.isinf(distance))
        return {"ok": True, "distance": int(distance) if finite else None}

    async def _op_stats(self, request: dict, connection: _Connection) -> dict:
        key = self._graph_key(request)
        return {"ok": True, **self.service.stats(key)}

    async def _op_graphs(self, request: dict, connection: _Connection) -> dict:
        return {"ok": True, "graphs": list(self.service.graphs)}

    async def _op_ping(self, request: dict, connection: _Connection) -> dict:
        return {"ok": True, "pong": True}

    _HANDLERS = {
        "update": _op_update,
        "matches": _op_matches,
        "top-k": _op_top_k,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
        "slen": _op_slen,
        "stats": _op_stats,
        "graphs": _op_graphs,
        "ping": _op_ping,
    }
