"""Per-graph write-ahead delta journal for the streaming service.

The :class:`~repro.service.service.StreamingUpdateService` promises in
its :class:`~repro.service.service.IngestReceipt` that an accepted delta
will be settled.  Without persistence that promise dies with the
process.  The journal closes the gap with the classic write-ahead
discipline (the durable half of the KBase delta-load design,
SNIPPETS.md §3):

* **Append before receipt** — every accepted payload's updates are
  serialized and fsync-appended as one ``delta`` record *before* the
  ingest receipt is returned.  Once a client holds a receipt, the delta
  survives a crash.
* **Checkpoint after settle** — when a batch settles, a ``checkpoint``
  record (highest settled delta ``seq`` + graph version + batch id) is
  appended.  Recovery replays only the records *after* the last
  checkpoint.
* **Size-bounded compaction** — when the journal grows past
  ``compact_bytes`` and a checkpoint has advanced past the current
  base, the whole file is atomically rewritten as one ``snapshot``
  record (the settled graph, with its seq/version) followed by the
  still-uncheckpointed ``delta`` tail.  The journal is therefore
  bounded by snapshot size + uncheckpointed tail, not by history.
* **Torn-tail tolerance** — an fsync'd append can still be interrupted
  mid-record (power loss, the fault injector's torn writes).  Recovery
  accepts a malformed *final* line, truncates it away, and counts it;
  malformed interior lines are real corruption and raise
  :class:`JournalError`.

File format: one JSON object per line.

.. code-block:: text

    {"t": "snapshot",    "seq": 40, "version": 7, "graph": {...},
                         "subscriptions": [{"pattern_id": ..., ...}]}
    {"t": "delta",       "seq": 41, "updates": [{"op": "insert_edge", ...}]}
    {"t": "checkpoint",  "seq": 41, "version": 8, "batch": 5}
    {"t": "subscribe",   "seq": 42, "sub": {"pattern_id": ..., "pattern": {...}}}
    {"t": "unsubscribe", "seq": 43, "pattern_id": "..."}

Subscriptions are pattern-aware durability: ``subscribe``/``unsubscribe``
control records ride the same seq counter as deltas, recovery folds them
(in file order) into the final registry, and compaction embeds the live
registry in the snapshot record — so standing patterns survive restarts
without the client re-subscribing.  Journals written before this record
vocabulary recover with an empty registry.

Replay idempotence is structural: recovery rebuilds state as *snapshot
base + every delta after it*, exactly once each.  A ``snapshot`` at seq
``K`` makes recovery drop every delta record with ``seq <= K`` (their
effect is inside the snapshot graph) plus duplicate seqs; every later
delta — including ones whose ``checkpoint`` was written, because the
settled graph that checkpoint described died with the process — is
replayed exactly once against that base.  Checkpoints, in turn, bound
*compaction*: they mark which deltas the next snapshot may absorb.

Quarantined deltas go to a separate :class:`DeadLetterJournal`
(``<graph>.deadletter.jsonl``), durably appended before the checkpoint
that supersedes them, so "removed from the stream" never means "lost".
"""

from __future__ import annotations

import json
import os
import re
from hashlib import blake2s
from pathlib import Path
from typing import Optional, Union

from repro.graph.digraph import DataGraph
from repro.graph.io import data_graph_from_dict, data_graph_to_dict
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
    delete_data_edge,
    delete_data_node,
    insert_data_edge,
    insert_data_node,
)
from repro.ioutil import append_line_durable, atomic_write_text, fsync_directory
from repro.service.faults import NULL_INJECTOR, POST_APPEND, PRE_APPEND, FaultInjector, InjectedCrash

#: Default compaction threshold: rewrite the journal once it exceeds
#: this many bytes (and a checkpoint has advanced past the base).
DEFAULT_COMPACT_BYTES: int = 1 << 20


class JournalError(RuntimeError):
    """An unrecoverable journal problem (interior corruption, bad record)."""


# ----------------------------------------------------------------------
# Update (de)serialization — the journal's wire vocabulary
# ----------------------------------------------------------------------
def update_to_doc(update: Update) -> dict:
    """Serialize one *data-graph* update to a JSON-able record."""
    if isinstance(update, EdgeInsertion):
        return {"op": "insert_edge", "source": update.source, "target": update.target}
    if isinstance(update, EdgeDeletion):
        return {"op": "delete_edge", "source": update.source, "target": update.target}
    if isinstance(update, NodeInsertion):
        return {
            "op": "insert_node",
            "node": update.node,
            "labels": list(update.labels),
            "edges": [list(edge) for edge in update.edges],
        }
    if isinstance(update, NodeDeletion):
        return {
            "op": "delete_node",
            "node": update.node,
            "labels": list(update.labels),
            "edges": [list(edge) for edge in update.edges],
        }
    raise JournalError(f"cannot journal update of type {type(update).__name__}")


def update_from_doc(doc: dict) -> Update:
    """Rebuild a data-graph update from :func:`update_to_doc` output."""
    try:
        op = doc["op"]
        if op == "insert_edge":
            return insert_data_edge(_freeze(doc["source"]), _freeze(doc["target"]))
        if op == "delete_edge":
            return delete_data_edge(_freeze(doc["source"]), _freeze(doc["target"]))
        if op == "insert_node":
            return insert_data_node(
                _freeze(doc["node"]),
                tuple(doc.get("labels", ())),
                tuple(tuple(_freeze(end) for end in edge) for edge in doc.get("edges", ())),
            )
        if op == "delete_node":
            return delete_data_node(
                _freeze(doc["node"]),
                tuple(doc.get("labels", ())),
                tuple(tuple(_freeze(end) for end in edge) for edge in doc.get("edges", ())),
            )
    except (KeyError, TypeError) as exc:
        raise JournalError(f"malformed update record {doc!r}: {exc}") from exc
    raise JournalError(f"unknown journal update op {doc.get('op')!r}")


def _freeze(raw: object):
    """JSON round-trips tuple node ids as lists; re-freeze them."""
    if isinstance(raw, list):
        return tuple(_freeze(item) for item in raw)
    return raw


def journal_slug(key: str) -> str:
    """A filesystem-safe, collision-free file stem for a graph key."""
    sanitized = re.sub(r"[^A-Za-z0-9._-]", "_", key) or "graph"
    if sanitized == key:
        return sanitized
    return f"{sanitized}-{blake2s(key.encode('utf-8'), digest_size=4).hexdigest()}"


def read_journal_records(path: Union[str, Path]) -> tuple[list[dict], bool, int]:
    """Parse a journal file without modifying it.

    Returns ``(records, torn_line, good_bytes)``: every well-formed
    record in file order, whether a malformed *final* line was found
    (the torn tail a crash mid-append leaves), and the byte length of
    the well-formed prefix.  Callers that own the file (recovery)
    truncate to ``good_bytes`` when ``torn_line`` is set; read-only
    callers (the replay log) simply ignore the tail.  A malformed
    *interior* line is real corruption and raises :class:`JournalError`
    — a record is never silently dropped from the middle of the file.
    """
    raw = Path(path).read_bytes()
    lines = raw.split(b"\n")
    # A file ending in "\n" splits to [.., b""]; anything else has a
    # candidate torn tail as its final element.
    entries: list[tuple[bytes, bool]] = []  # (line, is_final_and_unterminated)
    for index, line in enumerate(lines):
        if index == len(lines) - 1:
            if line:
                entries.append((line, True))
        elif line:
            entries.append((line, False))
    records: list[dict] = []
    torn = False
    good_bytes = 0
    for position, (line, unterminated) in enumerate(entries):
        is_final = position == len(entries) - 1
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except ValueError as exc:
            if is_final:
                # Torn tail: the crash interrupted this append.
                torn = True
                break
            raise JournalError(
                f"corrupt journal record at line {position + 1} of {path}: {exc}"
            ) from exc
        if not unterminated:
            records.append(record)
            good_bytes += len(line) + 1
            continue
        # Well-formed JSON but no trailing newline: the append died
        # between the payload bytes and the newline, so the fsync never
        # completed and no receipt was issued.  Dropping the record is
        # therefore allowed — and *keeping* the unterminated line would
        # corrupt the journal on the next append, which would glue its
        # record onto this line.  Treat it as the torn tail it is.
        torn = True
    return records, torn, good_bytes


# ----------------------------------------------------------------------
# Recovery state
# ----------------------------------------------------------------------
class RecoveredState:
    """What :meth:`GraphJournal.open` found on disk.

    Attributes
    ----------
    base_graph:
        The compaction snapshot's graph, or ``None`` when the journal
        has no snapshot record (recovery then starts from the graph the
        caller registers).
    base_seq / base_version:
        The snapshot's delta seq and graph version (0/0 without one).
    checkpoint_seq / checkpoint_version:
        The highest checkpoint observed (>= the base's).
    tail:
        ``(seq, [Update, ...])`` pairs for every delta record with
        ``seq > base_seq`` — exactly what recovery must replay against
        the base, in seq order.  Checkpointed-but-unsnapshotted deltas
        are *included*: their checkpoint proved they settled, but the
        settled graph died with the process, so only replay can
        reproduce their effect.
    last_seq:
        The highest seq seen anywhere (appends resume after it).
    torn_line:
        Whether a malformed final line was found (and truncated away).
    dropped_duplicates:
        Delta records ignored because their seq was already covered by
        a snapshot/checkpoint or seen twice.
    stamps:
        The snapshot record's serialized
        :class:`~repro.versioning.history.GraphHistory` document
        (created/expired lifetime stamps), or ``None`` when the
        snapshot predates stamping or no snapshot exists.  Recovery
        hands it back to the service so time-travel metadata survives
        compaction.
    subscriptions:
        The final standing-pattern registry: one serialized subscription
        doc per pattern id, in registration order, after folding the
        snapshot record's embedded registry and every later
        ``subscribe``/``unsubscribe`` control record in file order.
        Empty for journals written before subscriptions existed.
    """

    def __init__(self) -> None:
        self.base_graph: Optional[DataGraph] = None
        self.base_seq: int = 0
        self.base_version: int = 0
        self.checkpoint_seq: int = 0
        self.checkpoint_version: int = 0
        self.tail: list[tuple[int, list[Update]]] = []
        self.last_seq: int = 0
        self.torn_line: bool = False
        self.dropped_duplicates: int = 0
        self.stamps: Optional[dict] = None
        self.subscriptions: dict[str, dict] = {}

    def __repr__(self) -> str:
        return (
            f"<RecoveredState base_seq={self.base_seq} checkpoint_seq={self.checkpoint_seq} "
            f"tail={len(self.tail)} last_seq={self.last_seq} torn={self.torn_line}>"
        )


# ----------------------------------------------------------------------
# The write-ahead journal
# ----------------------------------------------------------------------
class GraphJournal:
    """Append-only JSON-lines write-ahead journal for one graph.

    All methods that touch the file are synchronous and blocking (they
    fsync); the service runs them on an executor thread, serialized on
    the graph's action queue, so the journal itself needs no locking.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        compact_bytes: int = DEFAULT_COMPACT_BYTES,
        faults: FaultInjector = NULL_INJECTOR,
    ) -> None:
        self.path = Path(path)
        self.compact_bytes = compact_bytes
        self._faults = faults
        self._handle = None
        self._bytes = 0
        self._next_seq = 1
        self._checkpoint_seq = 0
        self._base_seq = 0
        #: Uncheckpointed delta records (seq -> serialized updates),
        #: retained so compaction can rewrite the tail without
        #: re-reading the file.  Bounded by the uncheckpointed tail.
        self._pending: dict[int, list[dict]] = {}
        # Counters surfaced through the service's stats.
        self.appends = 0
        self.checkpoints = 0
        self.compactions = 0
        self.torn_lines = 0

    # ------------------------------------------------------------------
    # Opening / recovery
    # ------------------------------------------------------------------
    def open(self) -> RecoveredState:
        """Read (and repair) the journal, then position it for appends.

        Returns the :class:`RecoveredState` the service replays.  A
        missing file is a fresh journal; a malformed final line is
        truncated away and counted; malformed interior lines raise
        :class:`JournalError`.
        """
        state = RecoveredState()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._read_into(state)
        self._base_seq = state.base_seq
        self._checkpoint_seq = state.checkpoint_seq
        self._next_seq = state.last_seq + 1
        # Compaction bookkeeping only needs the *uncheckpointed* part of
        # the tail: the next snapshot (at checkpoint_seq) absorbs the
        # checkpointed part.
        self._pending = {
            seq: [update_to_doc(u) for u in updates]
            for seq, updates in state.tail
            if seq > state.checkpoint_seq
        }
        self._handle = open(self.path, "ab")
        self._bytes = self._handle.tell()
        fsync_directory(self.path.parent)
        return state

    def initialize(
        self,
        graph: DataGraph,
        *,
        seq: int = 0,
        version: int = 0,
        stamps: Optional[dict] = None,
        subscriptions: Optional[list[dict]] = None,
    ) -> None:
        """Start a fresh journal whose base is ``graph`` at ``seq``/``version``.

        The live-capture entry point: unlike :meth:`open` (which reads
        an existing file) this *writes* one — a single ``snapshot``
        record of the state being captured — and positions the journal
        for appends with ``seq`` already consumed, exactly as if the
        file had just been compacted there.  An existing file at the
        path is atomically replaced (captures do not resume; recovery
        does, through :meth:`open`).  Raises :class:`JournalError` when
        the journal is already open.
        """
        if self._handle is not None:
            raise JournalError(f"journal {self.path} is already open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "t": "snapshot",
            "seq": seq,
            "version": version,
            "graph": data_graph_to_dict(graph),
        }
        if stamps is not None:
            record["stamps"] = stamps
        if subscriptions is not None:
            record["subscriptions"] = subscriptions
        atomic_write_text(self.path, json.dumps(record) + "\n")
        self._handle = open(self.path, "ab")
        self._bytes = self._handle.tell()
        self._base_seq = seq
        self._checkpoint_seq = seq
        self._next_seq = seq + 1
        self._pending = {}
        fsync_directory(self.path.parent)

    def _read_into(self, state: RecoveredState) -> None:
        records, torn, good_bytes = read_journal_records(self.path)
        deltas: dict[int, list[Update]] = {}
        for position, record in enumerate(records):
            try:
                self._apply_record(record, state, deltas)
            except JournalError as exc:
                raise JournalError(
                    f"corrupt journal record at line {position + 1} of {self.path}: {exc}"
                ) from exc
        if torn:
            state.torn_line = True
            self.torn_lines += 1
            with open(self.path, "ab") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        # Everything past the snapshot base needs replaying — the base
        # graph is the only settled state that survived the crash.
        state.tail = sorted(
            ((seq, updates) for seq, updates in deltas.items() if seq > state.base_seq),
        )
        dropped = sum(1 for seq in deltas if seq <= state.base_seq)
        state.dropped_duplicates += dropped

    def _apply_record(
        self,
        record: dict,
        state: RecoveredState,
        deltas: dict[int, list[Update]],
    ) -> None:
        kind = record.get("t")
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise JournalError(f"record lacks an integer seq: {record!r}")
        state.last_seq = max(state.last_seq, seq)
        if kind == "snapshot":
            state.base_graph = data_graph_from_dict(record["graph"])
            state.base_seq = seq
            state.base_version = int(record.get("version", 0))
            stamps = record.get("stamps")
            state.stamps = stamps if isinstance(stamps, dict) else None
            # The snapshot's embedded registry replaces anything folded
            # so far — control records before it are inside it.
            embedded = record.get("subscriptions", [])
            if not isinstance(embedded, list):
                raise JournalError(f"snapshot subscriptions must be a list: {record!r}")
            state.subscriptions = {}
            for doc in embedded:
                if not isinstance(doc, dict) or "pattern_id" not in doc:
                    raise JournalError(f"malformed snapshot subscription {doc!r}")
                state.subscriptions[doc["pattern_id"]] = doc
            state.checkpoint_seq = max(state.checkpoint_seq, seq)
            state.checkpoint_version = max(state.checkpoint_version, state.base_version)
            # Anything journaled at or before the snapshot is inside it.
            stale = [s for s in deltas if s <= seq]
            for s in stale:
                del deltas[s]
            state.dropped_duplicates += len(stale)
        elif kind == "delta":
            if seq in deltas or seq <= state.base_seq:
                state.dropped_duplicates += 1
                return
            updates = record.get("updates")
            if not isinstance(updates, list):
                raise JournalError(f"delta record lacks an updates list: {record!r}")
            deltas[seq] = [update_from_doc(doc) for doc in updates]
        elif kind == "checkpoint":
            state.checkpoint_seq = max(state.checkpoint_seq, seq)
            state.checkpoint_version = max(
                state.checkpoint_version, int(record.get("version", 0))
            )
        elif kind == "subscribe":
            doc = record.get("sub")
            if not isinstance(doc, dict) or "pattern_id" not in doc:
                raise JournalError(f"malformed subscribe record {record!r}")
            state.subscriptions[doc["pattern_id"]] = doc
        elif kind == "unsubscribe":
            pattern_id = record.get("pattern_id")
            if not isinstance(pattern_id, str):
                raise JournalError(f"malformed unsubscribe record {record!r}")
            state.subscriptions.pop(pattern_id, None)
        else:
            raise JournalError(f"unknown journal record type {kind!r}")

    # ------------------------------------------------------------------
    # The write-ahead path
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """The seq of the most recently appended delta record."""
        return self._next_seq - 1

    @property
    def checkpoint_seq(self) -> int:
        """The highest checkpointed delta seq."""
        return self._checkpoint_seq

    def append_delta(self, updates: list[Update]) -> int:
        """Durably append one accepted payload's updates; returns its seq.

        When this returns, the record is fsynced — the service may issue
        the receipt.  Crash points: ``pre-append`` fires before any
        bytes are written (the delta is lost, which is allowed because
        no receipt exists yet); ``post-append`` fires after the fsync
        (the delta is durable, recovery must replay it); a torn append
        writes a record prefix and "dies", leaving the tail recovery
        must truncate.
        """
        self._ensure_open()
        self._faults.hit(PRE_APPEND)
        docs = [update_to_doc(update) for update in updates]
        seq = self._next_seq
        record = {"t": "delta", "seq": seq, "updates": docs}
        payload = (json.dumps(record) + "\n").encode("utf-8")
        if self._faults.take_torn_append():
            # Simulate the power failing mid-write: a prefix of the
            # record reaches the disk, the newline never does.
            self._handle.write(payload[: max(1, len(payload) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise InjectedCrash("torn-append")
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._next_seq = seq + 1
        self._bytes += len(payload)
        self._pending[seq] = docs
        self.appends += 1
        self._faults.hit(POST_APPEND)
        return seq

    def checkpoint(self, seq: int, version: int, batch_id: int) -> None:
        """Record that every delta up to ``seq`` is settled (durably)."""
        self._ensure_open()
        record = {"t": "checkpoint", "seq": seq, "version": version, "batch": batch_id}
        payload = (json.dumps(record) + "\n").encode("utf-8")
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._bytes += len(payload)
        self._checkpoint_seq = max(self._checkpoint_seq, seq)
        for pending_seq in [s for s in self._pending if s <= seq]:
            del self._pending[pending_seq]
        self.checkpoints += 1

    def append_subscribe(self, doc: dict) -> int:
        """Durably record a new standing pattern; returns the record seq.

        ``doc`` is the serialized subscription
        (:meth:`repro.service.subscriptions.Subscription.to_doc`).  The
        record shares the delta seq counter so recovery sees one total
        order; it is not part of the compaction tail — the snapshot
        record embeds the registry instead.
        """
        self._ensure_open()
        if not isinstance(doc, dict) or "pattern_id" not in doc:
            raise JournalError(f"subscription doc lacks a pattern_id: {doc!r}")
        return self._append_control({"t": "subscribe", "sub": doc})

    def append_unsubscribe(self, pattern_id: str) -> int:
        """Durably record a standing pattern's removal; returns the seq."""
        self._ensure_open()
        return self._append_control({"t": "unsubscribe", "pattern_id": pattern_id})

    def _append_control(self, record: dict) -> int:
        """fsync-append one control record with the next seq."""
        seq = self._next_seq
        record = {**record, "seq": seq}
        payload = (json.dumps(record) + "\n").encode("utf-8")
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._next_seq = seq + 1
        self._bytes += len(payload)
        self.appends += 1
        return seq

    def should_compact(self) -> bool:
        """Whether the log is both oversized and compactable."""
        return self._bytes > self.compact_bytes and self._checkpoint_seq > self._base_seq

    def compact(
        self,
        graph: DataGraph,
        version: int,
        stamps: Optional[dict] = None,
        subscriptions: Optional[list[dict]] = None,
    ) -> None:
        """Atomically rewrite the log as snapshot + uncheckpointed tail.

        ``graph`` must be the settled state as of :attr:`checkpoint_seq`
        (the service passes the snapshot it just checkpointed, from the
        serialized settle action; with copy-on-write snapshots that
        graph is frozen by construction, so nothing can be mutating
        it).  ``stamps`` optionally embeds the graph's serialized
        lifetime history (``GraphHistory.to_doc``) in the snapshot
        record so time-travel metadata survives compaction; old
        journals without it recover with ``stamps=None``.
        ``subscriptions`` embeds the live standing-pattern registry (the
        serialized docs, in registration order) so subscriptions survive
        the rewrite that drops their control records.
        """
        self._ensure_open()
        snapshot_record = {
            "t": "snapshot",
            "seq": self._checkpoint_seq,
            "version": version,
            "graph": data_graph_to_dict(graph),
        }
        if stamps is not None:
            snapshot_record["stamps"] = stamps
        if subscriptions is not None:
            snapshot_record["subscriptions"] = subscriptions
        lines = [json.dumps(snapshot_record)]
        for seq in sorted(self._pending):
            lines.append(json.dumps({"t": "delta", "seq": seq, "updates": self._pending[seq]}))
        self._handle.close()
        text = "\n".join(lines) + "\n"
        atomic_write_text(self.path, text)
        self._handle = open(self.path, "ab")
        self._bytes = self._handle.tell()
        self._base_seq = self._checkpoint_seq
        self.compactions += 1

    def close(self) -> None:
        """Close the append handle (the file stays valid).  Idempotent."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _ensure_open(self) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is not open")

    def __repr__(self) -> str:
        return (
            f"<GraphJournal {self.path.name} last_seq={self.last_seq} "
            f"checkpoint_seq={self._checkpoint_seq} bytes={self._bytes}>"
        )


class DeadLetterJournal:
    """Durable append-only record of quarantined (poison) deltas.

    Every entry is an update the service gave up settling (its batch
    failed bounded retries and bisection isolated it) or an accepted
    delta invalidated by such a quarantine (``cascade``).  The file is
    the operator's repair queue: nothing in it was silently dropped.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, update: Update, error: str, *, kind: str = "poison") -> None:
        """Durably record one quarantined update and why it failed."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = {"kind": kind, "update": update_to_doc(update), "error": error}
        append_line_durable(self.path, json.dumps(record))

    def load(self) -> list[dict]:
        """All quarantine records (empty when the file does not exist)."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(json.loads(line))
        return records

    def __len__(self) -> int:
        return len(self.load())
