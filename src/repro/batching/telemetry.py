"""Planner execution telemetry: what was predicted vs. what it cost.

PR 3's planner routes every batch through a linear cost model whose
constants were frozen from one ``BENCH_batching.json`` grid.  This
module is the measurement half of keeping that model honest: every
maintained batch emits a :class:`PlanObservation` — the
:class:`~repro.batching.planner.BatchStatistics` the planner saw, the
strategy it chose, the per-strategy predicted costs, and the *measured*
maintenance wall-clock — into a :class:`TelemetryLog` with bounded
in-memory retention and JSON persistence.  The observations are exactly
what :func:`repro.batching.calibrate.refit_cost_model` consumes to refit
the model online (``--recalibrate-every``) or offline (the CI
calibration job).

Observations distinguish the *planned* strategy from the *executed*
one: INC-GPNM is per-update by definition, so its batches can carry a
coalescing plan (meaning "compile first") while the maintenance that was
actually timed ran per-update — the refit must attribute the timing to
the executed strategy, not the label on the plan.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.batching.planner import BatchStatistics
from repro.ioutil import atomic_write_text

#: On-disk JSON layout version of a persisted telemetry log.
TELEMETRY_FORMAT_VERSION: int = 1

#: Default bound on in-memory retention; the log keeps the most recent
#: observations and counts (but drops) the rest.
DEFAULT_RETENTION: int = 4096

#: The BatchStatistics fields serialized with every observation.
_STATISTICS_FIELDS: tuple[str, ...] = (
    "batch_size",
    "data_updates",
    "insertions",
    "deletions",
    "node_count",
    "backend",
    "partition_available",
)


@dataclass(frozen=True)
class PlanObservation:
    """One planning decision paired with its measured execution cost.

    Attributes
    ----------
    statistics:
        The workload-shape features the planner based its decision on
        (pre-compilation counts — the same inputs a future prediction
        would see).
    requested:
        What the caller asked for (``"auto"`` or a forced strategy).
    planned:
        The strategy the planner chose.
    executed:
        The strategy the timed maintenance actually ran (differs from
        ``planned`` for algorithms that are per-update by definition,
        e.g. INC-GPNM under a coalescing plan).
    predicted_costs:
        The planner's per-strategy cost estimates at decision time, in
        per-update units.
    elapsed_seconds:
        Measured wall-clock of the batch's ``SLen`` maintenance (graph
        application + maintenance kernels; the quantity the cost model
        predicts up to a unit conversion).
    algorithm:
        Name of the emitting algorithm (empty for kernel-level
        harnesses such as the benchmark).
    """

    statistics: BatchStatistics
    requested: str
    planned: str
    executed: str
    predicted_costs: Mapping[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    algorithm: str = ""

    @property
    def predicted_cost(self) -> float:
        """The estimate of the *planned* strategy (``nan`` if absent)."""
        return float(self.predicted_costs.get(self.planned, float("nan")))

    @property
    def features_key(self) -> tuple:
        """Hashable grouping key: observations with equal keys saw the
        same workload shape (used by the choice-accuracy evaluation)."""
        return tuple(getattr(self.statistics, name) for name in _STATISTICS_FIELDS)

    def as_dict(self) -> dict:
        """Plain-dict form (the JSON layout of :meth:`TelemetryLog.save`)."""
        return {
            "statistics": {
                name: getattr(self.statistics, name) for name in _STATISTICS_FIELDS
            },
            "requested": self.requested,
            "planned": self.planned,
            "executed": self.executed,
            "predicted_costs": {
                name: float(cost) for name, cost in self.predicted_costs.items()
            },
            "elapsed_seconds": self.elapsed_seconds,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanObservation":
        """Rebuild an observation from :meth:`as_dict` output."""
        raw = dict(payload.get("statistics", {}))
        unknown = sorted(set(raw) - set(_STATISTICS_FIELDS))
        if unknown:
            raise ValueError(f"unknown observation statistics fields {unknown}")
        statistics = BatchStatistics(
            batch_size=int(raw.get("batch_size", 0)),
            data_updates=int(raw.get("data_updates", 0)),
            insertions=int(raw.get("insertions", 0)),
            deletions=int(raw.get("deletions", 0)),
            node_count=int(raw.get("node_count", 0)),
            backend=str(raw.get("backend", "sparse")),
            partition_available=bool(raw.get("partition_available", False)),
        )
        return cls(
            statistics=statistics,
            requested=str(payload.get("requested", "")),
            planned=str(payload.get("planned", "")),
            executed=str(payload.get("executed", "")),
            predicted_costs={
                str(name): float(cost)
                for name, cost in dict(payload.get("predicted_costs", {})).items()
            },
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            algorithm=str(payload.get("algorithm", "")),
        )


class TelemetryLog:
    """Bounded in-memory observation log with JSON persistence.

    The log keeps the most recent ``retention`` observations (a deque —
    older ones are dropped, not errored) and counts everything it ever
    saw, so long-running processes can emit telemetry forever without
    growing without bound.  :meth:`save` / :meth:`load` round-trip the
    retained observations through a versioned JSON file
    (``--telemetry-out`` / ``ExperimentConfig.telemetry_path``).

    One log is routinely **shared across concurrent writers** — the
    streaming service's per-graph queues settle batches on executor
    threads and all record into the service's single log — so the
    record / lifetime-counter / save path is serialized by an internal
    lock, and :meth:`save` writes atomically (temp file + ``os.replace``)
    so a crash mid-write cannot corrupt the artifact the calibration job
    and the service's hot-reload consume.
    """

    def __init__(self, retention: int = DEFAULT_RETENTION) -> None:
        if retention < 1:
            raise ValueError("telemetry retention must be at least 1")
        self._lock = threading.Lock()
        self._observations: deque[PlanObservation] = deque(maxlen=retention)
        self._total_recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, observation: PlanObservation) -> PlanObservation:
        """Append one observation (dropping the oldest when full)."""
        with self._lock:
            self._observations.append(observation)
            self._total_recorded += 1
        return observation

    def extend(self, observations: Iterable[PlanObservation]) -> None:
        """Record every observation of ``observations`` in order."""
        for observation in observations:
            self.record(observation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def retention(self) -> int:
        """The in-memory bound."""
        return self._observations.maxlen or 0

    @property
    def total_recorded(self) -> int:
        """How many observations were ever recorded (retained or not)."""
        with self._lock:
            return self._total_recorded

    @property
    def dropped(self) -> int:
        """How many recorded observations fell out of retention."""
        with self._lock:
            return self._total_recorded - len(self._observations)

    def observations(self) -> list[PlanObservation]:
        """The retained observations, oldest first."""
        with self._lock:
            return list(self._observations)

    def __len__(self) -> int:
        with self._lock:
            return len(self._observations)

    def __iter__(self) -> Iterator[PlanObservation]:
        return iter(self.observations())

    def __repr__(self) -> str:
        with self._lock:
            retained, total = len(self._observations), self._total_recorded
        return (
            f"TelemetryLog(retained={retained}, total_recorded={total}, "
            f"retention={self.retention})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Plain-dict form of the retained observations."""
        with self._lock:
            total_recorded = self._total_recorded
            retained = list(self._observations)
        return {
            "format_version": TELEMETRY_FORMAT_VERSION,
            "total_recorded": total_recorded,
            "retention": self.retention,
            "observations": [observation.as_dict() for observation in retained],
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write the retained observations to ``path`` as versioned JSON.

        The write is atomic (temp file in the same directory +
        ``os.replace``): a crash mid-write leaves the previous artifact
        intact, and a concurrent reader never observes a torn file.
        """
        atomic_write_text(path, json.dumps(self.as_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetryLog":
        """Rebuild a log from :meth:`as_dict` output (strictly validated)."""
        fmt = payload.get("format_version")
        if fmt != TELEMETRY_FORMAT_VERSION:
            raise ValueError(
                f"unsupported telemetry format_version {fmt!r}; "
                f"expected {TELEMETRY_FORMAT_VERSION}"
            )
        retention = int(payload.get("retention", DEFAULT_RETENTION)) or DEFAULT_RETENTION
        log = cls(retention=retention)
        for raw in payload.get("observations", []):
            log.record(PlanObservation.from_dict(raw))
        # Preserve the origin's lifetime count across the round trip.
        log._total_recorded = max(
            log._total_recorded, int(payload.get("total_recorded", 0))
        )
        return log

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TelemetryLog":
        """Load a log previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
