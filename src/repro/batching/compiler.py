"""The update-batch compiler: canonicalise ``ΔG`` before processing it.

The compiler folds an arbitrary (self-consistent) update stream into its
*net effect*:

* **duplicates** — a second insertion of an edge/node that the batch has
  already inserted (or a second deletion of something already deleted)
  is dropped;
* **cancellation** — an insertion followed by the matching deletion (or
  a deletion followed by the matching re-insertion) nets out to nothing
  and both operations are removed.  A pattern-edge delete/re-insert pair
  only cancels when the re-inserted bound equals the recorded deleted
  bound — otherwise the pair survives as a bound change;
* **subsumption** — edge operations touching a node that the batch
  deletes are redundant (the node deletion removes incident edges
  anyway) and are dropped.  Edges carried by a node insertion whose
  other endpoint never durably exists are stripped from the payload.

Survivors are emitted per graph in the canonical order

    node insertions → edge deletions → edge insertions → node deletions

(data updates before pattern updates), which is always applicable: new
nodes exist before edges reference them, re-inserted edges are deleted
before being re-added, and node deletions run last so no surviving edge
operation references a removed node.

Re-inserting a node that the same batch deleted ("resurrection") is
canonicalised payload-aware: intermediate churn on the node cancels, the
*first* deletion and the *final* insertion survive as a pair (the
deletion removes the old incarnation's incident edges, the insertion
carries the new labels), and every surviving edge insertion touching the
reborn node — its payload edges included — is emitted *after* the
re-insertion as a standalone edge insertion so the compiled stream stays
directly applicable.  Edge deletions aimed at the old incarnation are
subsumed by the node deletion exactly like those of a plainly deleted
node.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.graph.pattern import normalise_bound
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeInsertion,
    Update,
    UpdateBatch,
)

NodeId = Hashable


@dataclass(frozen=True)
class CompilationReport:
    """What the compiler eliminated from one batch.

    Attributes
    ----------
    input_size / output_size:
        Update counts before and after compilation.
    duplicates_dropped:
        Operations repeating the previous effective operation on the same
        entity (e.g. inserting an edge the batch already inserted).
    cancelled_ops:
        Operations removed because an insertion and a deletion of the
        same entity netted out.
    subsumed_ops:
        Edge operations dropped because a node deletion in the same batch
        makes them redundant (including carried-edge payload entries).
    resurrections:
        Nodes the batch deleted and re-inserted; each survives as a
        delete + re-insert pair (counted once per node, not per op).
    """

    input_size: int
    output_size: int
    duplicates_dropped: int = 0
    cancelled_ops: int = 0
    subsumed_ops: int = 0
    resurrections: int = 0

    @property
    def eliminated(self) -> int:
        """Total updates removed by compilation."""
        return self.input_size - self.output_size

    @property
    def is_noop(self) -> bool:
        """``True`` when compilation changed nothing."""
        return self.eliminated == 0


@dataclass(frozen=True)
class CompiledBatch:
    """A canonicalised batch plus the report of what compilation removed."""

    batch: UpdateBatch
    report: CompilationReport

    def data_updates(self) -> list[Update]:
        """Surviving data-graph updates, in canonical order."""
        return self.batch.data_updates()

    def pattern_updates(self) -> list[Update]:
        """Surviving pattern-graph updates, in canonical order."""
        return self.batch.pattern_updates()

    def __len__(self) -> int:
        return len(self.batch)

    def __iter__(self) -> Iterator[Update]:
        return iter(self.batch)


def compile_batch(updates: Iterable[Update]) -> CompiledBatch:
    """Canonicalise ``updates`` into their net effect.

    The input may be an :class:`~repro.graph.updates.UpdateBatch` or any
    iterable of updates; unlike ``UpdateBatch`` construction the compiler
    tolerates duplicate operations (that is part of what it removes).
    """
    stream = list(updates)
    compiled: list[Update] = []
    duplicates = 0
    cancelled = 0
    subsumed = 0
    resurrections = 0
    for kind in (GraphKind.DATA, GraphKind.PATTERN):
        survivors, counts = _compile_one_graph(
            [(pos, u) for pos, u in enumerate(stream) if u.graph is kind]
        )
        compiled.extend(survivors)
        duplicates += counts[0]
        cancelled += counts[1]
        subsumed += counts[2]
        resurrections += counts[3]
    report = CompilationReport(
        input_size=len(stream),
        output_size=len(compiled),
        duplicates_dropped=duplicates,
        cancelled_ops=cancelled,
        subsumed_ops=subsumed,
        resurrections=resurrections,
    )
    return CompiledBatch(batch=UpdateBatch(compiled), report=report)


class _Entry:
    """One event in an edge timeline.

    Either a real edge :class:`Update` (``update`` set, ``payload``
    ``None``) or an edge carried by a :class:`NodeInsertion` payload
    (``update`` ``None``, ``payload = (parent_pos, edge_tuple)``, always
    an insertion).  Treating payload edges as first-class timeline
    entries is what lets a later deletion of a carried edge (or of its
    endpoint) cancel correctly instead of leaving a stale payload.
    """

    __slots__ = ("pos", "is_insertion", "update", "payload")

    def __init__(self, pos: int, is_insertion: bool, update, payload) -> None:
        self.pos = pos
        self.is_insertion = is_insertion
        self.update = update
        self.payload = payload


def _compile_one_graph(
    stream: list[tuple[int, Update]]
) -> tuple[list[Update], tuple[int, int, int, int]]:
    """Compile the updates of one target graph; returns (survivors, counts)."""
    duplicates = 0
    cancelled = 0
    subsumed = 0
    graph_kind = stream[0][1].graph if stream else GraphKind.DATA

    # Per-entity timelines, with duplicates (a repeat of the previous
    # effective direction on the same entity) dropped as they arrive.
    # Carried payload edges of node insertions enter the edge timelines
    # alongside real edge updates.
    node_timelines: dict[NodeId, list[tuple[int, Update]]] = {}
    edge_timelines: dict[tuple[NodeId, NodeId], list[_Entry]] = {}
    #: parent_pos -> payload edge tuples that must not stay in the payload
    payload_strip: dict[int, set[tuple]] = {}

    def strip(entry: _Entry) -> None:
        parent_pos, edge = entry.payload
        payload_strip.setdefault(parent_pos, set()).add(edge)

    for pos, update in stream:
        if update.is_edge_update:
            timeline = edge_timelines.setdefault((update.source, update.target), [])
            if timeline and timeline[-1].is_insertion == update.is_insertion:
                duplicates += 1
                continue
            timeline.append(_Entry(pos, update.is_insertion, update, None))
        else:
            node_timeline = node_timelines.setdefault(update.node, [])
            if node_timeline and node_timeline[-1][1].is_insertion == update.is_insertion:
                duplicates += 1
                continue
            node_timeline.append((pos, update))
            if isinstance(update, NodeInsertion):
                for edge in update.edges:
                    entry = _Entry(pos, True, None, (pos, tuple(edge)))
                    timeline = edge_timelines.setdefault((edge[0], edge[1]), [])
                    if timeline and timeline[-1].is_insertion:
                        duplicates += 1
                        strip(entry)
                        continue
                    timeline.append(entry)

    # Resolve node timelines first: they decide which edge operations are
    # subsumed.  ``last_delete_pos`` marks, per node, the stream position
    # of its final deletion; edge operations before that position touch an
    # incarnation of the node that does not survive.  A node deleted *and*
    # re-inserted ("resurrection") keeps its first deletion and its final
    # insertion as a pair; every surviving edge insertion touching it must
    # apply after the re-insertion and is routed to a dedicated group.
    node_survivors: list[tuple[int, Update]] = []
    resurrection_survivors: list[tuple[int, Update]] = []
    surviving_insert_pos: set[int] = set()
    vanished: set[NodeId] = set()  # inserted then deleted: never durably exists
    net_deleted: set[NodeId] = set()  # pre-existing, deleted by the batch
    resurrected: set[NodeId] = set()  # pre-existing, deleted then re-inserted
    last_delete_pos: dict[NodeId, int] = {}
    for node, timeline in node_timelines.items():
        pre_existed = timeline[0][1].is_deletion
        final_exists = timeline[-1][1].is_insertion
        deletions = [pos for pos, u in timeline if u.is_deletion]
        if deletions:
            last_delete_pos[node] = max(deletions)
        if pre_existed == final_exists:
            if pre_existed:
                # Resurrection: the first deletion removes the old
                # incarnation (labels and incident edges), the final
                # insertion creates the new one.  Intermediate churn
                # cancels; the insertion's payload edges are re-emitted
                # standalone after it (see the edge resolution below).
                cancelled += len(timeline) - 2
                node_survivors.append(timeline[0])
                resurrection_survivors.append(timeline[-1])
                resurrected.add(node)
            else:
                cancelled += len(timeline)
                vanished.add(node)
        else:
            cancelled += len(timeline) - 1
            node_survivors.append(timeline[-1])
            if final_exists:
                surviving_insert_pos.add(timeline[-1][0])
            else:
                net_deleted.add(node)

    # Resolve edge timelines, cascading the node decisions.  A surviving
    # payload entry normally stays in its parent's payload; it becomes a
    # standalone EdgeInsertion when the parent was cancelled (the edge
    # outlives the parent node insertion) or when it must apply *after*
    # an edge deletion of the same pair (bound change).  Insertions that
    # touch a resurrected node are emitted *late* — after the node's
    # re-insertion — so the compiled stream stays directly applicable.
    edge_survivors: list[tuple[int, Update]] = []
    late_edge_survivors: list[tuple[int, Update]] = []

    def emit(entry: _Entry, force_standalone: bool = False, late: bool = False) -> None:
        destination = late_edge_survivors if late else edge_survivors
        if entry.payload is None:
            destination.append((entry.pos, entry.update))
            return
        parent_pos, edge = entry.payload
        if parent_pos in surviving_insert_pos and not force_standalone and not late:
            return  # stays in the surviving parent's payload
        strip(entry)
        bound = edge[2] if len(edge) > 2 else None
        destination.append(
            (entry.pos, EdgeInsertion(graph_kind, edge[0], edge[1], bound))
        )

    def drop(entry: _Entry, as_subsumed: bool = False) -> None:
        nonlocal cancelled, subsumed
        if as_subsumed:
            subsumed += 1
        else:
            cancelled += 1
        if entry.payload is not None:
            strip(entry)

    for (source, target), timeline in edge_timelines.items():
        kept: list[_Entry] = []
        for entry in timeline:
            dropped = False
            for endpoint in (source, target):
                if endpoint in vanished or endpoint in net_deleted:
                    dropped = True
                elif endpoint in last_delete_pos and entry.pos < last_delete_pos[endpoint]:
                    dropped = True
            if dropped:
                drop(entry, as_subsumed=True)
                continue
            if kept and kept[-1].is_insertion == entry.is_insertion:
                duplicates += 1
                if entry.payload is not None:
                    strip(entry)
                continue
            kept.append(entry)
        if not kept:
            continue
        if source in resurrected or target in resurrected:
            # Every kept entry postdates the reborn endpoint's final
            # deletion, which already removed all incident edges — so the
            # edge exists at the end iff the last entry is an insertion,
            # and that insertion must apply after the re-insertion.
            if kept[-1].is_insertion:
                for entry in kept[:-1]:
                    drop(entry, as_subsumed=not entry.is_insertion)
                emit(kept[-1], late=True)
            else:
                for entry in kept:
                    drop(entry, as_subsumed=True)
            continue
        pre_existed = not kept[0].is_insertion
        final_exists = kept[-1].is_insertion
        if pre_existed != final_exists:
            for entry in kept[:-1]:
                drop(entry)
            emit(kept[-1])
        elif not pre_existed:
            # Inserted and deleted within the batch: pure no-op.
            for entry in kept:
                drop(entry)
        elif graph_kind is GraphKind.DATA or _same_bound(kept[0], kept[-1]):
            # Deleted and re-inserted identically: pure no-op.
            for entry in kept:
                drop(entry)
        else:
            # A pattern-edge bound change: keep the delete/re-insert pair.
            # The re-insert must apply after the delete, so a payload
            # re-insert is converted to a standalone edge insertion.
            for entry in kept[1:-1]:
                drop(entry)
            edge_survivors.append((kept[0].pos, kept[0].update))
            emit(kept[-1], force_standalone=True)

    # Materialise the payload strips on the surviving node insertions.
    def materialise(survivor_list: list[tuple[int, Update]]) -> list[tuple[int, Update]]:
        cleaned: list[tuple[int, Update]] = []
        for pos, update in survivor_list:
            to_strip = payload_strip.get(pos)
            if to_strip and isinstance(update, NodeInsertion):
                edges = tuple(edge for edge in update.edges if tuple(edge) not in to_strip)
                update = NodeInsertion(update.graph, update.node, update.labels, edges)
            cleaned.append((pos, update))
        return cleaned

    survivors = _canonical_order(
        materialise(node_survivors),
        edge_survivors,
        materialise(resurrection_survivors),
        late_edge_survivors,
    )
    return survivors, (duplicates, cancelled, subsumed, len(resurrected))


def _canonical_order(
    node_ops: list[tuple[int, Update]],
    edge_ops: list[tuple[int, Update]],
    resurrection_ops: list[tuple[int, Update]] = (),
    late_edge_ops: list[tuple[int, Update]] = (),
) -> list[Update]:
    """Order survivors: node inserts, edge deletes, edge inserts, node
    deletes — then resurrection re-inserts and finally the edge
    insertions that must apply after a resurrection."""
    groups: tuple[list[tuple[int, Update]], ...] = ([], [], [], [])
    for pos, update in node_ops:
        groups[0 if update.is_insertion else 3].append((pos, update))
    for pos, update in edge_ops:
        groups[2 if update.is_insertion else 1].append((pos, update))
    ordered: list[Update] = []
    for group in groups + (list(resurrection_ops), list(late_edge_ops)):
        group.sort(key=lambda entry: entry[0])
        ordered.extend(update for _pos, update in group)
    return ordered


def _same_bound(deletion_entry: "_Entry", insertion_entry: "_Entry") -> bool:
    """Whether a pattern-edge delete/re-insert pair restores the same bound."""
    deletion = deletion_entry.update  # deletions are always real updates
    assert isinstance(deletion, EdgeDeletion)
    if deletion.bound is None:
        return False  # unknown recorded bound: keep the pair, to be safe
    if insertion_entry.payload is not None:
        edge = insertion_entry.payload[1]
        if len(edge) < 3:
            return False
        return normalise_bound(deletion.bound) == normalise_bound(edge[2])
    return normalise_bound(deletion.bound) == insertion_entry.update.bound
