"""Single-pass ``SLen`` maintenance for a whole (compiled) update batch.

:func:`coalesce_slen` replaces the per-update
:func:`~repro.spl.incremental.update_slen` loop.  Given the *final*
data graph (all updates applied) and the *pre-batch* matrix, it

1. records the ``INF`` transitions of deleted nodes and adjusts the
   matrix universe (removed and inserted nodes) in one structural step;
2. identifies, **per source**, the union of targets affected by *any*
   deletion — using the pre-batch distances, exactly as the single-update
   affectedness test of Ramalingam & Reps — and settles each source's
   whole affected region with **one** bounded Dijkstra instead of one
   per deletion.  Inserted edges and nodes are skipped during this phase
   so it computes the exact distances of the deletions-only graph;
3. applies all surviving insertions in one multi-source relaxation sweep,
   iterated to a fixpoint (a second round only re-examines edges whose
   endpoint distances moved, so the common case costs one sweep).

The merged :class:`~repro.spl.incremental.SLenDelta` it returns equals
the composition of the per-update deltas of sequential maintenance
(:func:`repro.spl.incremental.fold_deltas`): identity pairs — a deletion
whose damage an insertion fully repairs — are dropped from both.

For the elimination machinery, which needs per-update ``Aff_N`` sets,
the pass also *attributes* every change: a worsened pair is blamed on
each deletion whose affectedness test matched it, an improved pair on
the insertion whose relaxation produced it.  The per-update deltas are
exact for attribution purposes (their union is the merged delta) but,
unlike sequential maintenance, they do not expose intermediate matrix
states — those never materialise in a coalesced pass.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.spl.incremental import SLenDelta
from repro.spl.matrix import INF, SLenMatrix

#: Below this many updates in a batch, compiling + coalescing costs more
#: than it saves and the algorithms fall back to per-update maintenance.
#: ``BENCH_batching.json``: coalescing loses clearly below 64, is about
#: par (within noise of 1x) at 64, and wins decisively by 256 on
#: deletion-bearing mixes — so 64 is the point where the coalesced path
#: stops being a regression.  Callers can override via
#: ``coalesce_min_batch``.
DEFAULT_COALESCE_MIN_BATCH: int = 64

NodeId = Hashable
Pair = tuple[NodeId, NodeId]
Change = tuple[float, float]


@dataclass(frozen=True)
class CoalescedMaintenance:
    """Result of one coalesced maintenance pass.

    Attributes
    ----------
    delta:
        The merged :class:`SLenDelta` of the whole batch — equal to the
        folded composition of sequential per-update deltas.
    per_update:
        One attribution delta per input update (aligned by index); the
        source of the per-update ``Aff_N`` sets that DER-II/DER-III and
        the EH-Tree consume.
    settled_sources:
        How many sources needed an affected-region recompute (each one
        runs exactly once, regardless of how many deletions touched it).
    relaxation_rounds:
        Sweeps of the insertion relaxation until fixpoint (usually 1
        productive round plus one cheap verification round).
    """

    delta: SLenDelta
    per_update: list[SLenDelta]
    settled_sources: int = 0
    relaxation_rounds: int = 0


def coalesce_slen(
    slen: SLenMatrix,
    graph_after: DataGraph,
    updates: Sequence[Update],
    settle=None,
) -> CoalescedMaintenance:
    """Maintain ``slen`` in place for a whole batch of data updates.

    ``graph_after`` must already include **all** structural changes.  The
    updates are expected to be canonical (no duplicates, no inverse
    pairs) — :func:`repro.batching.compiler.compile_batch` produces such
    streams; feeding a raw stream with internal cancellations produces an
    exception or an incorrect matrix, exactly like calling the
    single-update maintenance with an inconsistent ``graph_after``.

    A node both deleted and re-inserted by the batch (a compiled
    resurrection) is handled as a deletion followed by an isolated
    re-insertion; its new incident edges arrive as separate insertions.

    ``settle`` optionally replaces the deletion-phase settle kernel
    (signature and contract of
    :meth:`repro.spl.backend.SLenBackend.settle_sources`); the
    partitioned-coalesced strategy uses this hook to route row-heavy
    sources through the label partition
    (:func:`repro.partition.partitioned_spl.coalesce_slen_partitioned`).
    """
    updates = list(updates)
    inserted_edges: list[tuple[NodeId, NodeId, int]] = []
    inserted_nodes: dict[NodeId, int] = {}
    deleted_edges: list[tuple[NodeId, NodeId, int]] = []
    deleted_nodes: dict[NodeId, int] = {}
    for index, update in enumerate(updates):
        if update.graph is not GraphKind.DATA:
            raise UpdateError(
                f"SLen maintenance only applies to data-graph updates, got {update!r}"
            )
        if isinstance(update, EdgeInsertion):
            inserted_edges.append((update.source, update.target, index))
        elif isinstance(update, EdgeDeletion):
            deleted_edges.append((update.source, update.target, index))
        elif isinstance(update, NodeInsertion):
            inserted_nodes[update.node] = index
            for edge in update.edges:
                inserted_edges.append((edge[0], edge[1], index))
        elif isinstance(update, NodeDeletion):
            deleted_nodes[update.node] = index
        else:
            raise UpdateError(f"unsupported update type {type(update).__name__}")
    _check_graph_state(slen, graph_after, inserted_edges, inserted_nodes, deleted_edges, deleted_nodes)

    merged: dict[Pair, Change] = {}
    per_changed: list[dict[Pair, Change]] = [{} for _ in updates]
    per_structural: list[set[NodeId]] = [set() for _ in updates]
    per_recomputed: list[set[NodeId]] = [set() for _ in updates]

    def record(pair: Pair, old: float, new: float, blame: frozenset[int] | tuple[int, ...]) -> None:
        if pair in merged:
            merged[pair] = (merged[pair][0], new)
        else:
            merged[pair] = (old, new)
        for index in blame:
            bucket = per_changed[index]
            if pair in bucket:
                bucket[pair] = (bucket[pair][0], new)
            else:
                bucket[pair] = (old, new)

    # ------------------------------------------------------------------
    # Structural step: deleted nodes' rows/columns become INF; adjust the
    # matrix universe.  Rows/columns are captured pre-removal because the
    # deletion phase needs the pre-batch distances through each node.
    # ------------------------------------------------------------------
    old_rows: dict[NodeId, dict[NodeId, int]] = {}
    old_cols: dict[NodeId, dict[NodeId, int]] = {}
    for node in deleted_nodes:
        old_rows[node] = slen.row(node)
        old_cols[node] = slen.column(node)
    for node, index in deleted_nodes.items():
        per_structural[index].add(node)
        for target, dist in old_rows[node].items():
            if target != node:
                record((node, target), dist, INF, (index,))
        for source, dist in old_cols[node].items():
            if source != node:
                record((source, node), dist, INF, (index,))
    for node in deleted_nodes:
        slen.remove_node(node)
    for node, index in inserted_nodes.items():
        slen.add_node(node)
        per_structural[index].add(node)

    # ------------------------------------------------------------------
    # Deletion phase: one affected-region union + one settle per source.
    # Detection and settling both run as backend kernels (vectorized on
    # the dense backend); this loop only attributes blame and applies.
    # ------------------------------------------------------------------
    backend = slen.backend
    remaining = slen.nodes()
    blame_by_source: dict[NodeId, dict[NodeId, set[int]]] = {}

    def flag(source: NodeId, target: NodeId, index: int) -> None:
        blame_by_source.setdefault(source, {}).setdefault(target, set()).add(index)

    for edge_source, edge_target, index in deleted_edges:
        if (
            edge_source in deleted_nodes
            or edge_target in deleted_nodes
            or edge_source not in remaining
            or edge_target not in remaining
        ):
            continue  # subsumed by a node deletion; its pairs are already INF
        for x, targets in backend.affected_by_edge_deletion(edge_source, edge_target).items():
            for y in targets:
                flag(x, y, index)
    for node, index in deleted_nodes.items():
        for x, targets in backend.affected_by_node_deletion(old_rows[node], old_cols[node]).items():
            for y in targets:
                flag(x, y, index)

    skip_edges = frozenset((source, target) for source, target, _ in inserted_edges)
    skip_nodes = frozenset(inserted_nodes)
    horizon = slen.horizon
    affected_by_source = {x: set(targets) for x, targets in blame_by_source.items()}
    if settle is None:
        settle = backend.settle_sources
    settled = settle(
        graph_after, affected_by_source, skip_edges=skip_edges, skip_nodes=skip_nodes
    )
    get = backend.get
    for x, blamed_targets in blame_by_source.items():
        new_values = settled[x]
        for y in blamed_targets:
            old = get(x, y)
            new = new_values.get(y, INF)
            if new > horizon:
                new = INF
            blame = blamed_targets[y]
            for index in blame:
                per_recomputed[index].add(x)
            if new != old:
                slen.set_distance(x, y, new)
                record((x, y), old, new, blame)

    # ------------------------------------------------------------------
    # Insertion phase: multi-source relaxation sweep to a fixpoint.  Only
    # edges whose endpoint distances moved in the previous round are
    # re-examined, so the sweep usually costs one productive round.  Each
    # edge's relaxation is one backend kernel call (a rank-1 broadcast on
    # the dense backend).
    # ------------------------------------------------------------------
    rounds = 0
    pending = list(inserted_edges)
    while pending:
        rounds += 1
        improved_sources: set[NodeId] = set()
        improved_targets: set[NodeId] = set()
        for edge_source, edge_target, index in pending:
            for (x, y), (current, candidate) in backend.relax_edge(
                edge_source, edge_target
            ).items():
                record((x, y), current, candidate, (index,))
                improved_sources.add(x)
                improved_targets.add(y)
        pending = [
            (source, target, index)
            for source, target, index in inserted_edges
            if source in improved_targets or target in improved_sources
        ]

    # Drop identity pairs: a deletion whose damage an insertion repaired.
    merged = {pair: change for pair, change in merged.items() if change[0] != change[1]}
    # Symmetric difference: a resurrected node (deleted *and* re-inserted)
    # nets out structurally, matching the fold of its sequential deltas.
    structural = frozenset(set(deleted_nodes) ^ set(inserted_nodes))
    delta = SLenDelta(
        changed_pairs=merged,
        recomputed_sources=frozenset(blame_by_source),
        structural_nodes=structural,
    )
    per_update = [
        SLenDelta(
            changed_pairs=per_changed[index],
            recomputed_sources=frozenset(per_recomputed[index]),
            structural_nodes=frozenset(per_structural[index]),
        )
        for index in range(len(updates))
    ]
    return CoalescedMaintenance(
        delta=delta,
        per_update=per_update,
        settled_sources=len(blame_by_source),
        relaxation_rounds=rounds,
    )


def _check_graph_state(
    slen: SLenMatrix,
    graph_after: DataGraph,
    inserted_edges: list[tuple[NodeId, NodeId, int]],
    inserted_nodes: dict[NodeId, int],
    deleted_edges: list[tuple[NodeId, NodeId, int]],
    deleted_nodes: dict[NodeId, int],
) -> None:
    """Verify ``graph_after`` reflects every structural change of the batch."""
    for source, target, _ in inserted_edges:
        if not graph_after.has_edge(source, target):
            raise UpdateError(
                f"graph does not contain edge ({source!r}, {target!r}); apply the batch first"
            )
    for node in inserted_nodes:
        if not graph_after.has_node(node):
            raise UpdateError(f"graph does not contain node {node!r}; apply the batch first")
    for source, target, _ in deleted_edges:
        if graph_after.has_edge(source, target):
            raise UpdateError(
                f"graph still contains edge ({source!r}, {target!r}); apply the batch first"
            )
    for node in deleted_nodes:
        if graph_after.has_node(node) and node not in inserted_nodes:
            raise UpdateError(f"graph still contains node {node!r}; apply the batch first")
        if node not in slen.nodes():
            raise UpdateError(f"node {node!r} is not in the SLen matrix")


