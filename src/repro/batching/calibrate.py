"""Online recalibration of the planner's cost model from telemetry.

:func:`refit_cost_model` turns a stream of
:class:`~repro.batching.telemetry.PlanObservation` records into a new
:class:`~repro.batching.planner.CostModel`:

1. the **unit** — the wall-clock cost of "one per-update maintenance
   pass" — is estimated from the *sparse-backend* per-update
   observations by a through-origin least squares of
   ``elapsed_seconds`` on ``data_updates`` (the per-update strategy
   costs exactly ``data_updates`` units by construction, so it anchors
   the scale; a dense-only stream is de-factored by the incumbent's
   ``dense_per_update_factor`` instead).  Dense per-update rows then
   fit the **backend feature column's** per-update coefficient — the
   relative cost of one blocked-dense pass — so mixed-backend telemetry
   no longer conflates the two backends' pass costs;
2. the **coalesced** coefficients (fixed overhead, per-insertion and
   per-deletion factors) are refit by ordinary least squares of the
   unit-normalised elapsed time on ``(1, insertions, deletions)`` over
   the coalesced observations (sparse-backend rows preferred; pure
   Gaussian elimination on the 3x3 normal equations — no numpy needed);
   when both backends contributed rows, the dense rows additionally fit
   the column's coalesced-side discounts (insertion and deletion);
3. the **partitioned** coefficients reuse the refit insertion factor and
   the incumbent per-node term, leaving a 2-parameter fit of the
   residual on ``(1, deletions)``;
4. a **guard** evaluates every candidate coefficient set against the
   incumbent on held-out observations (every ``holdout_every``-th row,
   never trained on): a candidate that predicts the holdout *worse* than
   the incumbent is rejected and the incumbent's coefficients survive.
   A refit where every group is rejected returns the incumbent itself
   (same object, same version), so callers can detect "nothing learned".

:func:`planner_choice_accuracy` replays the routing decision of a model
over telemetry cells that measured at least two strategies on the same
workload shape, mirroring the ``planner_choice_accuracy`` gate of
``benchmarks/bench_batching.py`` — that is the acceptance metric of the
CI calibration job (refit must match or beat the shipped model on the
grid that produced the telemetry).

The module doubles as a CLI::

    PYTHONPATH=src python -m repro.batching.calibrate telemetry.json \\
        --out refit_cost_model.json --require-non-regression
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH
from repro.batching.planner import (
    DEFAULT_COST_MODEL,
    STRATEGY_COALESCED,
    STRATEGY_PARTITIONED,
    STRATEGY_PER_UPDATE,
    CostModel,
    plan_batch,
)
from repro.batching.telemetry import PlanObservation, TelemetryLog

#: Every ``holdout_every``-th observation of a strategy is held out of
#: the fit and used only to judge candidate vs. incumbent.
DEFAULT_HOLDOUT_EVERY: int = 4

#: Minimum observations (per fitted strategy) before a refit is attempted.
DEFAULT_MIN_OBSERVATIONS: int = 4

#: Tolerance when comparing candidate vs. incumbent holdout error: the
#: candidate wins ties (it was fit to fresher data).
_GUARD_EPSILON: float = 1e-12


@dataclass
class RefitReport:
    """Everything :func:`refit_cost_model` learned (and rejected).

    Attributes
    ----------
    model:
        The resulting :class:`CostModel` — the incumbent itself when
        nothing was accepted, otherwise a version-bumped refit.
    converged:
        Whether the fit machinery produced candidate coefficients at all
        (a rejected-by-guard fit still converged; too little or
        degenerate telemetry did not).
    accepted:
        Per fitted group (``"coalesced"``, ``"partitioned"``) whether
        the candidate survived the holdout guard.
    unit_seconds:
        The estimated wall-clock seconds of one per-update unit.
    observation_counts:
        Observations per executed strategy that entered the refit.
    holdout_errors:
        Per group: ``{"candidate": mae, "incumbent": mae}`` on the
        held-out rows, in per-update units (absent when no holdout).
    notes:
        Human-readable diagnostics (why a group was skipped/rejected).
    """

    model: CostModel
    converged: bool = False
    accepted: dict = field(default_factory=dict)
    unit_seconds: Optional[float] = None
    observation_counts: dict = field(default_factory=dict)
    holdout_errors: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """Plain-dict summary (the CLI's JSON report body)."""
        return {
            "converged": self.converged,
            "accepted": dict(self.accepted),
            "unit_seconds": self.unit_seconds,
            "observation_counts": dict(self.observation_counts),
            "holdout_errors": {
                group: dict(errors) for group, errors in self.holdout_errors.items()
            },
            "notes": list(self.notes),
            "model": self.model.as_dict(),
        }


# ----------------------------------------------------------------------
# Tiny linear algebra (no numpy dependency: the systems are 2x2 / 3x3)
# ----------------------------------------------------------------------
def _solve_normal_equations(
    rows: Sequence[Sequence[float]], targets: Sequence[float]
) -> Optional[list[float]]:
    """Least-squares solve of ``rows @ beta ~= targets`` via the normal
    equations and Gaussian elimination with partial pivoting.  Returns
    ``None`` when the system is singular (degenerate features)."""
    if not rows:
        return None
    k = len(rows[0])
    ata = [[0.0] * k for _ in range(k)]
    atb = [0.0] * k
    for row, target in zip(rows, targets):
        for i in range(k):
            atb[i] += row[i] * target
            for j in range(k):
                ata[i][j] += row[i] * row[j]
    # Augmented elimination.
    for col in range(k):
        pivot = max(range(col, k), key=lambda r: abs(ata[r][col]))
        if abs(ata[pivot][col]) < 1e-12:
            return None
        if pivot != col:
            ata[col], ata[pivot] = ata[pivot], ata[col]
            atb[col], atb[pivot] = atb[pivot], atb[col]
        inv = 1.0 / ata[col][col]
        for r in range(k):
            if r == col:
                continue
            factor = ata[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, k):
                ata[r][c] -= factor * ata[col][c]
            atb[r] -= factor * atb[col]
    solution = [atb[i] / ata[i][i] for i in range(k)]
    if any(value != value or value in (float("inf"), float("-inf")) for value in solution):
        return None
    return solution


def _split_holdout(items: list, holdout_every: int) -> tuple[list, list]:
    """(train, holdout): every ``holdout_every``-th item is held out."""
    if holdout_every < 2:
        return list(items), []
    train = [item for index, item in enumerate(items) if (index + 1) % holdout_every]
    holdout = [item for index, item in enumerate(items) if not (index + 1) % holdout_every]
    return train, holdout


def _strategy_mae(model: CostModel, rows: Iterable[tuple[PlanObservation, float]], strategy: str) -> float:
    """Mean absolute prediction error (in units) of ``model`` on rows of
    one executed strategy; ``rows`` pairs observations with unit-costs."""
    errors = []
    for observation, actual_units in rows:
        predicted = model.estimate(observation.statistics).get(strategy)
        if predicted is None:
            continue
        errors.append(abs(predicted - actual_units))
    return sum(errors) / len(errors) if errors else float("inf")


# ----------------------------------------------------------------------
# The refit
# ----------------------------------------------------------------------
def refit_report(
    observations: Iterable[PlanObservation],
    incumbent: Optional[CostModel] = None,
    holdout_every: int = DEFAULT_HOLDOUT_EVERY,
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
) -> RefitReport:
    """Refit the cost model from telemetry; full diagnostics.

    See the module docstring for the procedure.  The returned report's
    ``model`` is the incumbent itself (``is``-identical) when the refit
    did not converge or every fitted group was rejected by the guard.
    """
    incumbent = incumbent or DEFAULT_COST_MODEL
    report = RefitReport(model=incumbent)

    usable = [
        observation
        for observation in observations
        if observation.statistics.data_updates > 0 and observation.elapsed_seconds >= 0
    ]
    by_strategy: dict[str, list[PlanObservation]] = {}
    for observation in usable:
        by_strategy.setdefault(observation.executed, []).append(observation)
    report.observation_counts = {
        strategy: len(rows) for strategy, rows in sorted(by_strategy.items())
    }

    # ------------------------------------------------------------------
    # Step 1: the per-update unit anchors wall-clock to model units.
    # The unit is a *sparse*-backend quantity (the backend feature
    # column expresses dense costs relative to it), so sparse rows
    # anchor when available; a dense-only stream is de-factored by the
    # incumbent's dense_per_update_factor instead.
    # ------------------------------------------------------------------
    per_update = by_strategy.get(STRATEGY_PER_UPDATE, [])
    sparse_per_update = [o for o in per_update if o.statistics.backend != "dense"]
    dense_per_update = [o for o in per_update if o.statistics.backend == "dense"]
    anchored_on_sparse = len(sparse_per_update) >= min_observations
    de_factor = 1.0
    if anchored_on_sparse:
        anchor_rows = sparse_per_update
    elif len(dense_per_update) >= min_observations:
        # Too few sparse rows to anchor on (a mostly-dense stream):
        # fall back to the dense rows, de-factored by the incumbent's
        # per-update factor, rather than aborting the whole refit.
        anchor_rows = dense_per_update
        de_factor = incumbent.dense_per_update_factor or 1.0
        report.notes.append(
            f"too few sparse per-update observations ({len(sparse_per_update)} < "
            f"{min_observations}); anchored the unit on dense rows de-factored "
            f"by the incumbent dense_per_update_factor"
        )
    else:
        report.notes.append(
            f"insufficient per-update observations ({len(per_update)} total, "
            f"neither backend reaching {min_observations}); cannot anchor the unit"
        )
        return report
    denominator = sum(o.statistics.data_updates**2 for o in anchor_rows)
    if denominator <= 0:
        report.notes.append("degenerate per-update observations; cannot anchor the unit")
        return report
    unit = sum(o.elapsed_seconds * o.statistics.data_updates for o in anchor_rows) / denominator
    unit /= de_factor
    if unit <= 0:
        report.notes.append("non-positive per-update unit; telemetry is degenerate")
        return report
    report.unit_seconds = unit

    def unit_rows(strategy: str) -> list[tuple[PlanObservation, float]]:
        return [
            (observation, observation.elapsed_seconds / unit)
            for observation in by_strategy.get(strategy, [])
        ]

    changes: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Step 1b: backend feature column, per-update side — the relative
    # cost of one dense per-update pass, fit from the dense rows against
    # the sparse-anchored unit (guarded like every candidate).  Without
    # a sparse anchor the factor is unidentifiable (the dense rows
    # anchored the unit), so it is left alone.
    # ------------------------------------------------------------------
    if anchored_on_sparse and len(dense_per_update) >= min_observations:
        d_train, d_holdout = _split_holdout(dense_per_update, holdout_every)
        d_denominator = sum(o.statistics.data_updates**2 for o in d_train)
        if d_denominator > 0:
            factor = (
                sum(
                    (o.elapsed_seconds / unit) * o.statistics.data_updates
                    for o in d_train
                )
                / d_denominator
            )
            if factor > 0:
                report.converged = True
                f_candidate = incumbent.replace(dense_per_update_factor=factor)
                holdout_rows = [(o, o.elapsed_seconds / unit) for o in d_holdout]
                if holdout_rows:
                    candidate_mae = _strategy_mae(
                        f_candidate, holdout_rows, STRATEGY_PER_UPDATE
                    )
                    incumbent_mae = _strategy_mae(
                        incumbent, holdout_rows, STRATEGY_PER_UPDATE
                    )
                    report.holdout_errors["dense-per-update"] = {
                        "candidate": candidate_mae,
                        "incumbent": incumbent_mae,
                    }
                    f_accept = candidate_mae <= incumbent_mae + _GUARD_EPSILON
                else:
                    f_accept = True
                report.accepted["dense-per-update"] = f_accept
                if f_accept:
                    changes["dense_per_update_factor"] = factor
                else:
                    report.notes.append(
                        "dense per-update factor candidate predicted the "
                        "holdout worse; rejected"
                    )

    # ------------------------------------------------------------------
    # Step 2: coalesced fit (sparse rows preferred; dense rows are
    # de-discounted with the incumbent's factor when sparse is absent).
    # ------------------------------------------------------------------
    coalesced_all = unit_rows(STRATEGY_COALESCED)
    sparse_rows = [r for r in coalesced_all if r[0].statistics.backend != "dense"]
    dense_rows = [r for r in coalesced_all if r[0].statistics.backend == "dense"]
    fit_rows = sparse_rows
    de_discount = 1.0
    de_insert_discount = 1.0
    if not fit_rows and dense_rows:
        fit_rows = dense_rows
        de_discount = incumbent.dense_coalesced_discount or 1.0
        de_insert_discount = incumbent.dense_coalesced_insert_discount or 1.0
        report.notes.append(
            "no sparse coalesced observations; fit dense rows de-discounted "
            "by the incumbent factors"
        )

    solution = None
    if len(fit_rows) < min_observations:
        report.notes.append(
            f"insufficient coalesced observations ({len(fit_rows)} < "
            f"{min_observations}); kept the incumbent coefficients"
        )
    else:
        train, holdout = _split_holdout(fit_rows, holdout_every)
        solution = _solve_normal_equations(
            [
                (1.0, float(o.statistics.insertions), float(o.statistics.deletions))
                for o, _units in train
            ],
            [units for _o, units in train],
        )
        if solution is None:
            report.notes.append("coalesced fit is singular (degenerate features)")
    if solution is not None:
        report.converged = True
        fixed, insert_factor, delete_factor = (max(value, 0.0) for value in solution)
        delete_factor /= de_discount
        insert_factor /= de_insert_discount
        candidate = incumbent.replace(
            coalesce_fixed_overhead=fixed,
            coalesced_insert_factor=insert_factor,
            coalesced_delete_factor=delete_factor,
        )
        if holdout:
            candidate_mae = _strategy_mae(candidate, holdout, STRATEGY_COALESCED)
            incumbent_mae = _strategy_mae(incumbent, holdout, STRATEGY_COALESCED)
            report.holdout_errors[STRATEGY_COALESCED] = {
                "candidate": candidate_mae,
                "incumbent": incumbent_mae,
            }
            accept = candidate_mae <= incumbent_mae + _GUARD_EPSILON
        else:
            accept = True
        report.accepted[STRATEGY_COALESCED] = accept
        if accept:
            changes.update(
                coalesce_fixed_overhead=fixed,
                coalesced_insert_factor=insert_factor,
                coalesced_delete_factor=delete_factor,
            )
        else:
            report.notes.append("coalesced candidate predicted the holdout worse; rejected")

    # Dense coalesced discounts (the feature column's coalesced side):
    # refit only when both backends contributed enough coalesced rows to
    # compare their factors — and guard the pair on held-out dense rows
    # like every other candidate coefficient set.
    if sparse_rows and len(dense_rows) >= min_observations and changes:
        d_train, d_holdout = _split_holdout(dense_rows, holdout_every)
        dense_solution = _solve_normal_equations(
            [
                (1.0, float(o.statistics.insertions), float(o.statistics.deletions))
                for o, _units in d_train
            ],
            [units for _o, units in d_train],
        )
        base_delete = changes.get("coalesced_delete_factor", incumbent.coalesced_delete_factor)
        base_insert = changes.get("coalesced_insert_factor", incumbent.coalesced_insert_factor)
        if dense_solution is not None and base_delete > 0 and dense_solution[2] > 0:
            discounts = {
                "dense_coalesced_discount": min(dense_solution[2] / base_delete, 1.0)
            }
            if base_insert > 0 and dense_solution[1] > 0:
                discounts["dense_coalesced_insert_discount"] = min(
                    dense_solution[1] / base_insert, 1.0
                )
            d_candidate = incumbent.replace(**changes, **discounts)
            d_incumbent = incumbent.replace(**changes)
            if d_holdout:
                candidate_mae = _strategy_mae(d_candidate, d_holdout, STRATEGY_COALESCED)
                incumbent_mae = _strategy_mae(d_incumbent, d_holdout, STRATEGY_COALESCED)
                report.holdout_errors["dense-discount"] = {
                    "candidate": candidate_mae,
                    "incumbent": incumbent_mae,
                }
                d_accept = candidate_mae <= incumbent_mae + _GUARD_EPSILON
            else:
                d_accept = True
            report.accepted["dense-discount"] = d_accept
            if d_accept:
                changes.update(discounts)
            else:
                report.notes.append(
                    "dense-discount candidate predicted the holdout worse; rejected"
                )

    # ------------------------------------------------------------------
    # Step 3: partitioned fit — residual over (1, deletions), reusing
    # the (possibly refit) insertion factor and the incumbent per-node
    # condensation term.
    # ------------------------------------------------------------------
    partitioned_all = unit_rows(STRATEGY_PARTITIONED)
    insert_factor_now = changes.get("coalesced_insert_factor", incumbent.coalesced_insert_factor)
    insert_discount_now = changes.get(
        "dense_coalesced_insert_discount", incumbent.dense_coalesced_insert_discount
    )
    fixed_now = changes.get("coalesce_fixed_overhead", incumbent.coalesce_fixed_overhead)

    def _insert_factor_for(observation: PlanObservation) -> float:
        """The (backend-column-scaled) insertion factor one row pays."""
        if observation.statistics.backend == "dense":
            return insert_factor_now * insert_discount_now
        return insert_factor_now

    if len(partitioned_all) >= min_observations:
        p_train, p_holdout = _split_holdout(partitioned_all, holdout_every)
        residual_targets = [
            units
            - fixed_now
            - _insert_factor_for(o) * o.statistics.insertions
            - incumbent.partition_overhead_per_node * o.statistics.node_count
            for o, units in p_train
        ]
        p_solution = _solve_normal_equations(
            [(1.0, float(o.statistics.deletions)) for o, _units in p_train],
            residual_targets,
        )
        if p_solution is None:
            report.notes.append("partitioned fit is singular (degenerate features)")
        else:
            report.converged = True
            p_fixed, p_delete = (max(value, 0.0) for value in p_solution)
            p_candidate = incumbent.replace(
                **changes,
                partition_fixed_overhead=p_fixed,
                partitioned_delete_factor=p_delete,
            )
            # The rejection baseline is what would actually ship on
            # rejection: the incumbent plus the already-accepted
            # coalesced changes (which enter every partitioned estimate
            # through the shared insert factor and fixed overhead).
            p_baseline = incumbent.replace(**changes)
            if p_holdout:
                candidate_mae = _strategy_mae(p_candidate, p_holdout, STRATEGY_PARTITIONED)
                incumbent_mae = _strategy_mae(p_baseline, p_holdout, STRATEGY_PARTITIONED)
                report.holdout_errors[STRATEGY_PARTITIONED] = {
                    "candidate": candidate_mae,
                    "incumbent": incumbent_mae,
                }
                p_accept = candidate_mae <= incumbent_mae + _GUARD_EPSILON
            else:
                p_accept = True
            report.accepted[STRATEGY_PARTITIONED] = p_accept
            if p_accept:
                changes.update(
                    partition_fixed_overhead=p_fixed,
                    partitioned_delete_factor=p_delete,
                )
            else:
                report.notes.append(
                    "partitioned candidate predicted the holdout worse; rejected"
                )
    elif partitioned_all:
        report.notes.append(
            f"insufficient partitioned observations ({len(partitioned_all)} < "
            f"{min_observations}); kept the incumbent coefficients"
        )

    if not changes:
        # Everything was rejected: the incumbent survives unchanged.
        return report
    report.model = incumbent.replace(
        **changes,
        version=incumbent.version + 1,
        calibrated_from=f"refit from {len(usable)} telemetry observations",
    )
    return report


def refit_cost_model(
    observations: Iterable[PlanObservation],
    incumbent: Optional[CostModel] = None,
    holdout_every: int = DEFAULT_HOLDOUT_EVERY,
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
) -> CostModel:
    """Refit the cost model from telemetry (the :class:`RefitReport`'s
    ``model``): the incumbent itself when nothing was learned, otherwise
    a version-bumped refit whose per-strategy coefficient sets each beat
    the incumbent on held-out observations."""
    return refit_report(
        observations,
        incumbent=incumbent,
        holdout_every=holdout_every,
        min_observations=min_observations,
    ).model


class RecalibrationSchedule:
    """The online-recalibration cadence, in exactly one place.

    Both :class:`repro.algorithms.base.GPNMAlgorithm` (direct users with
    ``recalibrate_every``) and the experiment runner (``ExperimentConfig.
    recalibrate_every``, refitting between cells) share this trigger:
    once ``every`` new observations accrued since the last refit, refit
    from the log's retained observations and remember the result as the
    next incumbent.  The holdout guard inside the refit still applies —
    a worse candidate leaves the incumbent in place.
    """

    def __init__(
        self,
        every: int,
        incumbent: Optional[CostModel] = None,
        observed: int = 0,
    ) -> None:
        if every < 1:
            raise ValueError("recalibration cadence must be positive")
        self.every = every
        self.model = incumbent
        self._observed_at_refit = observed

    def maybe_refit(self, telemetry: TelemetryLog) -> Optional[CostModel]:
        """Refit if the cadence is due; returns the (possibly unchanged
        incumbent) model on a refit, ``None`` when not due yet."""
        if telemetry.total_recorded - self._observed_at_refit < self.every:
            return None
        self.model = refit_cost_model(
            telemetry.observations(), incumbent=self.model or DEFAULT_COST_MODEL
        )
        self._observed_at_refit = telemetry.total_recorded
        return self.model


# ----------------------------------------------------------------------
# Choice-accuracy evaluation (the CI calibration gate's metric)
# ----------------------------------------------------------------------
def planner_choice_accuracy(
    model: CostModel,
    observations: Iterable[PlanObservation],
    min_batch: int = DEFAULT_COALESCE_MIN_BATCH,
) -> dict:
    """Fraction of telemetry cells where ``model`` picks the measured best.

    Observations are grouped by workload shape
    (:attr:`PlanObservation.features_key`); a group is an accuracy
    *cell* when at least two strategies were measured on it.  Within a
    cell the empirically fastest strategy is the median-elapsed argmin,
    and the model's choice is what :func:`plan_batch` would route
    (``auto``).  Returns ``{"cells", "matched", "accuracy"}`` with
    ``accuracy = None`` when no cell qualifies — mirroring the
    ``planner_choice_accuracy`` field of ``BENCH_batching.json``.
    """
    groups: dict[tuple, dict[str, list[float]]] = {}
    stats_of: dict[tuple, PlanObservation] = {}
    for observation in observations:
        key = observation.features_key
        groups.setdefault(key, {}).setdefault(observation.executed, []).append(
            observation.elapsed_seconds
        )
        stats_of.setdefault(key, observation)
    cells = 0
    matched = 0
    for key, timings in groups.items():
        if len(timings) < 2:
            continue
        cells += 1
        # statistics.median, not an upper median: the benchmark's
        # planner_choice_accuracy gate uses it, and the two metrics must
        # agree on the same samples.
        medians = {
            strategy: statistics.median(values)
            for strategy, values in timings.items()
        }
        best = min(medians, key=medians.get)
        choice = plan_batch(
            stats_of[key].statistics, min_batch=min_batch, model=model
        ).strategy
        matched += choice == best
    return {
        "cells": cells,
        "matched": matched,
        "accuracy": (matched / cells) if cells else None,
    }


# ----------------------------------------------------------------------
# CLI: the CI calibration job's entry point
# ----------------------------------------------------------------------
#: ``--help`` epilog: where the telemetry comes from and what gets fit.
_CLI_EPILOG = """\
telemetry provenance and defaults:
  Telemetry is recorded by runs with --telemetry-out (ua-gpnm or
  benchmarks/bench_batching.py).  batch_plan defaults to 'auto'
  everywhere (algorithms, ExperimentConfig, the CLI), so a default run
  yields auto-routed observations; force strategies (--batch-plan
  per-update|coalesced|partitioned) to cover all three for the
  choice-accuracy replay.

what the refit learns:
  The per-update unit is anchored on sparse-backend per-update rows;
  coalesced / partitioned coefficients are least-squares refit per
  strategy; and the cost model's *backend feature column*
  (dense_per_update_factor + the dense coalesced discounts) is fit
  whenever dense-backend rows are present, so one calibration prices
  sparse and blocked-dense maintenance separately (the dense layout is
  tuned with ua-gpnm --slen-backend dense --dense-block-size N).  Every
  candidate coefficient set must beat the incumbent on held-out rows or
  it is rejected.
"""


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Refit from telemetry file(s), report as JSON, optionally gate."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.batching.calibrate",
        description=__doc__.splitlines()[0],
        epilog=_CLI_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "telemetry", nargs="+", help="telemetry JSON file(s) written by TelemetryLog.save"
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the refit CostModel JSON here"
    )
    parser.add_argument(
        "--incumbent",
        metavar="PATH",
        default=None,
        help="CostModel JSON to refit from (default: the shipped model)",
    )
    parser.add_argument(
        "--min-batch",
        type=int,
        default=DEFAULT_COALESCE_MIN_BATCH,
        help="planner crossover rule used in the accuracy replay",
    )
    parser.add_argument(
        "--require-non-regression",
        action="store_true",
        help=(
            "exit non-zero unless the refit model's planner_choice_accuracy "
            "on this telemetry is at least the shipped model's"
        ),
    )
    args = parser.parse_args(argv)

    observations: list[PlanObservation] = []
    for path in args.telemetry:
        observations.extend(TelemetryLog.load(path).observations())
    incumbent = CostModel.load_json(args.incumbent) if args.incumbent else DEFAULT_COST_MODEL

    report = refit_report(observations, incumbent=incumbent)
    shipped_accuracy = planner_choice_accuracy(
        incumbent, observations, min_batch=args.min_batch
    )
    refit_accuracy = planner_choice_accuracy(
        report.model, observations, min_batch=args.min_batch
    )
    payload = report.as_dict()
    payload["observations"] = len(observations)
    payload["choice_accuracy"] = {"shipped": shipped_accuracy, "refit": refit_accuracy}
    print(json.dumps(payload, indent=2))

    if not report.converged:
        print("calibration did not converge (see notes)", file=sys.stderr)
        return 1
    if args.out:
        report.model.save_json(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.require_non_regression:
        shipped = shipped_accuracy["accuracy"]
        refit = refit_accuracy["accuracy"]
        if shipped is None or refit is None:
            # No multi-strategy cells means no routing-accuracy signal at
            # all; a gate that cannot measure must not certify.
            print(
                "no telemetry cells measured >= 2 strategies; cannot "
                "certify choice-accuracy non-regression",
                file=sys.stderr,
            )
            return 1
        if refit < shipped:
            print(
                f"refit choice accuracy {refit:.3f} regressed below the "
                f"shipped model's {shipped:.3f}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CI job
    sys.exit(main())
