"""Adaptive batch execution planner: cost-model routing of ``SLen`` maintenance.

PR 2's benchmarks established that no single update-processing strategy
wins everywhere:

* **per-update** maintenance (one :func:`repro.spl.incremental.update_slen`
  call per update) is fastest for small batches — the compile+coalesce
  fixed costs exceed the savings below the ``BENCH_batching.json``
  crossover — and for *insert-dominated* batches, where the coalesced
  relaxation sweep repeats the same relaxations plus attribution
  bookkeeping (a structural non-win at every measured size);
* **coalesced** maintenance (:func:`repro.batching.coalesce.coalesce_slen`
  over a compiled stream) wins 1.5–2.5x on deletion-bearing batches above
  the crossover, because all deletions share one affected-region settle
  per source (or per target, with the transposed sweep);
* **partitioned-coalesced** maintenance
  (:func:`repro.partition.partitioned_spl.coalesce_slen_partitioned`)
  additionally recomputes row-heavy affected sources through the label
  partition (intra-component BFS + bridge composition — UA-GPNM's
  Section V advantage), which pays off once the deletion volume is large
  enough to amortise the quotient condensation.

:func:`plan_batch` unifies those routing decisions behind one decision
point.  It takes the batch statistics (insert/delete ratio, batch size,
node count, backend, partition availability) and either honours a forced
strategy or — for ``"auto"`` — picks the cheapest strategy under a small
linear cost model whose constants are calibrated from the
``BENCH_batching.json`` / ``BENCH_slen_backend.json`` crossovers.  The
old static ``coalesce_min_batch`` guard survives as exactly one planner
rule (rule 1 below).

Auto routing rules, in order:

1. batches below ``min_batch`` (or with fewer than two data updates) run
   per-update — the former ``coalesce_min_batch`` guard;
2. batches without deletions run per-update (coalescing insertions is a
   structural non-win);
3. insert-dominated batches (insert fraction at or above
   :data:`INSERT_ROUTE_THRESHOLD`) run per-update;
4. otherwise the strategy with the lowest estimated cost wins;
   partitioned-coalesced is only a candidate when a label partition is
   available.

Every decision is recorded in a :class:`PlanReport` (chosen strategy,
the statistics it saw, the per-strategy cost estimates and a
human-readable reason), which the algorithms surface through
:class:`~repro.algorithms.base.SubsequentResult` and the experiment
runner records.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH
from repro.batching.compiler import CompilationReport
from repro.graph.updates import GraphKind, Update
from repro.ioutil import atomic_write_text

#: The three executable maintenance strategies.
STRATEGY_PER_UPDATE = "per-update"
STRATEGY_COALESCED = "coalesced"
STRATEGY_PARTITIONED = "partitioned"
#: Let the cost model decide.
STRATEGY_AUTO = "auto"

STRATEGIES: tuple[str, ...] = (
    STRATEGY_PER_UPDATE,
    STRATEGY_COALESCED,
    STRATEGY_PARTITIONED,
)
#: Every value accepted wherever a plan is requested.
PLAN_CHOICES: tuple[str, ...] = (STRATEGY_AUTO,) + STRATEGIES

# ----------------------------------------------------------------------
# Cost model.  Unit: "one per-update maintenance pass", so the
# per-update strategy costs exactly ``data_updates``.  The shipped
# default is calibrated from BENCH_batching.json (sparse, 320 nodes,
# horizon 4), re-measured after the per-target transposed deletion sweep
# landed:
#
# * delete-bearing mixes now cross over at the 64-batch mark (1.0-1.2x
#   coalesced win at 64, 1.6-1.7x at 256) -> fixed overhead ~16 with a
#   deletion factor well under 1;
# * insert-heavy coalescing never wins (0.8-0.9x at every size); the
#   explicit insert-dominated routing rule handles those batches, and
#   the insertion factor stays high enough that near-threshold mixes
#   only coalesce once the deletion savings pay for the overhead;
# * the partition-aware settle adds an O(V + E) quotient condensation
#   plus the deletions-only graph build, so it only out-costs the plain
#   coalesced settle on large deletion volumes;
# * BENCH_slen_backend.json's coalesced-mixed rows show the dense
#   backend amortises the deletion settle better than sparse
#   (1.4-2.2x vs the per-kernel 1.2-1.7x), hence the dense discount.
# ----------------------------------------------------------------------

#: On-disk JSON layout version of a serialized :class:`CostModel`.
#: Version 2 added the backend feature column (``dense_per_update_factor``
#: + ``dense_coalesced_insert_discount``); version-1 payloads still load,
#: with the column's coefficients at their neutral defaults.
COST_MODEL_FORMAT_VERSION: int = 2

#: The fields of :class:`CostModel` that are fitted coefficients (the
#: serializer and the refit machinery enumerate exactly these).
COST_MODEL_COEFFICIENTS: tuple[str, ...] = (
    "coalesce_fixed_overhead",
    "coalesced_insert_factor",
    "coalesced_delete_factor",
    "dense_coalesced_discount",
    "partitioned_delete_factor",
    "partition_overhead_per_node",
    "partition_fixed_overhead",
    "insert_route_threshold",
    "dense_per_update_factor",
    "dense_coalesced_insert_discount",
)

#: Coefficients absent from pre-v2 payloads, with the neutral defaults
#: they load as (the backend feature column; see :meth:`CostModel.
#: from_dict`).
_OPTIONAL_COEFFICIENT_DEFAULTS: dict[str, float] = {
    "dense_per_update_factor": 1.0,
    "dense_coalesced_insert_discount": 1.0,
}


@dataclass(frozen=True)
class CostModel:
    """The planner's linear cost model, as an explicit serializable value.

    All coefficients are in per-update units (the per-update strategy
    costs exactly ``data_updates`` by construction, so it has no free
    coefficient).  The defaults are the shipped hand calibration; the
    online recalibration machinery (:mod:`repro.batching.calibrate`)
    refits the coefficients from execution telemetry and bumps
    ``version``, so a planner can tell a refit model from the incumbent
    it was derived from.

    Attributes
    ----------
    coalesce_fixed_overhead:
        Compile + coalesced-pass setup cost.
    coalesced_insert_factor:
        Per-insertion cost of the coalesced relaxation sweep.
    coalesced_delete_factor:
        Per-deletion cost of the shared affected-region settle (< 1 is
        the coalescing win).
    dense_coalesced_discount:
        Deletion-factor discount on the dense backend (batched settle
        kernel) — one coefficient of the **backend feature column**:
        the ``BatchStatistics.backend`` feature scales each strategy's
        terms so one calibration prices sparse and blocked-dense
        maintenance separately.
    partitioned_delete_factor:
        Per-deletion cost of the partition-aware settle (bridge
        composition).
    partition_overhead_per_node / partition_fixed_overhead:
        Quotient condensation is O(V + E): charged per node on top of
        the coalesced fixed overhead, plus a flat setup term.
    insert_route_threshold:
        Insert fraction at or above which auto always routes per-update.
    dense_per_update_factor:
        Backend feature column, per-update strategy: cost multiplier of
        one per-update maintenance pass on the dense backend (the unit
        is anchored on *sparse* per-update passes, so this is the
        relative per-pass cost of the blocked dense kernels; 1.0 =
        neutral).
    dense_coalesced_insert_discount:
        Backend feature column, coalesced insertion side: multiplier on
        ``coalesced_insert_factor`` when the backend is dense (the
        blocked rank-1 relaxation amortises differently from the sparse
        Python loop; 1.0 = neutral).
    version:
        Monotonic calibration generation (1 = the shipped model; a refit
        bumps it).
    calibrated_from:
        Human-readable provenance of the coefficients.
    """

    coalesce_fixed_overhead: float = 16.0
    coalesced_insert_factor: float = 0.9
    coalesced_delete_factor: float = 0.45
    dense_coalesced_discount: float = 0.9
    partitioned_delete_factor: float = 0.42
    partition_overhead_per_node: float = 1.0 / 64.0
    partition_fixed_overhead: float = 4.0
    insert_route_threshold: float = 0.75
    dense_per_update_factor: float = 1.0
    dense_coalesced_insert_discount: float = 1.0
    version: int = 1
    calibrated_from: str = "BENCH_batching.json + BENCH_slen_backend.json (hand-calibrated)"

    def estimate(self, statistics: "BatchStatistics") -> dict[str, float]:
        """Per-strategy cost estimates for one batch, in per-update units.

        The ``statistics.backend`` feature column scales the terms:
        on the dense backend the per-update pass costs
        ``dense_per_update_factor`` units, the coalesced insertion term
        is discounted by ``dense_coalesced_insert_discount`` and the
        deletion term by ``dense_coalesced_discount``.
        """
        insertions = statistics.insertions
        deletions = statistics.deletions
        per_update_unit = 1.0
        insert_factor = self.coalesced_insert_factor
        delete_factor = self.coalesced_delete_factor
        if statistics.backend == "dense":
            per_update_unit = self.dense_per_update_factor
            insert_factor *= self.dense_coalesced_insert_discount
            delete_factor *= self.dense_coalesced_discount
        costs = {
            STRATEGY_PER_UPDATE: float(statistics.data_updates) * per_update_unit,
            STRATEGY_COALESCED: (
                self.coalesce_fixed_overhead
                + insertions * insert_factor
                + deletions * delete_factor
            ),
        }
        if statistics.partition_available:
            costs[STRATEGY_PARTITIONED] = (
                self.coalesce_fixed_overhead
                + self.partition_fixed_overhead
                + statistics.node_count * self.partition_overhead_per_node
                + insertions * insert_factor
                + deletions * self.partitioned_delete_factor
            )
        return costs

    # ------------------------------------------------------------------
    # Serialization (versioned JSON)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Plain-dict form (the JSON layout of :meth:`save_json`)."""
        return {
            "format_version": COST_MODEL_FORMAT_VERSION,
            "version": self.version,
            "calibrated_from": self.calibrated_from,
            "coefficients": {
                name: getattr(self, name) for name in COST_MODEL_COEFFICIENTS
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostModel":
        """Rebuild a model from :meth:`as_dict` output (strictly validated).

        Accepts the current layout and version-1 payloads (written
        before the backend feature column existed); the column's
        coefficients load at their neutral defaults in that case.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"cost model payload must be a dict, got {type(payload).__name__}")
        fmt = payload.get("format_version")
        if fmt not in (1, COST_MODEL_FORMAT_VERSION):
            raise ValueError(
                f"unsupported cost model format_version {fmt!r}; "
                f"expected {COST_MODEL_FORMAT_VERSION} (or the legacy 1)"
            )
        coefficients = dict(payload.get("coefficients", {}))
        unknown = sorted(set(coefficients) - set(COST_MODEL_COEFFICIENTS))
        if unknown:
            raise ValueError(f"unknown cost model coefficients {unknown}")
        if fmt == 1:
            # Only legacy payloads may omit the backend feature column;
            # a current-format payload missing it is malformed.
            for name, default in _OPTIONAL_COEFFICIENT_DEFAULTS.items():
                coefficients.setdefault(name, default)
        missing = sorted(set(COST_MODEL_COEFFICIENTS) - set(coefficients))
        if missing:
            raise ValueError(f"missing cost model coefficients {missing}")
        return cls(
            version=int(payload.get("version", 1)),
            calibrated_from=str(payload.get("calibrated_from", "")),
            **{name: float(coefficients[name]) for name in COST_MODEL_COEFFICIENTS},
        )

    def save_json(self, path: Union[str, Path]) -> None:
        """Write the model to ``path`` as versioned JSON.

        Atomic (temp file + ``os.replace``): service instances hot-reload
        this artifact, so a reader must never see a half-written model.
        """
        atomic_write_text(path, json.dumps(self.as_dict(), indent=2) + "\n")

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "CostModel":
        """Load a model previously written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def replace(self, **changes) -> "CostModel":
        """A copy with ``changes`` applied (wrapper over dataclasses.replace)."""
        return dataclasses.replace(self, **changes)


#: The shipped calibration — what ``plan_batch`` uses when no explicit
#: model is handed in.
DEFAULT_COST_MODEL: CostModel = CostModel()

# Backwards-compatible aliases for the pre-CostModel module constants.
# Read-only snapshots of the shipped calibration: estimate_costs /
# plan_batch consult the CostModel they are given, never these globals,
# so reassigning them no longer changes routing — construct and pass a
# CostModel instead.
COALESCE_FIXED_OVERHEAD: float = DEFAULT_COST_MODEL.coalesce_fixed_overhead
COALESCED_INSERT_FACTOR: float = DEFAULT_COST_MODEL.coalesced_insert_factor
COALESCED_DELETE_FACTOR: float = DEFAULT_COST_MODEL.coalesced_delete_factor
DENSE_COALESCED_DISCOUNT: float = DEFAULT_COST_MODEL.dense_coalesced_discount
PARTITIONED_DELETE_FACTOR: float = DEFAULT_COST_MODEL.partitioned_delete_factor
PARTITION_OVERHEAD_PER_NODE: float = DEFAULT_COST_MODEL.partition_overhead_per_node
PARTITION_FIXED_OVERHEAD: float = DEFAULT_COST_MODEL.partition_fixed_overhead
INSERT_ROUTE_THRESHOLD: float = DEFAULT_COST_MODEL.insert_route_threshold


@dataclass(frozen=True)
class BatchStatistics:
    """The workload-shape inputs of the cost model.

    Attributes
    ----------
    batch_size:
        Total updates in the batch (pattern updates included — they ride
        along with the compile step but are never coalesced).
    data_updates:
        Data-graph updates (the ones ``SLen`` maintenance processes).
    insertions / deletions:
        Data-update counts by direction (a node insertion counts once,
        regardless of its payload edges).
    node_count:
        ``|VD|`` of the data graph at planning time.
    backend:
        Resolved ``SLen`` backend name (``"sparse"`` / ``"dense"``).
    partition_available:
        Whether a label partition can serve the partitioned-coalesced
        strategy (UA-GPNM with ``use_partition=True``).
    """

    batch_size: int
    data_updates: int
    insertions: int
    deletions: int
    node_count: int
    backend: str = "sparse"
    partition_available: bool = False

    @classmethod
    def from_updates(
        cls,
        updates: Iterable[Update],
        node_count: int,
        backend: str = "sparse",
        partition_available: bool = False,
        batch_size: Optional[int] = None,
    ) -> "BatchStatistics":
        """Collect statistics from an update stream.

        ``updates`` may mix pattern and data updates; only data updates
        count towards the maintenance ratios.  ``batch_size`` defaults to
        the length of ``updates``.
        """
        updates = list(updates)
        data = [u for u in updates if u.graph is GraphKind.DATA]
        insertions = sum(1 for u in data if u.is_insertion)
        return cls(
            batch_size=len(updates) if batch_size is None else batch_size,
            data_updates=len(data),
            insertions=insertions,
            deletions=len(data) - insertions,
            node_count=node_count,
            backend=backend,
            partition_available=partition_available,
        )

    @property
    def insert_fraction(self) -> float:
        """Fraction of data updates that are insertions (0 when empty)."""
        return self.insertions / self.data_updates if self.data_updates else 0.0

    @property
    def delete_fraction(self) -> float:
        """Fraction of data updates that are deletions (0 when empty)."""
        return self.deletions / self.data_updates if self.data_updates else 0.0


@dataclass(frozen=True)
class PlanReport:
    """One planning decision: what was chosen, from what, and why.

    Attributes
    ----------
    strategy:
        The chosen strategy (always one of :data:`STRATEGIES`).
    requested:
        What the caller asked for (``"auto"`` or a forced strategy; the
        chosen strategy can differ from a forced one only when the forced
        strategy is unavailable, e.g. partitioned without a partition).
    statistics:
        The :class:`BatchStatistics` the decision was based on.
    costs:
        Estimated cost per candidate strategy, in per-update units
        (partitioned is absent when no partition is available).
    reason:
        Human-readable rule that decided the route.
    compilation:
        The :class:`~repro.batching.compiler.CompilationReport` of the
        batch, filled in by the executing algorithm once the batch is
        compiled (``None`` on the per-update route, which skips the
        compiler).
    """

    strategy: str
    requested: str
    statistics: BatchStatistics
    costs: dict[str, float] = field(default_factory=dict)
    reason: str = ""
    compilation: Optional[CompilationReport] = None

    @property
    def forced(self) -> bool:
        """Whether the caller forced a strategy instead of ``auto``."""
        return self.requested != STRATEGY_AUTO

    def as_dict(self) -> dict:
        """Plain-dict summary (used by the runner records and benchmarks)."""
        return {
            "strategy": self.strategy,
            "requested": self.requested,
            "reason": self.reason,
            "batch_size": self.statistics.batch_size,
            "data_updates": self.statistics.data_updates,
            "insert_fraction": round(self.statistics.insert_fraction, 4),
            "backend": self.statistics.backend,
            "partition_available": self.statistics.partition_available,
            "costs": {name: round(cost, 3) for name, cost in self.costs.items()},
        }


def estimate_costs(
    statistics: BatchStatistics,
    min_batch: int = DEFAULT_COALESCE_MIN_BATCH,
    model: Optional[CostModel] = None,
) -> dict[str, float]:
    """Per-strategy cost estimates, in per-update units.

    The model is deliberately tiny and interpretable: per-update costs
    one unit per data update; the coalesced strategies pay a fixed
    compile+setup overhead plus per-insertion / per-deletion factors
    (:class:`CostModel` holds the calibration; ``None`` means the shipped
    :data:`DEFAULT_COST_MODEL`).  ``min_batch`` does not enter the
    estimates — it is a separate planner rule — but is accepted so
    callers can evolve the model without changing signatures.
    """
    del min_batch  # rule-based, not cost-based; see plan_batch
    return (model or DEFAULT_COST_MODEL).estimate(statistics)


def plan_batch(
    statistics: BatchStatistics,
    requested: str = STRATEGY_AUTO,
    min_batch: int = DEFAULT_COALESCE_MIN_BATCH,
    model: Optional[CostModel] = None,
) -> PlanReport:
    """Choose the maintenance strategy for one batch.

    ``requested`` is either a forced strategy (honoured verbatim, except
    that ``"partitioned"`` degrades to ``"coalesced"`` when no partition
    is available) or ``"auto"``, which applies the routing rules in the
    module docstring.  ``min_batch`` is the crossover batch size of
    rule 1 — the planner rule that subsumes the old static
    ``coalesce_min_batch`` guard.  ``model`` selects the
    :class:`CostModel` the estimates come from (``None`` = the shipped
    default; online recalibration swaps in refit models here).
    """
    if requested not in PLAN_CHOICES:
        raise ValueError(
            f"unknown batch plan {requested!r}; expected one of {PLAN_CHOICES}"
        )
    model = model or DEFAULT_COST_MODEL
    costs = model.estimate(statistics)

    if requested != STRATEGY_AUTO:
        strategy = requested
        reason = "forced by caller"
        if strategy == STRATEGY_PARTITIONED and not statistics.partition_available:
            strategy = STRATEGY_COALESCED
            reason = "partitioned forced but no label partition available; fell back to coalesced"
        return PlanReport(
            strategy=strategy,
            requested=requested,
            statistics=statistics,
            costs=costs,
            reason=reason,
        )

    if statistics.data_updates < 2 or statistics.batch_size < max(2, min_batch):
        strategy = STRATEGY_PER_UPDATE
        reason = (
            f"batch below the coalesce crossover (min_batch={min_batch}); "
            f"compile+coalesce fixed costs exceed the savings"
        )
    elif statistics.deletions == 0:
        strategy = STRATEGY_PER_UPDATE
        reason = "no deletions: coalescing insertions is a structural non-win"
    elif statistics.insert_fraction >= model.insert_route_threshold:
        strategy = STRATEGY_PER_UPDATE
        reason = (
            f"insert-dominated batch (insert fraction "
            f"{statistics.insert_fraction:.2f} >= {model.insert_route_threshold}); "
            f"routed away from coalescing"
        )
    else:
        strategy = min(costs, key=costs.get)
        reason = (
            f"lowest estimated cost ({costs[strategy]:.1f} per-update units) "
            f"among {sorted(costs)}"
        )
    return PlanReport(
        strategy=strategy,
        requested=requested,
        statistics=statistics,
        costs=costs,
        reason=reason,
    )
