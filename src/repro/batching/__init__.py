"""Batch-update compilation and coalesced ``SLen`` maintenance.

UA-GPNM's premise is that the updates arriving between two queries
should be handled *jointly*.  This package supplies the two pieces that
make the joint handling cheap:

* :mod:`repro.batching.compiler` — the **update-batch compiler**.  It
  canonicalises an update stream: exact duplicates are dropped, inverse
  insert/delete pairs cancel, edge operations subsumed by a node
  deletion disappear, and the survivors are emitted in a canonical
  order (node insertions, edge deletions, edge insertions, node
  deletions) that is always applicable.  A
  :class:`~repro.batching.compiler.CompilationReport` records what was
  eliminated.
* :mod:`repro.batching.coalesce` — **single-pass SLen maintenance**.
  Instead of one :func:`~repro.spl.incremental.update_slen` call per
  update, all surviving deletions are folded into one affected-region
  recompute per source and all surviving insertions into one
  multi-source relaxation sweep, yielding a single merged
  :class:`~repro.spl.incremental.SLenDelta` equal to the composition of
  the per-update deltas.

* :mod:`repro.batching.planner` — the **adaptive execution planner**.
  One decision point that routes each batch to per-update, coalesced or
  partitioned-coalesced maintenance via a small cost model calibrated
  from the benchmark crossovers; algorithms expose it as
  ``batch_plan="auto" | "per-update" | "coalesced" | "partitioned"``
  (see :class:`repro.algorithms.base.GPNMAlgorithm`) and surface each
  decision as a :class:`~repro.batching.planner.PlanReport`.

With a coalescing route chosen, the cost of a subsequent query scales
with the *net* delta of the batch instead of the raw update count.
"""

from repro.batching.compiler import CompilationReport, CompiledBatch, compile_batch
from repro.batching.coalesce import CoalescedMaintenance, coalesce_slen
from repro.batching.planner import (
    PLAN_CHOICES,
    STRATEGIES,
    BatchStatistics,
    PlanReport,
    estimate_costs,
    plan_batch,
)

__all__ = [
    "CompilationReport",
    "CompiledBatch",
    "compile_batch",
    "CoalescedMaintenance",
    "coalesce_slen",
    "PLAN_CHOICES",
    "STRATEGIES",
    "BatchStatistics",
    "PlanReport",
    "estimate_costs",
    "plan_batch",
]
