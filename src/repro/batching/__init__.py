"""Batch-update compilation and coalesced ``SLen`` maintenance.

UA-GPNM's premise is that the updates arriving between two queries
should be handled *jointly*.  This package supplies the two pieces that
make the joint handling cheap:

* :mod:`repro.batching.compiler` — the **update-batch compiler**.  It
  canonicalises an update stream: exact duplicates are dropped, inverse
  insert/delete pairs cancel, edge operations subsumed by a node
  deletion disappear, and the survivors are emitted in a canonical
  order (node insertions, edge deletions, edge insertions, node
  deletions) that is always applicable.  A
  :class:`~repro.batching.compiler.CompilationReport` records what was
  eliminated.
* :mod:`repro.batching.coalesce` — **single-pass SLen maintenance**.
  Instead of one :func:`~repro.spl.incremental.update_slen` call per
  update, all surviving deletions are folded into one affected-region
  recompute per source and all surviving insertions into one
  multi-source relaxation sweep, yielding a single merged
  :class:`~repro.spl.incremental.SLenDelta` equal to the composition of
  the per-update deltas.

* :mod:`repro.batching.planner` — the **adaptive execution planner**.
  One decision point that routes each batch to per-update, coalesced or
  partitioned-coalesced maintenance via an explicit, serializable
  :class:`~repro.batching.planner.CostModel`; algorithms expose it as
  ``batch_plan="auto" | "per-update" | "coalesced" | "partitioned"``
  (``"auto"`` is the default — see
  :class:`repro.algorithms.base.GPNMAlgorithm`) and surface each
  decision as a :class:`~repro.batching.planner.PlanReport`.

* :mod:`repro.batching.telemetry` / :mod:`repro.batching.calibrate` —
  the planner's **self-calibration loop**.  Every maintained batch
  emits a :class:`~repro.batching.telemetry.PlanObservation` (predicted
  cost vs measured maintenance time) into a bounded, persistable
  :class:`~repro.batching.telemetry.TelemetryLog`;
  :func:`~repro.batching.calibrate.refit_cost_model` least-squares
  refits the cost model from those observations (guarded against fits
  that predict held-out observations worse than the incumbent), either
  offline (the CI calibration job) or online
  (``recalibrate_every`` / ``--recalibrate-every``).

With a coalescing route chosen, the cost of a subsequent query scales
with the *net* delta of the batch instead of the raw update count.
"""

from repro.batching.compiler import CompilationReport, CompiledBatch, compile_batch
from repro.batching.coalesce import CoalescedMaintenance, coalesce_slen
from repro.batching.planner import (
    DEFAULT_COST_MODEL,
    PLAN_CHOICES,
    STRATEGIES,
    BatchStatistics,
    CostModel,
    PlanReport,
    estimate_costs,
    plan_batch,
)
from repro.batching.telemetry import PlanObservation, TelemetryLog

__all__ = [
    "CompilationReport",
    "CompiledBatch",
    "compile_batch",
    "CoalescedMaintenance",
    "coalesce_slen",
    "PLAN_CHOICES",
    "STRATEGIES",
    "BatchStatistics",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "PlanReport",
    "estimate_costs",
    "plan_batch",
    "PlanObservation",
    "TelemetryLog",
]

# NOTE: repro.batching.calibrate (refit_cost_model, refit_report,
# planner_choice_accuracy, RefitReport) is deliberately not re-exported
# here: the module doubles as `python -m repro.batching.calibrate`, and
# importing it from the package __init__ would leave it pre-imported in
# sys.modules when runpy executes it.  Import it directly.
