"""Small filesystem helpers shared across subsystems.

Two durability primitives live here:

* :func:`atomic_write_text` — several artifacts in this repository are
  *consumed while they are being produced* (the calibration job reads
  telemetry logs another process is still appending to, the streaming
  service hot-reloads cost-model JSON written by a periodic refit, and
  journal compaction rewrites a log a recovery may read next).  A plain
  ``Path.write_text`` truncates the file first, so a reader (or a crash)
  mid-write observes a corrupt artifact.  Writing to a temporary file in
  the same directory, fsyncing it, :func:`os.replace`-ing it over the
  target and fsyncing the *directory* makes the swap atomic **and**
  power-loss durable: after a crash the file is either the old complete
  version or the new complete version, never a torn or vanished one.
* :func:`append_line_durable` — the write-ahead journal's primitive.  A
  line is only "accepted" once it is flushed through the OS to the disk
  (``fsync``); when the append creates the file, the directory entry is
  fsynced too so the file itself survives a crash.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_directory(path: Union[str, Path]) -> None:
    """Flush ``path``'s directory metadata (new/renamed entries) to disk.

    A file create or rename is only crash-durable once its *directory
    entry* is synced, not just the file contents.  On platforms without
    directory file descriptors (Windows) this is a silent no-op — the
    containing rename is still atomic there, just not power-loss
    durable, which matches the platform's guarantees.
    """
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # pragma: no cover - Windows
        return
    try:
        fd = os.open(Path(path), os.O_RDONLY | flag)
    except OSError:  # pragma: no cover - unreadable parent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The text is written to a uniquely-named temporary file in the same
    directory (same filesystem, so the final :func:`os.replace` is a
    rename, not a copy), fsynced, and moved over ``path`` only once
    fully flushed; the parent directory entry is then fsynced so the
    rename itself survives power loss.  On any failure the temporary
    file is removed and ``path`` is left untouched — a crash mid-write
    can no longer corrupt (or silently roll back) the artifact.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        fsync_directory(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone / never created
            pass
        raise


def append_line_durable(path: Union[str, Path], line: str) -> None:
    """Durably append one line of text to ``path``.

    ``line`` is written (a trailing newline is added when missing),
    flushed, and fsynced before returning; when the append creates the
    file, the parent directory entry is fsynced too.  This is the
    write-ahead-journal primitive: once the call returns, the line
    survives a process crash or power loss — at worst a *later* torn
    append leaves a partial final line, which journal recovery detects
    and drops.
    """
    target = Path(path)
    if not line.endswith("\n"):
        line += "\n"
    created = not target.exists()
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
    if created:
        fsync_directory(target.parent)
