"""Small filesystem helpers shared across subsystems.

The one that matters: :func:`atomic_write_text`.  Several artifacts in
this repository are *consumed while they are being produced* — the
calibration job reads telemetry logs another process is still appending
to, and the streaming service hot-reloads cost-model JSON written by a
periodic refit.  A plain ``Path.write_text`` truncates the file first,
so a reader (or a crash) mid-write observes a corrupt artifact.  Writing
to a temporary file in the same directory and :func:`os.replace`-ing it
over the target makes the swap atomic on POSIX and Windows alike:
readers see either the old complete file or the new complete file,
never a torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The text is written to a uniquely-named temporary file in the same
    directory (same filesystem, so the final :func:`os.replace` is a
    rename, not a copy) and moved over ``path`` only once fully flushed.
    On any failure the temporary file is removed and ``path`` is left
    untouched — a crash mid-write can no longer corrupt the artifact.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone / never created
            pass
        raise
