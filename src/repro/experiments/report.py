"""Plain-text rendering of the reproduced tables and figures.

The renderers print the measured values next to the paper's reported
numbers (where available) so EXPERIMENTS.md and the benchmark output can
show, at a glance, whether the *shape* of each result — the ordering of
the four methods and the growth along the ΔG axis — is reproduced.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.figures import FIGURE_OF_DATASET, figure_series
from repro.experiments.runner import MeasurementRecord
from repro.experiments.tables import (
    PAPER_TABLE_XI,
    PAPER_TABLE_XII,
    PAPER_TABLE_XIII,
    PAPER_TABLE_XIV,
    method_columns,
    table_xi,
    table_xii,
    table_xiii,
    table_xiv,
)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def _render_grid(title: str, rows: dict, unit: str, paper: dict | None = None) -> str:
    """Render ``{row_label: {method: value}}`` as an aligned text table."""
    methods = method_columns(rows)
    header = ["row"] + methods
    lines = [title, ""]
    body: list[list[str]] = []
    for label, row in rows.items():
        cells = [str(label)]
        for method in methods:
            value = row.get(method)
            cells.append(f"{value:.3f}{unit}" if value is not None else "-")
        body.append(cells)
        if paper and str(label) in paper or (paper and label in paper):
            reference = paper.get(label, paper.get(str(label), {}))
            ref_cells = ["  (paper)"]
            for method in methods:
                ref_value = reference.get(method)
                ref_cells.append(f"{ref_value:.2f}{unit}" if ref_value is not None else "-")
            body.append(ref_cells)
    widths = [max(len(header[i]), *(len(row[i]) for row in body)) for i in range(len(header))]
    lines.append(_format_row(header, widths))
    lines.append(_format_row(["-" * width for width in widths], widths))
    for row in body:
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def render_table_xi(records: Sequence[MeasurementRecord], include_paper: bool = True) -> str:
    """Table XI: average query processing time per dataset."""
    return _render_grid(
        "Table XI — average query processing time per dataset (seconds)",
        table_xi(records),
        unit="s",
        paper=PAPER_TABLE_XI if include_paper else None,
    )


def render_table_xii(records: Sequence[MeasurementRecord], include_paper: bool = True) -> str:
    """Table XII: percentage reduction of UA-GPNM per dataset."""
    return _render_grid(
        "Table XII — query-time reduction of UA-GPNM vs the baselines (%)",
        table_xii(records),
        unit="%",
        paper=PAPER_TABLE_XII if include_paper else None,
    )


def render_table_xiii(records: Sequence[MeasurementRecord], include_paper: bool = True) -> str:
    """Table XIII: average query processing time per ΔG scale."""
    rows = {str(scale): row for scale, row in table_xiii(records).items()}
    return _render_grid(
        "Table XIII — average query processing time per ΔG scale (seconds)",
        rows,
        unit="s",
        paper=PAPER_TABLE_XIII if include_paper else None,
    )


def render_table_xiv(records: Sequence[MeasurementRecord], include_paper: bool = True) -> str:
    """Table XIV: percentage reduction of UA-GPNM per ΔG scale."""
    rows = {str(scale): row for scale, row in table_xiv(records).items()}
    return _render_grid(
        "Table XIV — query-time reduction of UA-GPNM per ΔG scale (%)",
        rows,
        unit="%",
        paper=PAPER_TABLE_XIV if include_paper else None,
    )


def render_figure(records: Sequence[MeasurementRecord], dataset: str) -> str:
    """Figures 5–9: query time vs. ΔG, one panel per pattern size."""
    series = figure_series(records, dataset)
    figure_name = FIGURE_OF_DATASET.get(dataset, "Figure")
    lines = [f"{figure_name} — average query processing time in {dataset} (seconds)"]
    for pattern_size, methods in series.items():
        lines.append("")
        lines.append(f"  pattern size = {pattern_size}")
        scales = sorted({scale for curve in methods.values() for scale in curve})
        header = ["method"] + [str(scale) for scale in scales]
        body = []
        for method, curve in methods.items():
            body.append(
                [method] + [f"{curve.get(scale, float('nan')):.3f}" for scale in scales]
            )
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) for i in range(len(header))
        ]
        lines.append("  " + _format_row(header, widths))
        for row in body:
            lines.append("  " + _format_row(row, widths))
    return "\n".join(lines)
