"""Experiment runner: execute the grid and collect per-cell measurements.

For every cell (dataset, pattern size, ΔG scale, repetition) the runner

1. generates the synthetic dataset stand-in and a pattern graph,
2. computes the shared initial-query state (``SLen`` + IQuery) once,
3. generates the update batch for the cell's ΔG scale,
4. runs every requested method from the *same* initial state and the
   *same* batch, recording wall-clock time and work counters, and
5. (optionally) cross-checks every method's ``SQuery`` against the
   from-scratch oracle.

Only the subsequent query is timed, matching the paper's measurement of
query processing time given an already-answered initial query.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import GPNMAlgorithm, warn_coalesce_updates_deprecated
from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH
from repro.batching.planner import DEFAULT_COST_MODEL, CostModel
from repro.batching.telemetry import TelemetryLog
from repro.algorithms.eh_gpnm import EHGPNM
from repro.algorithms.inc_gpnm import IncGPNM
from repro.algorithms.scratch import BatchGPNM
from repro.algorithms.ua_gpnm import UAGPNM
from repro.experiments.config import ExperimentConfig
from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.matching.gpnm import MatchResult, gpnm_query
from repro.spl.matrix import SLenMatrix
from repro.workloads.datasets import load_dataset
from repro.workloads.generators import DEFAULT_LABEL_ORDER
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch


#: Distance horizon used by the experiment harness.  Every generated
#: pattern bound is at most 3 and no generated pattern uses the ``"*"``
#: wildcard, so a bounded distance index with horizon 4 answers exactly
#: the same queries as the full all-pairs matrix while being far cheaper
#: to maintain (see the substitution table in DESIGN.md).
SLEN_HORIZON: int = 4


@dataclass(frozen=True)
class MeasurementRecord:
    """One method's measurement in one grid cell."""

    dataset: str
    pattern_size: tuple[int, int]
    delta_scale: tuple[int, int]
    repetition: int
    method: str
    elapsed_seconds: float
    refinement_passes: int
    slen_updates: int
    recomputed_rows: int
    eliminated_updates: int
    elimination_relations: int
    matches_oracle: Optional[bool] = None
    coalesced_batches: int = 0
    compiled_away_updates: int = 0
    slen_backend: str = "sparse"
    #: The requested batch plan and the strategy the planner chose (for
    #: INC-GPNM a coalescing choice means "compile first" — its
    #: maintenance is per-update by definition).
    batch_plan: str = "auto"
    plan_strategy: str = ""
    #: Wall-clock of the batch's ``SLen`` maintenance alone — the
    #: per-batch timing planner telemetry records against the cost
    #: model's prediction.
    maintenance_seconds: float = 0.0


def _method_factory(name: str) -> Callable[..., GPNMAlgorithm]:
    """Map a method name to its constructor."""
    factories: dict[str, Callable[..., GPNMAlgorithm]] = {
        "UA-GPNM": lambda pattern, data, **kw: UAGPNM(pattern, data, use_partition=True, **kw),
        "UA-GPNM-NoPar": lambda pattern, data, **kw: UAGPNM(pattern, data, use_partition=False, **kw),
        "EH-GPNM": lambda pattern, data, **kw: EHGPNM(pattern, data, **kw),
        "INC-GPNM": lambda pattern, data, **kw: IncGPNM(pattern, data, **kw),
        "Scratch-GPNM": lambda pattern, data, **kw: BatchGPNM(pattern, data, **kw),
    }
    try:
        return factories[name]
    except KeyError:
        raise ValueError(f"unknown method {name!r}") from None


def run_cell(
    data: DataGraph,
    pattern: PatternGraph,
    delta_scale: tuple[int, int],
    methods: tuple[str, ...],
    seed: int,
    dataset_name: str = "custom",
    pattern_size: Optional[tuple[int, int]] = None,
    repetition: int = 0,
    verify_against_oracle: bool = False,
    shared_slen: Optional[SLenMatrix] = None,
    shared_iquery: Optional[MatchResult] = None,
    coalesce_updates: bool = False,
    coalesce_min_batch: int = DEFAULT_COALESCE_MIN_BATCH,
    slen_backend: str = "sparse",
    dense_block_size: Optional[int] = None,
    batch_plan: Optional[str] = None,
    telemetry: Optional[TelemetryLog] = None,
    cost_model: Optional[CostModel] = None,
) -> list[MeasurementRecord]:
    """Run every method of one grid cell and return its measurement records."""
    if coalesce_updates:
        # Kept for API compatibility only: auto is the default plan now,
        # so the flag has no effect beyond this once-per-process warning.
        warn_coalesce_updates_deprecated(stacklevel=3)  # attribute to run_cell's caller
    if batch_plan is None:
        batch_plan = "auto"
    if pattern_size is None:
        pattern_size = (pattern.number_of_nodes, pattern.number_of_edges)
    if shared_slen is None:
        shared_slen = SLenMatrix.from_graph(
            data,
            horizon=SLEN_HORIZON,
            backend=slen_backend,
            dense_block_size=dense_block_size,
        )
    if shared_iquery is None:
        shared_iquery = gpnm_query(pattern, data, shared_slen, enforce_totality=False)
    num_pattern_updates, num_data_updates = delta_scale
    batch = generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=num_pattern_updates,
            num_data_updates=num_data_updates,
            seed=seed,
        ),
    )

    oracle_result: Optional[MatchResult] = None
    if verify_against_oracle:
        oracle = BatchGPNM(
            pattern, data, precomputed_slen=shared_slen, precomputed_relation=shared_iquery
        )
        oracle_result = oracle.subsequent_query(batch).result

    records: list[MeasurementRecord] = []
    for method in methods:
        factory = _method_factory(method)
        algorithm = factory(
            pattern,
            data,
            precomputed_slen=shared_slen,
            precomputed_relation=shared_iquery,
            batch_plan=batch_plan,
            coalesce_min_batch=coalesce_min_batch,
            slen_backend=slen_backend,
            dense_block_size=dense_block_size,
            telemetry=telemetry,
            cost_model=cost_model,
        )
        outcome = algorithm.subsequent_query(batch)
        matches_oracle = None
        if oracle_result is not None:
            matches_oracle = outcome.result == oracle_result
        stats = outcome.stats
        records.append(
            MeasurementRecord(
                dataset=dataset_name,
                pattern_size=pattern_size,
                delta_scale=delta_scale,
                repetition=repetition,
                method=method,
                elapsed_seconds=stats.elapsed_seconds,
                refinement_passes=stats.refinement_passes,
                slen_updates=stats.slen_updates,
                recomputed_rows=stats.recomputed_rows,
                eliminated_updates=stats.eliminated_updates,
                elimination_relations=stats.elimination_relations,
                matches_oracle=matches_oracle,
                coalesced_batches=stats.coalesced_batches,
                compiled_away_updates=stats.compiled_away_updates,
                slen_backend=algorithm.slen_backend,
                batch_plan=batch_plan,
                plan_strategy=stats.planned_strategy,
                maintenance_seconds=stats.maintenance_seconds,
            )
        )
    return records


def iter_cells(config: ExperimentConfig) -> Iterator[tuple[str, tuple[int, int], tuple[int, int], int]]:
    """Enumerate the grid cells of ``config`` in a deterministic order."""
    for dataset in config.datasets:
        for pattern_size in config.pattern_sizes:
            for delta_scale in config.delta_scales:
                for repetition in range(config.repetitions):
                    yield dataset, pattern_size, delta_scale, repetition


def run_experiment(
    config: ExperimentConfig,
    verify_against_oracle: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    telemetry: Optional[TelemetryLog] = None,
) -> list[MeasurementRecord]:
    """Run the whole grid described by ``config``.

    When ``config.telemetry_path`` or ``config.recalibrate_every`` is
    set (or a ``telemetry`` log is passed explicitly), every maintained
    batch records a planner observation — the PlanReport's predicted
    costs paired with the measured maintenance seconds.  With
    ``recalibrate_every`` > 0 the runner refits the cost model after
    every N new observations and the refit model routes all subsequent
    cells; the final log is persisted to ``config.telemetry_path``.
    """
    records: list[MeasurementRecord] = []
    cache: dict[tuple[str, tuple[int, int]], tuple[DataGraph, PatternGraph, SLenMatrix, MatchResult]] = {}
    if telemetry is None and (config.telemetry_path or config.recalibrate_every):
        telemetry = TelemetryLog()
    cost_model: Optional[CostModel] = (
        CostModel.load_json(config.cost_model_path) if config.cost_model_path else None
    )
    schedule = None
    if config.recalibrate_every:
        # Imported lazily so `python -m repro.batching.calibrate` never
        # finds the module pre-imported (same invariant as base.py).
        from repro.batching.calibrate import RecalibrationSchedule

        schedule = RecalibrationSchedule(
            config.recalibrate_every,
            cost_model,
            # Only *new* observations count toward the cadence when the
            # caller hands in a pre-populated log.
            observed=telemetry.total_recorded if telemetry is not None else 0,
        )
    try:
        for dataset_name, pattern_size, delta_scale, repetition in iter_cells(config):
            key = (dataset_name, pattern_size)
            if key not in cache:
                data = load_dataset(dataset_name, scale=config.dataset_scale)
                # Labels are passed in tier order and the pattern respects it so
                # that pattern edges follow the dominant direction of the
                # synthetic social graphs (otherwise most initial queries would
                # be empty and the matching work would be trivial).
                ordered_labels = tuple(
                    label for label in DEFAULT_LABEL_ORDER if label in data.labels()
                ) or tuple(sorted(data.labels()))
                pattern = generate_pattern(
                    PatternSpec(
                        num_nodes=pattern_size[0],
                        num_edges=pattern_size[1],
                        labels=ordered_labels,
                        min_bound=2,
                        max_bound=3,
                        star_probability=0.0,
                        respect_label_order=True,
                        seed=config.seed + pattern_size[0],
                    )
                )
                slen = SLenMatrix.from_graph(
                    data,
                    horizon=SLEN_HORIZON,
                    backend=config.slen_backend,
                    dense_block_size=config.dense_block_size,
                )
                iquery = gpnm_query(pattern, data, slen, enforce_totality=False)
                cache[key] = (data, pattern, slen, iquery)
            data, pattern, slen, iquery = cache[key]
            cell_seed = (
                config.seed
                + 7919 * repetition
                + 31 * delta_scale[1]
                + 17 * pattern_size[0]
                + sum(ord(ch) for ch in dataset_name)
            )
            if progress is not None:
                progress(
                    f"{dataset_name} pattern={pattern_size} dG={delta_scale} rep={repetition}"
                )
            records.extend(
                run_cell(
                    data,
                    pattern,
                    delta_scale,
                    config.methods,
                    seed=cell_seed,
                    dataset_name=dataset_name,
                    pattern_size=pattern_size,
                    repetition=repetition,
                    verify_against_oracle=verify_against_oracle,
                    shared_slen=slen,
                    shared_iquery=iquery,
                    coalesce_updates=config.coalesce_updates,  # deprecated, warns only
                    coalesce_min_batch=config.coalesce_min_batch,
                    slen_backend=config.slen_backend,
                    dense_block_size=config.dense_block_size,
                    batch_plan=config.batch_plan,
                    telemetry=telemetry,
                    cost_model=cost_model,
                )
            )
            # Online recalibration: once enough new observations accrued,
            # refit and route every subsequent cell with the refit model
            # (the guard inside refit keeps the incumbent when the fit is
            # worse on held-out observations).
            if schedule is not None and telemetry is not None:
                baseline_version = (
                    cost_model.version
                    if cost_model is not None
                    else DEFAULT_COST_MODEL.version
                )
                refit = schedule.maybe_refit(telemetry)
                if refit is not None:
                    cost_model = refit
                    # A rejected refit returns the incumbent (same
                    # version): report only when something was learned.
                    if refit.version > baseline_version and progress is not None:
                        progress(
                            f"recalibrated cost model (v{cost_model.version}) from "
                            f"{telemetry.total_recorded} observations"
                        )
    finally:
        # Persist whatever was observed even when a cell blows up
        # mid-grid: partial telemetry is exactly the evidence needed
        # to diagnose the failure (same rationale as the CI job's
        # always() artifact upload).
        if telemetry is not None and config.telemetry_path:
            telemetry.save(config.telemetry_path)
            if progress is not None:
                progress(f"telemetry written to {config.telemetry_path}")
    return records
