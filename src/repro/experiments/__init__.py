"""Experiment harness reproducing the paper's evaluation (Section VII).

* :mod:`repro.experiments.config` — the experiment grid (datasets,
  pattern sizes, ΔG scales, methods) with quick / full presets;
* :mod:`repro.experiments.runner` — runs the grid and collects one
  :class:`~repro.experiments.runner.MeasurementRecord` per cell;
* :mod:`repro.experiments.tables` — Tables XI, XII, XIII and XIV;
* :mod:`repro.experiments.figures` — the query-time-vs-ΔG series of
  Figures 5–9;
* :mod:`repro.experiments.report` — plain-text rendering, including the
  paper's reference numbers for side-by-side comparison.
"""

from repro.experiments.config import (
    METHOD_ORDER,
    ExperimentConfig,
    full_config,
    quick_config,
    tiny_config,
)
from repro.experiments.runner import MeasurementRecord, run_cell, run_experiment
from repro.experiments.tables import (
    table_xi,
    table_xii,
    table_xiii,
    table_xiv,
)
from repro.experiments.figures import figure_series
from repro.experiments.report import (
    render_figure,
    render_table_xi,
    render_table_xii,
    render_table_xiii,
    render_table_xiv,
)

__all__ = [
    "ExperimentConfig",
    "METHOD_ORDER",
    "tiny_config",
    "quick_config",
    "full_config",
    "MeasurementRecord",
    "run_cell",
    "run_experiment",
    "table_xi",
    "table_xii",
    "table_xiii",
    "table_xiv",
    "figure_series",
    "render_table_xi",
    "render_table_xii",
    "render_table_xiii",
    "render_table_xiv",
    "render_figure",
]
