"""Series reproducing Figures 5–9: query time vs. ΔG per pattern size.

Each of the paper's Figures 5–9 is one dataset; within a figure there is
one panel per pattern size, and within a panel one curve per method over
the ΔG axis.  :func:`figure_series` produces exactly that nesting from
the measurement records; :func:`repro.experiments.report.render_figure`
prints it as aligned text so the benches can be compared with the paper's
plotted values.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.experiments.runner import MeasurementRecord
from repro.experiments.tables import _average

#: Which paper figure corresponds to which dataset.
FIGURE_OF_DATASET: dict[str, str] = {
    "email-EU-core": "Figure 5",
    "DBLP": "Figure 6",
    "Amazon": "Figure 7",
    "Youtube": "Figure 8",
    "LiveJournal": "Figure 9",
}

FigureSeries = dict[tuple[int, int], dict[str, dict[tuple[int, int], float]]]


def figure_series(records: Sequence[MeasurementRecord], dataset: str) -> FigureSeries:
    """Build the per-pattern-size, per-method, per-ΔG series for ``dataset``.

    Returns ``{pattern_size: {method: {delta_scale: avg seconds}}}``.
    """
    grouped: dict[tuple[int, int], dict[str, dict[tuple[int, int], list[float]]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(list))
    )
    for record in records:
        if record.dataset != dataset:
            continue
        grouped[record.pattern_size][record.method][record.delta_scale].append(
            record.elapsed_seconds
        )
    series: FigureSeries = {}
    for pattern_size in sorted(grouped):
        series[pattern_size] = {}
        for method, by_scale in grouped[pattern_size].items():
            series[pattern_size][method] = {
                scale: _average(times) for scale, times in sorted(by_scale.items())
            }
    return series


def crossover_free(series: FigureSeries, faster: str, slower: str) -> bool:
    """``True`` when ``faster`` is never slower than ``slower`` anywhere in the figure.

    Used by the experiment reports to state whether the paper's ordering
    (UA-GPNM < UA-GPNM-NoPar < EH-GPNM < INC-GPNM) holds across the whole
    figure, which is the reproduction's success criterion.
    """
    for methods in series.values():
        fast_curve = methods.get(faster, {})
        slow_curve = methods.get(slower, {})
        for scale, fast_value in fast_curve.items():
            slow_value = slow_curve.get(scale)
            if slow_value is not None and fast_value > slow_value:
                return False
    return True
