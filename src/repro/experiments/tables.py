"""Aggregations reproducing Tables XI–XIV of the paper.

* **Table XI** — average query processing time per dataset, per method;
* **Table XII** — per-dataset percentage reduction of UA-GPNM against the
  three baselines;
* **Table XIII** — average query processing time per ΔG scale, per method;
* **Table XIV** — per-ΔG-scale percentage reduction of UA-GPNM.

All four are plain aggregations over the per-cell
:class:`~repro.experiments.runner.MeasurementRecord` list, so the same
records can feed every table (and the Figures 5–9 series).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.experiments.config import METHOD_ORDER
from repro.experiments.runner import MeasurementRecord

#: Paper-reported values of Table XI (seconds), for side-by-side reports.
PAPER_TABLE_XI: dict[str, dict[str, float]] = {
    "email-EU-core": {"UA-GPNM": 3.31, "UA-GPNM-NoPar": 3.98, "EH-GPNM": 5.25, "INC-GPNM": 8.27},
    "DBLP": {"UA-GPNM": 210.34, "UA-GPNM-NoPar": 262.71, "EH-GPNM": 322.38, "INC-GPNM": 501.25},
    "Amazon": {"UA-GPNM": 225.48, "UA-GPNM-NoPar": 278.37, "EH-GPNM": 346.15, "INC-GPNM": 536.85},
    "Youtube": {"UA-GPNM": 497.70, "UA-GPNM-NoPar": 602.41, "EH-GPNM": 753.03, "INC-GPNM": 1185.23},
    "LiveJournal": {"UA-GPNM": 1567.48, "UA-GPNM-NoPar": 1911.56, "EH-GPNM": 2449.19, "INC-GPNM": 3765.27},
}

#: Paper-reported values of Table XII (percentage reductions of UA-GPNM).
PAPER_TABLE_XII: dict[str, dict[str, float]] = {
    "email-EU-core": {"INC-GPNM": 59.98, "EH-GPNM": 36.95, "UA-GPNM-NoPar": 16.83},
    "DBLP": {"INC-GPNM": 58.04, "EH-GPNM": 34.75, "UA-GPNM-NoPar": 19.77},
    "Amazon": {"INC-GPNM": 58.00, "EH-GPNM": 34.86, "UA-GPNM-NoPar": 18.99},
    "Youtube": {"INC-GPNM": 58.60, "EH-GPNM": 33.91, "UA-GPNM-NoPar": 14.91},
    "LiveJournal": {"INC-GPNM": 58.37, "EH-GPNM": 36.01, "UA-GPNM-NoPar": 18.00},
}

#: Paper-reported values of Table XIII (seconds) keyed by ΔG scale label.
PAPER_TABLE_XIII: dict[str, dict[str, float]] = {
    "(6, 200)": {"UA-GPNM": 371.64, "UA-GPNM-NoPar": 423.46, "EH-GPNM": 503.03, "INC-GPNM": 712.67},
    "(7, 400)": {"UA-GPNM": 439.23, "UA-GPNM-NoPar": 513.71, "EH-GPNM": 643.29, "INC-GPNM": 956.63},
    "(8, 600)": {"UA-GPNM": 510.02, "UA-GPNM-NoPar": 606.03, "EH-GPNM": 774.87, "INC-GPNM": 1182.12},
    "(9, 800)": {"UA-GPNM": 571.69, "UA-GPNM-NoPar": 700.35, "EH-GPNM": 907.19, "INC-GPNM": 1417.40},
    "(10, 1000)": {"UA-GPNM": 636.42, "UA-GPNM-NoPar": 786.02, "EH-GPNM": 1038.96, "INC-GPNM": 1625.27},
}

#: Paper-reported values of Table XIV (percentage reductions of UA-GPNM).
PAPER_TABLE_XIV: dict[str, dict[str, float]] = {
    "(6, 200)": {"INC-GPNM": 47.85, "EH-GPNM": 26.12, "UA-GPNM-NoPar": 12.24},
    "(7, 400)": {"INC-GPNM": 54.09, "EH-GPNM": 31.72, "UA-GPNM-NoPar": 14.50},
    "(8, 600)": {"INC-GPNM": 56.86, "EH-GPNM": 34.18, "UA-GPNM-NoPar": 15.84},
    "(9, 800)": {"INC-GPNM": 59.67, "EH-GPNM": 36.98, "UA-GPNM-NoPar": 18.37},
    "(10, 1000)": {"INC-GPNM": 60.84, "EH-GPNM": 38.74, "UA-GPNM-NoPar": 19.03},
}


def _average(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def average_times_by(
    records: Sequence[MeasurementRecord], key: str
) -> dict[object, dict[str, float]]:
    """Average elapsed time grouped by ``key`` (a record attribute) and method."""
    grouped: dict[object, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
    for record in records:
        grouped[getattr(record, key)][record.method].append(record.elapsed_seconds)
    return {
        group: {method: _average(times) for method, times in methods.items()}
        for group, methods in grouped.items()
    }


def table_xi(records: Sequence[MeasurementRecord]) -> dict[str, dict[str, float]]:
    """Average query processing time per dataset (Table XI), plus an ``Average`` row."""
    per_dataset = average_times_by(records, "dataset")
    table = {dataset: dict(row) for dataset, row in per_dataset.items()}
    methods = {method for row in table.values() for method in row}
    table["Average"] = {
        method: _average(row[method] for row in per_dataset.values() if method in row)
        for method in methods
    }
    return table


def reduction_percentages(row: dict[str, float]) -> dict[str, float]:
    """Percentage reduction of UA-GPNM relative to every other method in ``row``."""
    base = row.get("UA-GPNM")
    if base is None:
        return {}
    reductions = {}
    for method, value in row.items():
        if method == "UA-GPNM" or value <= 0:
            continue
        reductions[method] = 100.0 * (value - base) / value
    return reductions


def table_xii(records: Sequence[MeasurementRecord]) -> dict[str, dict[str, float]]:
    """Per-dataset percentage reduction of UA-GPNM (Table XII), plus ``Average``."""
    return {
        dataset: reduction_percentages(row)
        for dataset, row in table_xi(records).items()
    }


def table_xiii(records: Sequence[MeasurementRecord]) -> dict[tuple[int, int], dict[str, float]]:
    """Average query processing time per ΔG scale (Table XIII)."""
    return {
        scale: dict(row)
        for scale, row in sorted(average_times_by(records, "delta_scale").items())
    }


def table_xiv(records: Sequence[MeasurementRecord]) -> dict[tuple[int, int], dict[str, float]]:
    """Per-ΔG-scale percentage reduction of UA-GPNM (Table XIV)."""
    return {scale: reduction_percentages(row) for scale, row in table_xiii(records).items()}


def method_columns(rows: dict[object, dict[str, float]]) -> list[str]:
    """The method columns present in ``rows``, in the paper's order."""
    present = {method for row in rows.values() for method in row}
    return [method for method in METHOD_ORDER if method in present] + sorted(
        present - set(METHOD_ORDER)
    )
