"""Experiment grid configuration (Section VII-A) with scaled presets.

The paper's grid is: 5 datasets × pattern sizes (6,6)–(10,10) × ΔG scales
(6,200)–(10,1000) × 4 methods × 5 runs.  A pure-Python reproduction
cannot afford the raw sizes, so the presets scale the data-update counts
down together with the datasets (DESIGN.md documents the factors):

* ``tiny_config``   — single small cell, used by the integration tests;
* ``quick_config``  — the default for the benchmark harness; minutes.
* ``full_config``   — the complete grid at the larger synthetic scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH
from repro.batching.planner import PLAN_CHOICES
from repro.spl.backend import BACKEND_NAMES
from repro.workloads.datasets import dataset_names

#: Canonical method order used in every table (matches the paper's columns).
METHOD_ORDER: tuple[str, ...] = (
    "UA-GPNM",
    "UA-GPNM-NoPar",
    "EH-GPNM",
    "INC-GPNM",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment grid.

    Attributes
    ----------
    datasets:
        Dataset names (keys of :data:`repro.workloads.datasets.DATASETS`).
    dataset_scale:
        ``"quick"`` or ``"full"`` synthetic dataset scale.
    pattern_sizes:
        ``(nodes, edges)`` pairs for the generated pattern graphs.
    delta_scales:
        ``(pattern updates, data updates)`` pairs — the ΔG axis.
    methods:
        Method names to run (subset of :data:`METHOD_ORDER`).
    repetitions:
        Independent runs per cell (different workload seeds), averaged.
    seed:
        Base seed; every cell derives its own deterministic seed from it.
    batch_plan:
        Maintenance-strategy plan handed to every method (``"auto"`` —
        the default: cost-model routing per batch — or a forced
        ``"per-update"`` / ``"coalesced"`` / ``"partitioned"``; see
        :mod:`repro.batching.planner`).  ``None`` also selects
        ``"auto"``.
    coalesce_updates:
        Deprecated alias for ``batch_plan="auto"`` (now the default
        anyway; kept for backwards compatibility).
    coalesce_min_batch:
        The planner's crossover rule: ``auto``-planned batches below
        this size stay on per-update maintenance (default from the
        ``BENCH_batching.json`` crossover).
    slen_backend:
        ``SLen`` storage backend for every method: ``"sparse"``,
        ``"dense"`` or ``"auto"`` (see :mod:`repro.spl.backend`).
    dense_block_size:
        Block edge of the blocked dense ``SLen`` layout (``None`` uses
        :data:`repro.spl.dense.DEFAULT_DENSE_BLOCK_SIZE`); ignored when
        the sparse backend is selected (CLI: ``--dense-block-size``).
    telemetry_path:
        When set, every maintained batch's planner observation
        (prediction vs. measured maintenance time) is collected in a
        :class:`~repro.batching.telemetry.TelemetryLog` and persisted
        here as JSON at the end of the run (CLI: ``--telemetry-out``).
    recalibrate_every:
        Online recalibration cadence: after every N new telemetry
        observations the runner refits the cost model
        (:func:`repro.batching.calibrate.refit_cost_model`) and hands
        the refit model to all subsequent cells.  0 disables (CLI:
        ``--recalibrate-every``).
    cost_model_path:
        Load the planner's starting
        :class:`~repro.batching.planner.CostModel` from this JSON file
        instead of the shipped calibration (CLI: ``--cost-model``).
    service_deadline_seconds:
        Streaming-service latency deadline: how long an accepted delta
        may sit buffered before the service cuts the batch even though
        the planner's coalescing crossover has not been reached (CLI:
        ``ua-gpnm serve --deadline``).
    service_max_buffer:
        Streaming-service capacity backstop: the buffered batch is cut
        unconditionally at this size (CLI: ``ua-gpnm serve
        --max-buffer``).
    journal_dir:
        Directory for the streaming service's per-graph write-ahead
        journals; ``None`` disables durability (CLI: ``ua-gpnm serve
        --journal-dir``).
    service_settle_retries:
        How many times the streaming service retries a failed settle
        (with capped exponential backoff) before bisecting the batch
        and quarantining its poison deltas.
    service_snapshot_history:
        How many settled snapshot versions the streaming service
        retains per graph for time-travel (``as_of``) reads; older
        versions are evicted and raise ``VersionExpiredError``.
    service_max_subscriptions:
        Cap on standing patterns per streaming-service graph session
        (CLI: ``ua-gpnm serve --max-subscriptions``).
    service_push_notifications:
        Whether streaming-service settles push per-pattern match/top-k
        deltas to attached listeners (CLI: ``ua-gpnm serve
        --no-push`` disables).
    """

    datasets: tuple[str, ...] = field(default_factory=lambda: tuple(dataset_names()))
    dataset_scale: str = "quick"
    pattern_sizes: tuple[tuple[int, int], ...] = ((6, 6), (7, 7), (8, 8), (9, 9), (10, 10))
    delta_scales: tuple[tuple[int, int], ...] = ((6, 20), (7, 40), (8, 60), (9, 80), (10, 100))
    methods: tuple[str, ...] = METHOD_ORDER
    repetitions: int = 1
    seed: int = 2020
    coalesce_updates: bool = False
    coalesce_min_batch: int = DEFAULT_COALESCE_MIN_BATCH
    slen_backend: str = "sparse"
    dense_block_size: Optional[int] = None
    batch_plan: Optional[str] = "auto"
    telemetry_path: Optional[str] = None
    recalibrate_every: int = 0
    cost_model_path: Optional[str] = None
    service_deadline_seconds: float = 0.05
    service_max_buffer: int = 1024
    journal_dir: Optional[str] = None
    service_settle_retries: int = 2
    service_snapshot_history: int = 8
    service_max_subscriptions: int = 64
    service_push_notifications: bool = True

    def __post_init__(self) -> None:
        unknown = [m for m in self.methods if m not in METHOD_ORDER]
        if unknown:
            raise ValueError(f"unknown methods {unknown}; expected a subset of {METHOD_ORDER}")
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if self.slen_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown slen_backend {self.slen_backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.coalesce_min_batch < 0:
            raise ValueError("coalesce_min_batch must be non-negative")
        if self.dense_block_size is not None and self.dense_block_size < 1:
            raise ValueError("dense_block_size must be positive")
        if self.batch_plan is not None and self.batch_plan not in PLAN_CHOICES:
            raise ValueError(
                f"unknown batch_plan {self.batch_plan!r}; expected one of {PLAN_CHOICES}"
            )
        if self.recalibrate_every < 0:
            raise ValueError("recalibrate_every must be non-negative")
        if self.service_deadline_seconds < 0:
            raise ValueError("service_deadline_seconds must be non-negative")
        if self.service_max_buffer < 1:
            raise ValueError("service_max_buffer must be at least 1")
        if self.service_settle_retries < 0:
            raise ValueError("service_settle_retries must be non-negative")
        if self.service_snapshot_history < 1:
            raise ValueError("service_snapshot_history must be at least 1")
        if self.service_max_subscriptions < 1:
            raise ValueError("service_max_subscriptions must be at least 1")

    @property
    def number_of_cells(self) -> int:
        """Grid size excluding the method axis."""
        return (
            len(self.datasets)
            * len(self.pattern_sizes)
            * len(self.delta_scales)
            * self.repetitions
        )


def tiny_config() -> ExperimentConfig:
    """A single-cell grid for integration tests."""
    return ExperimentConfig(
        datasets=("email-EU-core",),
        pattern_sizes=((6, 6),),
        delta_scales=((4, 12),),
        repetitions=1,
    )


def quick_config() -> ExperimentConfig:
    """The default benchmark grid: every dataset, trimmed pattern / ΔG axes."""
    return ExperimentConfig(
        datasets=tuple(dataset_names()),
        pattern_sizes=((6, 6), (8, 8), (10, 10)),
        delta_scales=((6, 20), (8, 40), (10, 60)),
        repetitions=1,
    )


def full_config() -> ExperimentConfig:
    """The complete scaled grid (several minutes of runtime)."""
    return ExperimentConfig(
        datasets=tuple(dataset_names()),
        dataset_scale="quick",
        pattern_sizes=((6, 6), (7, 7), (8, 8), (9, 9), (10, 10)),
        delta_scales=((6, 20), (7, 40), (8, 60), (9, 80), (10, 100)),
        repetitions=2,
    )
