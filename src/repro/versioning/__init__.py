"""Red-green MVCC snapshots for the streaming service (ROADMAP item 1).

The package turns ``DataGraph.version`` plus the blocked dense SLen
layout (PR 5) into first-class multi-version concurrency control,
following the KBase delta-load idiom (SNIPPETS.md §3): the **writer**
settles the next version against its private state while **readers**
keep whatever version they pinned; publication is an atomic pointer
swap, never an in-place mutation.

Three pieces compose:

* :class:`~repro.versioning.handle.SnapshotHandle` — a refcounted pin
  on one published ``(graph, SLen, partition)`` triple.  The triple is
  frozen; the handle frees its payload when the last pin releases.
* :class:`~repro.versioning.store.VersionStore` — the bounded ring of
  retained versions (``--snapshot-history N``).  Pinning an evicted or
  unpublished version raises
  :class:`~repro.versioning.store.VersionExpiredError` — time-travel
  reads fail loudly instead of answering from the wrong version.
* :class:`~repro.versioning.history.GraphHistory` — KBase-style
  ``created``/``expired`` version stamps per node and edge, recorded
  as settles publish, so "what did the graph contain at version v?"
  is answerable even without the full snapshot payload.

Snapshots are cheap because ``SLenMatrix.fork()`` is block-granular
copy-on-write on the dense backend: publishing shares every unmodified
block with the live matrix, and the next settle copies only the blocks
it actually touches.
"""

from repro.versioning.handle import SnapshotHandle
from repro.versioning.history import GraphHistory
from repro.versioning.store import (
    DEFAULT_SNAPSHOT_HISTORY,
    VersionExpiredError,
    VersionStore,
)

__all__ = [
    "DEFAULT_SNAPSHOT_HISTORY",
    "GraphHistory",
    "SnapshotHandle",
    "VersionExpiredError",
    "VersionStore",
]
