"""Refcounted pins on published snapshot versions.

A :class:`SnapshotHandle` wraps one immutable snapshot object (the
service's ``GraphSnapshot``, or any object exposing ``version`` plus
the pinned state) and counts pins on it.  The publisher (a
:class:`~repro.versioning.store.VersionStore`) holds the first
reference; readers :meth:`~SnapshotHandle.acquire` on top and
:meth:`~SnapshotHandle.release` when done.  When the last reference
drops, the handle lets go of the snapshot payload so Python's own
refcounting frees the shared copy-on-write blocks that no newer
version still references — that *is* the snapshot garbage collector;
there is no separate sweep.
"""

from __future__ import annotations

import threading
from typing import Any, Optional


class SnapshotHandle:
    """A refcounted pin on one published snapshot.

    The wrapped ``snapshot`` is treated as frozen: handles only ever
    read it.  ``acquire``/``release`` are thread-safe (readers pin from
    their own threads while the writer publishes new versions), and the
    handle doubles as a context manager::

        with store.pin(version) as handle:
            distances = handle.slen
    """

    __slots__ = ("_snapshot", "_refs", "_lock", "_on_final_release")

    def __init__(
        self,
        snapshot: Any,
        on_final_release: Optional[Any] = None,
    ) -> None:
        """Wrap ``snapshot`` with an initial reference count of one."""
        self._snapshot = snapshot
        self._refs = 1
        self._lock = threading.Lock()
        self._on_final_release = on_final_release

    # ------------------------------------------------------------------
    # Pinned-state accessors
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> Any:
        """The pinned snapshot object (raises once fully released)."""
        snapshot = self._snapshot
        if snapshot is None:
            raise RuntimeError("snapshot handle has been released")
        return snapshot

    @property
    def version(self) -> int:
        """The pinned version number."""
        return self.snapshot.version

    @property
    def data(self) -> Any:
        """The pinned data graph."""
        return self.snapshot.data

    @property
    def slen(self) -> Any:
        """The pinned ``SLen`` matrix (a copy-on-write fork)."""
        return self.snapshot.slen

    @property
    def result(self) -> Any:
        """The pinned match result."""
        return self.snapshot.result

    @property
    def pattern(self) -> Any:
        """The pinned pattern graph."""
        return self.snapshot.pattern

    @property
    def partition(self) -> Any:
        """The pinned label partition (``None`` when not maintained)."""
        return getattr(self.snapshot, "partition", None)

    # ------------------------------------------------------------------
    # Refcounting
    # ------------------------------------------------------------------
    @property
    def refcount(self) -> int:
        """Current number of pins (0 once fully released)."""
        with self._lock:
            return self._refs

    @property
    def pinned(self) -> bool:
        """Whether at least one pin is still held."""
        return self.refcount > 0

    def acquire(self) -> "SnapshotHandle":
        """Add a pin and return ``self`` (chainable)."""
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("cannot acquire a fully released snapshot handle")
            self._refs += 1
        return self

    def release(self) -> bool:
        """Drop one pin; returns ``True`` when this was the last one.

        The final release drops the payload reference (freeing any
        copy-on-write blocks only this version still shared) and fires
        the ``on_final_release`` callback, if any.  Releasing an
        already-dead handle is an error — it means a double free.
        """
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("snapshot handle released more times than acquired")
            self._refs -= 1
            final = self._refs == 0
            if final:
                self._snapshot = None
                callback = self._on_final_release
                self._on_final_release = None
        if final and callback is not None:
            callback(self)
        return final

    def __enter__(self) -> "SnapshotHandle":
        """Context-manager entry: the handle itself (already pinned)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release this pin."""
        self.release()

    def __repr__(self) -> str:
        """Debugging representation with version and refcount."""
        snapshot = self._snapshot
        if snapshot is None:
            return "SnapshotHandle(released)"
        return f"SnapshotHandle(version={snapshot.version}, refs={self._refs})"
