"""The bounded ring of retained snapshot versions.

A :class:`VersionStore` is the red-green switchboard: the writer
publishes each settled version into it, readers pin whatever retained
version they need (``None`` = latest), and the ring keeps the newest
``history`` versions — older handles lose the store's reference and are
freed as soon as their last reader releases.  Requests for versions the
ring no longer (or does not yet) hold raise
:class:`VersionExpiredError`, never a stale or wrong answer.

The store duck-types its payload (anything with a ``version``); the
streaming service publishes pattern-aware
:class:`~repro.service.service.GraphSnapshot` objects, so a pinned
version carries *every* subscription's match state along with the
graph and SLen — time-travel reads are pattern-addressed for free.
Re-publishing at the latest version replaces it in place, which is how
subscribe/unsubscribe and quarantine rebuilds amend the published
state without minting a settle version.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional

from repro.versioning.handle import SnapshotHandle

#: Default number of retained versions (``--snapshot-history``): deep
#: enough for stragglers reading a few settles behind the writer,
#: shallow enough that time travel never holds more than a handful of
#: copy-on-write deltas alive.
DEFAULT_SNAPSHOT_HISTORY: int = 8


class VersionExpiredError(LookupError):
    """A time-travel read named a version outside the retained window."""

    def __init__(self, version: int, message: str) -> None:
        """Record the requested ``version`` alongside the reason."""
        super().__init__(message)
        self.version = version


class VersionStore:
    """Retains the newest ``history`` published snapshot versions.

    Thread-safe: the service's event loop publishes while reader
    threads pin.  Publication must be monotone in ``version``; the one
    exception is *re*-publishing the current latest version, which
    replaces it in place (the settle-failure path rebuilds the same
    version after a rollback).
    """

    def __init__(self, history: int = DEFAULT_SNAPSHOT_HISTORY) -> None:
        """Create an empty store retaining ``history`` versions (≥ 1)."""
        if history < 1:
            raise ValueError("snapshot history must retain at least one version")
        self.history = int(history)
        self._lock = threading.Lock()
        self._handles: "OrderedDict[int, SnapshotHandle]" = OrderedDict()
        self._evicted_below: Optional[int] = None

    # ------------------------------------------------------------------
    # Publication (writer side)
    # ------------------------------------------------------------------
    def publish(self, snapshot: Any) -> SnapshotHandle:
        """Publish ``snapshot`` (an object with a ``version``) as a handle.

        Evicts beyond the retention window; eviction drops only the
        store's own pin, so handles readers still hold stay alive until
        they release.  Returns the new handle (the store's reference —
        callers wanting an independent pin must ``acquire`` it).
        """
        version = int(snapshot.version)
        evicted: list[SnapshotHandle] = []
        with self._lock:
            if self._handles:
                latest = next(reversed(self._handles))
                if version < latest:
                    raise ValueError(
                        f"cannot publish version {version} after version {latest}"
                    )
                if version == latest:
                    evicted.append(self._handles.pop(latest))
            handle = SnapshotHandle(snapshot)
            self._handles[version] = handle
            while len(self._handles) > self.history:
                oldest, old_handle = self._handles.popitem(last=False)
                self._evicted_below = oldest + 1
                evicted.append(old_handle)
        for old_handle in evicted:
            old_handle.release()
        return handle

    # ------------------------------------------------------------------
    # Reads (reader side)
    # ------------------------------------------------------------------
    def _lookup(self, version: Optional[int]) -> SnapshotHandle:
        """Resolve ``version`` to a retained handle; caller holds the lock."""
        if not self._handles:
            raise VersionExpiredError(
                -1 if version is None else int(version),
                "no snapshot has been published yet",
            )
        if version is None:
            return next(reversed(self._handles.values()))
        version = int(version)
        handle = self._handles.get(version)
        if handle is not None:
            return handle
        latest = next(reversed(self._handles))
        oldest = next(iter(self._handles))
        if version > latest:
            reason = f"version {version} has not been published (latest is {latest})"
        elif version < oldest:
            reason = (
                f"version {version} was evicted from the snapshot history "
                f"(retained: {oldest}..{latest}, history={self.history})"
            )
        else:
            reason = f"version {version} is not retained"
        raise VersionExpiredError(version, reason)

    def get(self, version: Optional[int] = None) -> SnapshotHandle:
        """The retained handle for ``version`` (``None`` = latest).

        Does not change the refcount — use :meth:`pin` to hold the
        version across statements.  Raises :class:`VersionExpiredError`
        for evicted, unpublished, or unknown versions.
        """
        with self._lock:
            return self._lookup(version)

    def pin(self, version: Optional[int] = None) -> SnapshotHandle:
        """Acquire and return the handle for ``version`` (``None`` = latest).

        Acquisition happens under the store lock, so a concurrent
        eviction cannot free the version between lookup and pin.
        """
        with self._lock:
            return self._lookup(version).acquire()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def latest_version(self) -> Optional[int]:
        """Newest retained version, or ``None`` before first publish."""
        with self._lock:
            if not self._handles:
                return None
            return next(reversed(self._handles))

    def versions(self) -> tuple[int, ...]:
        """The retained versions, oldest first."""
        with self._lock:
            return tuple(self._handles)

    def __len__(self) -> int:
        """Number of retained versions."""
        with self._lock:
            return len(self._handles)

    def __contains__(self, version: object) -> bool:
        """Whether ``version`` is currently retained."""
        with self._lock:
            return version in self._handles

    def allocated_bytes(self) -> int:
        """Unique bytes held by the retained snapshots' SLen storage.

        Copy-on-write blocks shared by several retained versions are
        counted once (deduplicated by array identity), so this is the
        real marginal footprint of keeping the history — the number the
        CoW garbage-collection tests assert shrinks on eviction.
        Backends without block introspection contribute their reported
        ``allocated_bytes`` under the same identity dedup when they
        expose ``block_arrays``; otherwise they are skipped.
        """
        with self._lock:
            handles = list(self._handles.values())
        seen: set[int] = set()
        total = 0
        for handle in handles:
            slen = getattr(handle.snapshot, "slen", None)
            backend = getattr(slen, "backend", None)
            block_arrays = getattr(backend, "block_arrays", None)
            if block_arrays is None:
                continue
            for block in block_arrays():
                if id(block) not in seen:
                    seen.add(id(block))
                    total += block.nbytes
        return total
