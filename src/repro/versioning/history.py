"""KBase-style ``created``/``expired`` version stamps for time travel.

Every node and edge of a served graph carries a list of half-open
**lifetime intervals** ``[created, expired)`` in settle-version space
(``expired is None`` = still alive).  The service records one stamp
batch per settle, so "what did the graph contain at version ``v``?" is
answerable long after the full snapshot payload for ``v`` was evicted
from the :class:`~repro.versioning.store.VersionStore` — the stamps are
the bounded, replayable half of time travel, and they serialize into
the journal's compaction snapshot so recovery restores them.

An element is **alive at** ``v`` iff some interval has
``created <= v`` and (``expired is None`` or ``v < expired``).  A
delete-then-reinsert across settles yields two intervals; a create and
delete *within* one settled batch yields the empty interval
``[v, v)``, which is correctly alive at no version (versions stamp
post-settle states, never mid-batch ones).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable, Optional

from repro.graph.digraph import DataGraph
from repro.graph.updates import Update, UpdateKind

NodeId = Hashable
Edge = tuple[NodeId, NodeId]
Interval = list  # [created: int, expired: Optional[int]]


def _alive(intervals: list[Interval], version: int) -> bool:
    """Whether any interval covers ``version``."""
    for created, expired in intervals:
        if created <= version and (expired is None or version < expired):
            return True
    return False


class GraphHistory:
    """Lifetime stamps for one served graph's nodes and edges."""

    __slots__ = ("_nodes", "_edges", "_incident", "_latest")

    def __init__(self) -> None:
        """Create an empty history (no base observed yet)."""
        self._nodes: dict[NodeId, list[Interval]] = {}
        self._edges: dict[Edge, list[Interval]] = {}
        #: node -> alive edges touching it, for node-deletion expiry
        #: (a node deletion implicitly deletes its incident edges, and
        #: the :class:`~repro.graph.updates.NodeDeletion` payload is not
        #: required to enumerate them).
        self._incident: dict[NodeId, set[Edge]] = {}
        self._latest: int = -1

    # ------------------------------------------------------------------
    # Recording (writer side)
    # ------------------------------------------------------------------
    def observe_base(self, graph: DataGraph, version: int = 0) -> None:
        """Stamp every current element of ``graph`` as created at ``version``."""
        for node in graph.nodes():
            self._create_node(node, version)
        for source, target in graph.edges():
            self._create_edge((source, target), version)
        self._latest = max(self._latest, version)

    def record(self, updates: Iterable[Update], version: int) -> None:
        """Stamp one settled batch's ``updates`` at ``version``.

        Updates are stamped in batch order (the service applies deletes
        before inserts within a payload, so delete+insert reads as a
        reopened lifetime).
        """
        for update in updates:
            kind = update.kind
            if kind is UpdateKind.EDGE_INSERT:
                self._create_edge((update.source, update.target), version)
            elif kind is UpdateKind.EDGE_DELETE:
                self._expire_edge((update.source, update.target), version)
            elif kind is UpdateKind.NODE_INSERT:
                self._create_node(update.node, version)
                for edge in update.edges:
                    self._create_edge((edge[0], edge[1]), version)
            elif kind is UpdateKind.NODE_DELETE:
                # Expire the node's alive incident edges first — the
                # graph drops them implicitly with the node.
                for edge in tuple(self._incident.get(update.node, ())):
                    self._expire_edge(edge, version)
                self._expire_node(update.node, version)
        self._latest = max(self._latest, version)

    def _create_node(self, node: NodeId, version: int) -> None:
        self._nodes.setdefault(node, []).append([version, None])

    def _expire_node(self, node: NodeId, version: int) -> None:
        intervals = self._nodes.get(node, ())
        for interval in reversed(intervals):
            if interval[1] is None:
                interval[1] = version
                return

    def _create_edge(self, edge: Edge, version: int) -> None:
        self._edges.setdefault(edge, []).append([version, None])
        self._incident.setdefault(edge[0], set()).add(edge)
        self._incident.setdefault(edge[1], set()).add(edge)

    def _expire_edge(self, edge: Edge, version: int) -> None:
        intervals = self._edges.get(edge, ())
        for interval in reversed(intervals):
            if interval[1] is None:
                interval[1] = version
                break
        for endpoint in edge:
            alive = self._incident.get(endpoint)
            if alive is not None:
                alive.discard(edge)
                if not alive:
                    del self._incident[endpoint]

    # ------------------------------------------------------------------
    # Time-travel queries (reader side)
    # ------------------------------------------------------------------
    @property
    def latest_version(self) -> int:
        """Newest stamped version (``-1`` before any recording)."""
        return self._latest

    def node_alive(self, node: NodeId, version: int) -> bool:
        """Whether ``node`` existed in the graph at ``version``."""
        return _alive(self._nodes.get(node, ()), version)

    def edge_alive(self, source: NodeId, target: NodeId, version: int) -> bool:
        """Whether edge ``source -> target`` existed at ``version``."""
        return _alive(self._edges.get((source, target), ()), version)

    def nodes_as_of(self, version: int) -> set[NodeId]:
        """The node set the graph held at ``version``."""
        return {
            node
            for node, intervals in self._nodes.items()
            if _alive(intervals, version)
        }

    def edges_as_of(self, version: int) -> set[Edge]:
        """The edge set the graph held at ``version``."""
        return {
            edge
            for edge, intervals in self._edges.items()
            if _alive(intervals, version)
        }

    def node_intervals(self, node: NodeId) -> tuple[tuple[int, Optional[int]], ...]:
        """The recorded lifetime intervals of ``node`` (possibly empty)."""
        return tuple(
            (created, expired) for created, expired in self._nodes.get(node, ())
        )

    def edge_intervals(
        self, source: NodeId, target: NodeId
    ) -> tuple[tuple[int, Optional[int]], ...]:
        """The recorded lifetime intervals of an edge (possibly empty)."""
        return tuple(
            (created, expired)
            for created, expired in self._edges.get((source, target), ())
        )

    # ------------------------------------------------------------------
    # Maintenance / serialization
    # ------------------------------------------------------------------
    def prune(self, floor: int) -> None:
        """Drop intervals fully expired at or before version ``floor``.

        Bounds the stamp tables on churn-heavy streams once the version
        window below ``floor`` is no longer queryable anyway.
        """
        for table in (self._nodes, self._edges):
            dead = []
            for key, intervals in table.items():
                intervals[:] = [
                    interval
                    for interval in intervals
                    if interval[1] is None or interval[1] > floor
                ]
                if not intervals:
                    dead.append(key)
            for key in dead:
                del table[key]

    def to_doc(self) -> dict:
        """A JSON-serializable document (see :meth:`from_doc`)."""
        return {
            "latest": self._latest,
            "nodes": [
                [node, [list(interval) for interval in intervals]]
                for node, intervals in self._nodes.items()
            ],
            "edges": [
                [source, target, [list(interval) for interval in intervals]]
                for (source, target), intervals in self._edges.items()
            ],
        }

    def canonical_doc(self) -> dict:
        """A *comparable* serialization: sorted by element, not insertion.

        :meth:`to_doc` preserves insertion order (cheap, round-trips
        exactly), but two histories that recorded the same lifetimes in
        a different arrival order serialize differently.  Differential
        verification (``repro.replay``) needs value equality, so this
        form sorts nodes, edges and each interval list by their string
        form.  Intervals keep their recorded order semantics — they are
        sorted by ``(created, expired)`` which is also chronological.
        """

        def _intervals(intervals: list[Interval]) -> list[list]:
            return sorted(
                ([created, expired] for created, expired in intervals),
                key=lambda interval: (interval[0], -1 if interval[1] is None else interval[1]),
            )

        return {
            "latest": self._latest,
            "nodes": [
                [str(node), _intervals(self._nodes[node])]
                for node in sorted(self._nodes, key=str)
            ],
            "edges": [
                [str(source), str(target), _intervals(self._edges[(source, target)])]
                for source, target in sorted(
                    self._edges, key=lambda edge: (str(edge[0]), str(edge[1]))
                )
            ],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "GraphHistory":
        """Rebuild a history from :meth:`to_doc` output (journal recovery)."""
        history = cls()
        history._latest = int(doc.get("latest", -1))
        for node, intervals in doc.get("nodes", ()):
            history._nodes[node] = [
                [int(created), None if expired is None else int(expired)]
                for created, expired in intervals
            ]
        for source, target, intervals in doc.get("edges", ()):
            edge = (source, target)
            history._edges[edge] = [
                [int(created), None if expired is None else int(expired)]
                for created, expired in intervals
            ]
            if any(expired is None for _, expired in history._edges[edge]):
                history._incident.setdefault(source, set()).add(edge)
                history._incident.setdefault(target, set()).add(edge)
        return history
