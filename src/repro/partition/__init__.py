"""Label-based graph partition (Section V).

The paper partitions the data graph by node label (people with the same
role tend to connect to each other), records the cross-partition edges in
the partition of their source node, and defines *inner* / *outer bridge
nodes* (Definitions 1 and 2).  On top of the partition it computes the
``SLen`` matrix partition-by-partition (Algorithms 4 and 5), which is the
difference between UA-GPNM and UA-GPNM-NoPar.

This package provides:

* :class:`~repro.partition.label_partition.LabelPartition` — the partition
  itself, with bridge-node bookkeeping and a quotient graph over
  partitions;
* :func:`~repro.partition.partitioned_spl.build_slen_partitioned` — an
  exact partition-aware all-pairs construction (condensation of the
  quotient graph, intra-partition BFS, cross-partition composition through
  bridge edges);
* :func:`~repro.partition.partitioned_spl.coalesce_slen_partitioned` —
  the partitioned-coalesced batch maintenance strategy (a coalesced pass
  whose deletion settle routes row-heavy sources through the partition);
* :func:`~repro.partition.partitioned_spl.paper_subprocess_1` /
  :func:`~repro.partition.partitioned_spl.paper_subprocess_2` — literal
  transcriptions of Algorithms 4 and 5, used to reproduce the worked
  Examples 14 and 15 (Tables VIII and IX).
"""

from repro.partition.label_partition import LabelPartition, Partition
from repro.partition.partitioned_spl import (
    build_slen_partitioned,
    coalesce_slen_partitioned,
    paper_subprocess_1,
    paper_subprocess_2,
    partitioned_recompute_rows,
)

__all__ = [
    "LabelPartition",
    "Partition",
    "build_slen_partitioned",
    "coalesce_slen_partitioned",
    "partitioned_recompute_rows",
    "paper_subprocess_1",
    "paper_subprocess_2",
]
