"""Label-based partition of a data graph with bridge-node bookkeeping.

Following Section V-A:

* each partition groups the nodes sharing one (primary) label, together
  with the edges between them;
* a **cross-partition edge** is recorded in the partition of its *source*
  node;
* an **inner bridge node** of partition ``Pi`` is a node of ``Pi`` with an
  out-edge leaving the partition (Definition 1);
* an **outer bridge node** of ``Pi`` is a node outside ``Pi`` that is the
  target of such an edge (Definition 2).

The partition also exposes the *quotient graph* (one node per partition,
an edge ``Pi -> Pj`` when a cross edge goes from ``Pi`` to ``Pj``), which
the exact partitioned shortest-path builder condenses into strongly
connected components.

The partition is **incrementally maintainable**: :meth:`LabelPartition.
apply_update` mirrors one data update (node/edge insertion/deletion) on
the partition in time proportional to the touched partitions instead of
the O(V + E) of a full :meth:`~LabelPartition.from_graph` rebuild.  That
is what lets UA-GPNM cache one partition across update batches
(invalidated on :attr:`repro.graph.digraph.DataGraph.version` changes)
so the partitioned-coalesced maintenance route stops paying a full
partition rebuild per batch.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, field

from repro.graph.digraph import DataGraph
from repro.graph.errors import MissingNodeError, UpdateError
from repro.graph.updates import GraphKind, Update, UpdateKind

NodeId = Hashable


@dataclass(frozen=True)
class Partition:
    """One label partition ``Pi``.

    Attributes
    ----------
    label:
        The label shared by the partition's nodes.
    nodes:
        The nodes of the partition.
    intra_edges:
        Edges whose both endpoints are in the partition.
    cross_edges:
        Edges recorded in this partition (source inside, target outside).
    """

    label: str
    nodes: frozenset[NodeId]
    intra_edges: frozenset[tuple[NodeId, NodeId]]
    cross_edges: frozenset[tuple[NodeId, NodeId]] = field(default=frozenset())

    @property
    def inner_bridge_nodes(self) -> frozenset[NodeId]:
        """``IB(Pi)`` — sources of cross edges."""
        return frozenset(source for source, _target in self.cross_edges)

    @property
    def outer_bridge_nodes(self) -> frozenset[NodeId]:
        """``OB(Pi)`` — targets of cross edges (they live in other partitions)."""
        return frozenset(target for _source, target in self.cross_edges)

    @property
    def size(self) -> int:
        """Number of nodes in the partition."""
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes


class LabelPartition:
    """The full label-based partition of a data graph.

    Examples
    --------
    >>> g = DataGraph({"SE1": "SE", "TE1": "TE"}, [("SE1", "TE1")])
    >>> partition = LabelPartition.from_graph(g)
    >>> sorted(partition.labels())
    ['SE', 'TE']
    >>> partition.partition_of("SE1").label
    'SE'
    """

    # The authoritative state lives in mutable per-label sets so the
    # incremental mutators cost O(1) per edge edit (node removal is
    # O(degree), through the incident-edge indexes); the frozen
    # Partition objects the lookup API hands out are lazily built
    # views, cached per label and invalidated by any mutation of that
    # label.
    __slots__ = (
        "_nodes",
        "_intra",
        "_cross",
        "_node_to_label",
        "_cross_by_target",
        "_cross_by_source",
        "_intra_by_node",
        "_views",
    )

    def __init__(self, partitions: dict[str, Partition]) -> None:
        self._nodes: dict[str, set[NodeId]] = {}
        self._intra: dict[str, set[tuple[NodeId, NodeId]]] = {}
        self._cross: dict[str, set[tuple[NodeId, NodeId]]] = {}
        self._views: dict[str, Partition] = {}
        self._node_to_label: dict[NodeId, str] = {}
        #: Reverse index of cross edges by *target* node, so removing a
        #: node can drop its incoming cross edges without scanning every
        #: partition (the edges themselves live in the source partition).
        self._cross_by_target: dict[NodeId, set[tuple[NodeId, NodeId]]] = {}
        #: ...and by *source* node, so removing a node can drop its
        #: outgoing cross edges without scanning its partition's set.
        self._cross_by_source: dict[NodeId, set[tuple[NodeId, NodeId]]] = {}
        #: Intra edges indexed by incident node (either endpoint), so
        #: removing a node costs O(degree), not O(partition edges).
        self._intra_by_node: dict[NodeId, set[tuple[NodeId, NodeId]]] = {}
        for label, partition in partitions.items():
            self._nodes[label] = set(partition.nodes)
            self._intra[label] = set(partition.intra_edges)
            self._cross[label] = set(partition.cross_edges)
            for node in partition.nodes:
                self._node_to_label[node] = label
            for edge in partition.cross_edges:
                self._cross_by_target.setdefault(edge[1], set()).add(edge)
                self._cross_by_source.setdefault(edge[0], set()).add(edge)
            for edge in partition.intra_edges:
                self._intra_by_node.setdefault(edge[0], set()).add(edge)
                self._intra_by_node.setdefault(edge[1], set()).add(edge)

    @classmethod
    def from_graph(cls, graph: DataGraph) -> "LabelPartition":
        """Partition ``graph`` by primary node label."""
        nodes_by_label: dict[str, set[NodeId]] = {}
        for node in graph.nodes():
            nodes_by_label.setdefault(graph.primary_label(node), set()).add(node)
        intra: dict[str, set[tuple[NodeId, NodeId]]] = {label: set() for label in nodes_by_label}
        cross: dict[str, set[tuple[NodeId, NodeId]]] = {label: set() for label in nodes_by_label}
        for source, target in graph.edges():
            source_label = graph.primary_label(source)
            target_label = graph.primary_label(target)
            if source_label == target_label:
                intra[source_label].add((source, target))
            else:
                cross[source_label].add((source, target))
        partitions = {
            label: Partition(
                label=label,
                nodes=frozenset(nodes),
                intra_edges=frozenset(intra[label]),
                cross_edges=frozenset(cross[label]),
            )
            for label, nodes in nodes_by_label.items()
        }
        return cls(partitions)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def labels(self) -> frozenset[str]:
        """All partition labels."""
        return frozenset(self._nodes)

    def partitions(self) -> Iterator[Partition]:
        """Iterate over the partitions."""
        return iter([self.partition(label) for label in self._nodes])

    def partition(self, label: str) -> Partition:
        """Return the (immutable view of the) partition of ``label``."""
        view = self._views.get(label)
        if view is not None:
            return view
        if label not in self._nodes:
            raise KeyError(f"no partition for label {label!r}")
        view = Partition(
            label=label,
            nodes=frozenset(self._nodes[label]),
            intra_edges=frozenset(self._intra[label]),
            cross_edges=frozenset(self._cross[label]),
        )
        self._views[label] = view
        return view

    def partition_of(self, node: NodeId) -> Partition:
        """Return the partition the node belongs to."""
        try:
            return self.partition(self._node_to_label[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def label_of(self, node: NodeId) -> str:
        """Return the partition label of ``node``."""
        try:
            return self._node_to_label[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def inner_bridge_nodes(self, label: str) -> frozenset[NodeId]:
        """``IB(P_label)``."""
        return self.partition(label).inner_bridge_nodes

    def outer_bridge_nodes(self, label: str) -> frozenset[NodeId]:
        """``OB(P_label)``."""
        return self.partition(label).outer_bridge_nodes

    @property
    def number_of_partitions(self) -> int:
        """How many label partitions exist."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Incremental maintenance (O(1) per edge edit, O(degree) per node
    # removal: the mutators touch the mutable sets and indexes and drop
    # the affected labels' cached views)
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: str) -> None:
        """Add an isolated node to the partition of ``label`` (creating it)."""
        if node in self._node_to_label:
            raise UpdateError(f"node {node!r} is already partitioned")
        if label not in self._nodes:
            self._nodes[label] = set()
            self._intra[label] = set()
            self._cross[label] = set()
        self._nodes[label].add(node)
        self._node_to_label[node] = label
        self._views.pop(label, None)

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every edge incident to it."""
        try:
            label = self._node_to_label.pop(node)
        except KeyError:
            raise MissingNodeError(node) from None
        self._nodes[label].discard(node)
        for edge in self._intra_by_node.pop(node, set()):
            self._intra[label].discard(edge)
            other = edge[1] if edge[0] == node else edge[0]
            bucket = self._intra_by_node.get(other)
            if bucket is not None:
                bucket.discard(edge)
                if not bucket:
                    del self._intra_by_node[other]
        for edge in self._cross_by_source.pop(node, set()):
            self._cross[label].discard(edge)
            bucket = self._cross_by_target.get(edge[1])
            if bucket is not None:
                bucket.discard(edge)
                if not bucket:
                    del self._cross_by_target[edge[1]]
        # Incoming cross edges live in their source node's partition.
        for edge in self._cross_by_target.pop(node, set()):
            source_label = self._node_to_label[edge[0]]
            self._cross[source_label].discard(edge)
            bucket = self._cross_by_source.get(edge[0])
            if bucket is not None:
                bucket.discard(edge)
                if not bucket:
                    del self._cross_by_source[edge[0]]
            self._views.pop(source_label, None)
        if self._nodes[label]:
            self._views.pop(label, None)
        else:
            # from_graph never materialises empty partitions; match it.
            del self._nodes[label]
            del self._intra[label]
            del self._cross[label]
            self._views.pop(label, None)

    def add_edge(self, source: NodeId, target: NodeId) -> None:
        """Add the directed edge ``source -> target`` (both nodes known)."""
        for endpoint in (source, target):
            if endpoint not in self._node_to_label:
                raise MissingNodeError(endpoint)
        source_label = self._node_to_label[source]
        edge = (source, target)
        if source_label == self._node_to_label[target]:
            self._intra[source_label].add(edge)
            self._intra_by_node.setdefault(source, set()).add(edge)
            self._intra_by_node.setdefault(target, set()).add(edge)
        else:
            self._cross[source_label].add(edge)
            self._cross_by_target.setdefault(target, set()).add(edge)
            self._cross_by_source.setdefault(source, set()).add(edge)
        self._views.pop(source_label, None)

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove the directed edge ``source -> target`` (absent is a no-op)."""
        if source not in self._node_to_label:
            raise MissingNodeError(source)
        source_label = self._node_to_label[source]
        edge = (source, target)
        if edge in self._intra[source_label]:
            self._intra[source_label].discard(edge)
            for endpoint in (source, target):
                bucket = self._intra_by_node.get(endpoint)
                if bucket is not None:
                    bucket.discard(edge)
                    if not bucket:
                        del self._intra_by_node[endpoint]
        elif edge in self._cross[source_label]:
            self._cross[source_label].discard(edge)
            bucket = self._cross_by_target.get(target)
            if bucket is not None:
                bucket.discard(edge)
                if not bucket:
                    del self._cross_by_target[target]
            bucket = self._cross_by_source.get(source)
            if bucket is not None:
                bucket.discard(edge)
                if not bucket:
                    del self._cross_by_source[source]
        else:
            return
        self._views.pop(source_label, None)

    def apply_update(self, update: Update) -> None:
        """Mirror one *data-graph* update on the partition.

        Equivalent to rebuilding from the mutated graph, but in time
        proportional to the touched partitions.  Updates must be applied
        in an order that is valid for the graph itself (the compiler's
        canonical order qualifies).
        """
        if update.graph is not GraphKind.DATA:
            raise UpdateError(
                f"the label partition only mirrors data-graph updates, got {update!r}"
            )
        kind = update.kind
        if kind is UpdateKind.EDGE_INSERT:
            self.add_edge(update.source, update.target)
        elif kind is UpdateKind.EDGE_DELETE:
            self.remove_edge(update.source, update.target)
        elif kind is UpdateKind.NODE_INSERT:
            if not update.labels:
                raise UpdateError(f"{update!r} carries no label; cannot partition it")
            self.add_node(update.node, update.labels[0])
            for edge in update.edges:
                self.add_edge(edge[0], edge[1])
        elif kind is UpdateKind.NODE_DELETE:
            self.remove_node(update.node)
        else:  # pragma: no cover - exhaustive over UpdateKind
            raise UpdateError(f"unsupported update kind {kind!r}")

    def apply_updates(self, updates: Iterable[Update]) -> None:
        """Apply every update of ``updates`` in order."""
        for update in updates:
            self.apply_update(update)

    def copy(self) -> "LabelPartition":
        """An independent copy."""
        clone = LabelPartition({})
        clone._nodes = {label: set(nodes) for label, nodes in self._nodes.items()}
        clone._intra = {label: set(edges) for label, edges in self._intra.items()}
        clone._cross = {label: set(edges) for label, edges in self._cross.items()}
        clone._node_to_label = dict(self._node_to_label)
        clone._cross_by_target = {
            node: set(edges) for node, edges in self._cross_by_target.items()
        }
        clone._intra_by_node = {
            node: set(edges) for node, edges in self._intra_by_node.items()
        }
        clone._cross_by_source = {
            node: set(edges) for node, edges in self._cross_by_source.items()
        }
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelPartition):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._intra == other._intra
            and self._cross == other._cross
        )

    #: Deliberately unhashable: the partition is mutable with value
    #: equality (like list/dict); hash a frozen ``partition(label)``
    #: view instead if a key is needed.
    __hash__ = None

    # ------------------------------------------------------------------
    # Quotient graph
    # ------------------------------------------------------------------
    def quotient_edges(self) -> frozenset[tuple[str, str]]:
        """Edges of the quotient graph (``Pi -> Pj`` when a cross edge exists)."""
        edges: set[tuple[str, str]] = set()
        for label, cross in self._cross.items():
            for _source, target in cross:
                edges.add((label, self._node_to_label[target]))
        return frozenset(edges)

    def quotient_successors(self, label: str) -> frozenset[str]:
        """Partitions directly reachable from ``label`` via a cross edge."""
        if label not in self._cross:
            raise KeyError(f"no partition for label {label!r}")
        return frozenset(
            self._node_to_label[target] for _source, target in self._cross[label]
        )

    def reachable_labels(self, label: str) -> frozenset[str]:
        """Partitions reachable from ``label`` in the quotient graph (incl. itself)."""
        seen = {label}
        stack = [label]
        while stack:
            current = stack.pop()
            for successor in self.quotient_successors(current):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"LabelPartition(partitions={self.number_of_partitions}, "
            f"nodes={len(self._node_to_label)})"
        )
