"""Label-based partition of a data graph with bridge-node bookkeeping.

Following Section V-A:

* each partition groups the nodes sharing one (primary) label, together
  with the edges between them;
* a **cross-partition edge** is recorded in the partition of its *source*
  node;
* an **inner bridge node** of partition ``Pi`` is a node of ``Pi`` with an
  out-edge leaving the partition (Definition 1);
* an **outer bridge node** of ``Pi`` is a node outside ``Pi`` that is the
  target of such an edge (Definition 2).

The partition also exposes the *quotient graph* (one node per partition,
an edge ``Pi -> Pj`` when a cross edge goes from ``Pi`` to ``Pj``), which
the exact partitioned shortest-path builder condenses into strongly
connected components.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field

from repro.graph.digraph import DataGraph
from repro.graph.errors import MissingNodeError

NodeId = Hashable


@dataclass(frozen=True)
class Partition:
    """One label partition ``Pi``.

    Attributes
    ----------
    label:
        The label shared by the partition's nodes.
    nodes:
        The nodes of the partition.
    intra_edges:
        Edges whose both endpoints are in the partition.
    cross_edges:
        Edges recorded in this partition (source inside, target outside).
    """

    label: str
    nodes: frozenset[NodeId]
    intra_edges: frozenset[tuple[NodeId, NodeId]]
    cross_edges: frozenset[tuple[NodeId, NodeId]] = field(default=frozenset())

    @property
    def inner_bridge_nodes(self) -> frozenset[NodeId]:
        """``IB(Pi)`` — sources of cross edges."""
        return frozenset(source for source, _target in self.cross_edges)

    @property
    def outer_bridge_nodes(self) -> frozenset[NodeId]:
        """``OB(Pi)`` — targets of cross edges (they live in other partitions)."""
        return frozenset(target for _source, target in self.cross_edges)

    @property
    def size(self) -> int:
        """Number of nodes in the partition."""
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes


class LabelPartition:
    """The full label-based partition of a data graph.

    Examples
    --------
    >>> g = DataGraph({"SE1": "SE", "TE1": "TE"}, [("SE1", "TE1")])
    >>> partition = LabelPartition.from_graph(g)
    >>> sorted(partition.labels())
    ['SE', 'TE']
    >>> partition.partition_of("SE1").label
    'SE'
    """

    __slots__ = ("_partitions", "_node_to_label")

    def __init__(self, partitions: dict[str, Partition]) -> None:
        self._partitions = dict(partitions)
        self._node_to_label: dict[NodeId, str] = {}
        for label, partition in self._partitions.items():
            for node in partition.nodes:
                self._node_to_label[node] = label

    @classmethod
    def from_graph(cls, graph: DataGraph) -> "LabelPartition":
        """Partition ``graph`` by primary node label."""
        nodes_by_label: dict[str, set[NodeId]] = {}
        for node in graph.nodes():
            nodes_by_label.setdefault(graph.primary_label(node), set()).add(node)
        intra: dict[str, set[tuple[NodeId, NodeId]]] = {label: set() for label in nodes_by_label}
        cross: dict[str, set[tuple[NodeId, NodeId]]] = {label: set() for label in nodes_by_label}
        for source, target in graph.edges():
            source_label = graph.primary_label(source)
            target_label = graph.primary_label(target)
            if source_label == target_label:
                intra[source_label].add((source, target))
            else:
                cross[source_label].add((source, target))
        partitions = {
            label: Partition(
                label=label,
                nodes=frozenset(nodes),
                intra_edges=frozenset(intra[label]),
                cross_edges=frozenset(cross[label]),
            )
            for label, nodes in nodes_by_label.items()
        }
        return cls(partitions)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def labels(self) -> frozenset[str]:
        """All partition labels."""
        return frozenset(self._partitions)

    def partitions(self) -> Iterator[Partition]:
        """Iterate over the partitions."""
        return iter(self._partitions.values())

    def partition(self, label: str) -> Partition:
        """Return the partition of ``label``."""
        try:
            return self._partitions[label]
        except KeyError:
            raise KeyError(f"no partition for label {label!r}") from None

    def partition_of(self, node: NodeId) -> Partition:
        """Return the partition the node belongs to."""
        try:
            return self._partitions[self._node_to_label[node]]
        except KeyError:
            raise MissingNodeError(node) from None

    def label_of(self, node: NodeId) -> str:
        """Return the partition label of ``node``."""
        try:
            return self._node_to_label[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def inner_bridge_nodes(self, label: str) -> frozenset[NodeId]:
        """``IB(P_label)``."""
        return self.partition(label).inner_bridge_nodes

    def outer_bridge_nodes(self, label: str) -> frozenset[NodeId]:
        """``OB(P_label)``."""
        return self.partition(label).outer_bridge_nodes

    @property
    def number_of_partitions(self) -> int:
        """How many label partitions exist."""
        return len(self._partitions)

    # ------------------------------------------------------------------
    # Quotient graph
    # ------------------------------------------------------------------
    def quotient_edges(self) -> frozenset[tuple[str, str]]:
        """Edges of the quotient graph (``Pi -> Pj`` when a cross edge exists)."""
        edges: set[tuple[str, str]] = set()
        for label, partition in self._partitions.items():
            for _source, target in partition.cross_edges:
                edges.add((label, self._node_to_label[target]))
        return frozenset(edges)

    def quotient_successors(self, label: str) -> frozenset[str]:
        """Partitions directly reachable from ``label`` via a cross edge."""
        return frozenset(
            self._node_to_label[target]
            for _source, target in self.partition(label).cross_edges
        )

    def reachable_labels(self, label: str) -> frozenset[str]:
        """Partitions reachable from ``label`` in the quotient graph (incl. itself)."""
        seen = {label}
        stack = [label]
        while stack:
            current = stack.pop()
            for successor in self.quotient_successors(current):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"LabelPartition(partitions={self.number_of_partitions}, "
            f"nodes={len(self._node_to_label)})"
        )
