"""Partition-based shortest path length computation (Section V-B).

Two implementations live here.

``build_slen_partitioned``
    The construction used by UA-GPNM.  It keeps the paper's structure —
    per-partition computation plus composition through bridge nodes — but
    is *exact* on every graph: partitions that depend on each other
    (Algorithm 4's "combine the partitions" case) are merged by condensing
    the quotient graph into strongly connected components, intra-component
    distances are computed by BFS restricted to the component, and
    cross-component distances are composed through cross edges in reverse
    topological order.  Any directed path leaves a condensed component at
    most once, so the composition is exact.

``paper_subprocess_1`` / ``paper_subprocess_2``
    Literal transcriptions of Algorithms 4 and 5.  They reproduce the
    worked Examples 14 and 15 (Tables VIII and IX) and are exact on graphs
    whose quotient graph is acyclic after the pairwise combination step —
    the situation the paper's examples depict — but they are not used by
    the main algorithms, which rely on the exact builder above.

``coalesce_slen_partitioned``
    The **partitioned-coalesced** maintenance strategy: a coalesced batch
    pass (:func:`repro.batching.coalesce.coalesce_slen`) whose
    deletion-phase settle routes row-heavy affected sources through the
    label partition (``partitioned_recompute_rows`` against the
    deletions-only graph) instead of per-source/per-target Dijkstras —
    UA-GPNM's partition advantage finally applied to coalesced batches.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Optional

from repro.batching.coalesce import CoalescedMaintenance, coalesce_slen
from repro.graph.digraph import DataGraph
from repro.graph.updates import Update
from repro.partition.label_partition import LabelPartition
from repro.spl.matrix import INF, SLenMatrix
from repro.spl.sssp import bfs_lengths

NodeId = Hashable

#: The partitioned settle falls back to the backend settle when the
#: affected region is small relative to the suspects' finite rows —
#: below this fraction a targeted Dijkstra beats recomputing whole rows.
PARTITIONED_RECOMPUTE_FRACTION: float = 1.0 / 3.0


# ----------------------------------------------------------------------
# Exact partition-aware construction (used by UA-GPNM)
# ----------------------------------------------------------------------
def build_slen_partitioned(
    graph: DataGraph,
    partition: Optional[LabelPartition] = None,
    backend: str = "sparse",
    dense_block_size: Optional[int] = None,
) -> SLenMatrix:
    """Build the all-pairs ``SLen`` matrix using the label partition.

    Parameters
    ----------
    graph:
        The data graph.
    partition:
        A precomputed :class:`LabelPartition`; computed from ``graph``
        when omitted.
    backend / dense_block_size:
        Storage backend of the produced matrix and — when it resolves to
        dense — the blocked layout's block edge (``None`` = the default;
        see :meth:`SLenMatrix.from_rows`).

    Returns
    -------
    SLenMatrix
        Exactly the same matrix :meth:`SLenMatrix.from_graph` would
        produce, built partition by partition.
    """
    if partition is None:
        partition = LabelPartition.from_graph(graph)
    rows = _partitioned_rows(graph, partition, set(graph.nodes()), trusted=None)
    return SLenMatrix.from_rows(
        graph.nodes(), rows, backend=backend, dense_block_size=dense_block_size
    )


def partitioned_recompute_rows(
    graph: DataGraph,
    slen: SLenMatrix,
    sources: Iterable[NodeId],
    partition: Optional[LabelPartition] = None,
) -> dict[NodeId, dict[NodeId, int]]:
    """Recompute the rows of ``sources`` using the label partition.

    ``slen`` provides the rows of nodes *not* in ``sources``, which are
    trusted to still be correct (this is exactly the situation during
    incremental maintenance of an edge or node deletion: only the suspect
    sources can have stale rows).

    The computation is cost-aware: a suspect whose condensed quotient
    component has no outgoing cross edges only needs a BFS restricted to
    its own component; a suspect whose component's bridge fan-out is small
    relative to the graph is answered by intra-component BFS plus
    composition through the trusted downstream rows; any other suspect
    falls back to a plain whole-graph BFS, so the partitioned solver is
    never asymptotically worse than the unpartitioned one.
    """
    if partition is None:
        partition = LabelPartition.from_graph(graph)
    source_set = {source for source in sources if graph.has_node(source)}
    if not source_set:
        return {}

    components = _condense_quotient(partition)
    component_of_label: dict[str, _Component] = {}
    for component in components:
        for label in component.labels:
            component_of_label[label] = component

    graph_cost = graph.number_of_nodes + graph.number_of_edges
    rows: dict[NodeId, dict[NodeId, int]] = {}
    # Order suspects so that downstream components are processed first;
    # composition for upstream suspects can then reuse freshly recomputed
    # rows where needed.
    order = _topological_order(components)
    position_of = {id(component): position for position, component in enumerate(order)}
    for source in sorted(
        source_set,
        key=lambda node: -position_of[id(component_of_label[partition.label_of(node)])],
    ):
        component = component_of_label[partition.label_of(source)]
        member_nodes: set[NodeId] = set()
        for label in component.labels:
            member_nodes |= set(partition.partition(label).nodes)
        cross_edges = [
            (edge_source, edge_target)
            for label in component.labels
            for edge_source, edge_target in partition.partition(label).cross_edges
            if edge_target not in member_nodes
        ]
        if not cross_edges:
            # Sink component: the whole reachable set lies inside it.
            rows[source] = _component_bfs(graph, source, member_nodes)
            continue
        bridge_targets = {edge_target for _edge_source, edge_target in cross_edges}
        composition_cost = len(member_nodes) + sum(
            len(slen.row_view(target)) if target in slen.nodes() else 0
            for target in bridge_targets
        )
        if composition_cost >= graph_cost:
            rows[source] = bfs_lengths(graph, source)
            continue
        row = _component_bfs(graph, source, member_nodes)
        for edge_source, edge_target in cross_edges:
            via = row.get(edge_source)
            if via is None:
                continue
            if edge_target in rows:
                far_row = rows[edge_target]
            elif edge_target in source_set or edge_target not in slen.nodes():
                far_row = bfs_lengths(graph, edge_target)
                rows.setdefault(edge_target, far_row)
            else:
                far_row = slen.row_view(edge_target)
            for far_target, far_dist in far_row.items():
                candidate = via + 1 + far_dist
                if candidate < row.get(far_target, INF):
                    row[far_target] = candidate
        rows[source] = row
    return {source: rows[source] for source in source_set}


def _partitioned_rows(
    graph: DataGraph,
    partition: LabelPartition,
    sources: set[NodeId],
    trusted,
) -> dict[NodeId, dict[NodeId, int]]:
    """Shared engine behind the partitioned build / recompute functions.

    ``trusted`` is ``None`` (compute everything needed) or a callable
    returning the known-correct row of a node, or ``None`` when the node's
    row must be computed.
    """
    components = _condense_quotient(partition)
    order = _topological_order(components)
    label_to_component = {}
    for component in components:
        for label in component.labels:
            label_to_component[label] = component

    finished: dict[NodeId, dict[NodeId, int]] = {}

    def row_of(node: NodeId) -> Optional[dict[NodeId, int]]:
        if node in finished:
            return finished[node]
        if trusted is not None:
            return trusted(node)
        return None

    requested: dict[NodeId, dict[NodeId, int]] = {}
    for component in reversed(order):
        member_nodes: set[NodeId] = set()
        for label in component.labels:
            member_nodes |= set(partition.partition(label).nodes)
        # With trusted rows available only the requested sources need new
        # rows; during a full build every member's row is needed because
        # upstream components compose with the rows of this component's
        # bridge targets.
        component_sources = member_nodes & sources if trusted is not None else member_nodes
        cross_edges: list[tuple[NodeId, NodeId]] = []
        for label in component.labels:
            for source, target in partition.partition(label).cross_edges:
                if target not in member_nodes:
                    cross_edges.append((source, target))
        for source in component_sources:
            row = _component_bfs(graph, source, member_nodes)
            for bridge_source, bridge_target in cross_edges:
                via = row.get(bridge_source)
                if via is None:
                    continue
                far_row = row_of(bridge_target)
                if far_row is None:
                    # Safety net: the bridge target's row is unknown (e.g. a
                    # node newly added to the graph); fall back to a plain BFS.
                    far_row = bfs_lengths(graph, bridge_target)
                    finished[bridge_target] = far_row
                for far_target, far_dist in far_row.items():
                    candidate = via + 1 + far_dist
                    if candidate < row.get(far_target, INF):
                        row[far_target] = candidate
            finished[source] = row
            if source in sources:
                requested[source] = row
    if trusted is None:
        return finished
    return requested


def _component_bfs(
    graph: DataGraph, source: NodeId, allowed: set[NodeId]
) -> dict[NodeId, int]:
    """BFS from ``source`` visiting only nodes inside ``allowed``."""
    distances = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbour in graph.successors_view(node):
            if neighbour in allowed and neighbour not in distances:
                distances[neighbour] = next_distance
                queue.append(neighbour)
    return distances


class _Component:
    """A strongly connected component of the quotient graph."""

    __slots__ = ("labels", "successors")

    def __init__(self, labels: frozenset[str]) -> None:
        self.labels = labels
        self.successors: set["_Component"] = set()


def _condense_quotient(partition: LabelPartition) -> list[_Component]:
    """Condense the quotient graph into strongly connected components."""
    labels = sorted(partition.labels())
    successors = {label: sorted(partition.quotient_successors(label)) for label in labels}
    component_of = _tarjan_scc(labels, successors)
    components: dict[int, _Component] = {}
    for label, component_id in component_of.items():
        if component_id not in components:
            components[component_id] = _Component(frozenset())
        components[component_id].labels = components[component_id].labels | {label}
    for label in labels:
        source_component = components[component_of[label]]
        for successor in successors[label]:
            target_component = components[component_of[successor]]
            if target_component is not source_component:
                source_component.successors.add(target_component)
    return list(components.values())


def _tarjan_scc(
    labels: Iterable[str], successors: dict[str, list[str]]
) -> dict[str, int]:
    """Iterative Tarjan SCC over the quotient graph; returns label -> component id."""
    index_counter = 0
    component_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    component_of: dict[str, int] = {}

    for root in labels:
        if root in indices:
            continue
        work = [(root, iter(successors[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = lowlinks[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(successors[child])))
                    advanced = True
                    break
                if on_stack.get(child, False):
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component_of[member] = component_counter
                    if member == node:
                        break
                component_counter += 1
    return component_of


def _topological_order(components: list[_Component]) -> list[_Component]:
    """Topological order of the condensed quotient DAG (sources first)."""
    in_degree = {id(component): 0 for component in components}
    by_id = {id(component): component for component in components}
    for component in components:
        for successor in component.successors:
            in_degree[id(successor)] += 1
    queue = deque(
        sorted(
            (component for component in components if in_degree[id(component)] == 0),
            key=lambda component: sorted(component.labels),
        )
    )
    order: list[_Component] = []
    while queue:
        component = queue.popleft()
        order.append(component)
        for successor in sorted(component.successors, key=lambda c: sorted(c.labels)):
            in_degree[id(successor)] -= 1
            if in_degree[id(successor)] == 0:
                queue.append(successor)
    if len(order) != len(by_id):
        raise RuntimeError("quotient condensation produced a cycle; this is a bug")
    return order


# ----------------------------------------------------------------------
# Partitioned-coalesced batch maintenance
# ----------------------------------------------------------------------
def coalesce_slen_partitioned(
    slen: SLenMatrix,
    graph_after: DataGraph,
    updates: Sequence[Update],
    partition: Optional[LabelPartition] = None,
    recompute_fraction: float = PARTITIONED_RECOMPUTE_FRACTION,
) -> CoalescedMaintenance:
    """Coalesced ``SLen`` maintenance with a partition-aware deletion settle.

    Drop-in replacement for :func:`repro.batching.coalesce.coalesce_slen`
    (same contract, bit-identical matrix and deltas): the only difference
    is *how* the deletion phase restores affected distances.  When the
    union of affected targets is large relative to the suspects' finite
    rows (at least ``recompute_fraction`` of it), every affected source's
    whole row is recomputed through the label partition —
    intra-component BFS plus composition through trusted bridge rows,
    against the deletions-only graph — which is the Section V advantage;
    below the threshold the backend settle is cheaper and is used
    unchanged.  ``partition`` must describe the deletions-only graph when
    given; it is derived from it when omitted.
    """

    def settle(
        graph_final: DataGraph,
        affected_by_source: Mapping[NodeId, set[NodeId]],
        skip_edges=frozenset(),
        skip_nodes=frozenset(),
    ) -> dict[NodeId, dict[NodeId, int]]:
        return _partitioned_settle(
            slen,
            graph_final,
            affected_by_source,
            skip_edges,
            skip_nodes,
            partition,
            recompute_fraction,
        )

    return coalesce_slen(slen, graph_after, updates, settle=settle)


def _partitioned_settle(
    slen: SLenMatrix,
    graph_after: DataGraph,
    affected_by_source: Mapping[NodeId, set[NodeId]],
    skip_edges,
    skip_nodes,
    partition: Optional[LabelPartition],
    recompute_fraction: float,
) -> dict[NodeId, dict[NodeId, int]]:
    """Settle affected sources through the partition (or fall back)."""
    if not affected_by_source:
        return {}
    universe = slen.nodes()
    total_affected = sum(len(targets) for targets in affected_by_source.values())
    total_row = sum(
        len(slen.row_view(source))
        for source in affected_by_source
        if source in universe
    )
    if total_affected < total_row * recompute_fraction:
        return slen.backend.settle_sources(
            graph_after, affected_by_source, skip_edges=skip_edges, skip_nodes=skip_nodes
        )
    graph_mid = _deletions_only_graph(graph_after, skip_edges, skip_nodes)
    if partition is None:
        partition = LabelPartition.from_graph(graph_mid)
    # All suspects are recomputed together so the composition never
    # trusts the stale row of a fellow suspect.
    rows = partitioned_recompute_rows(
        graph_mid, slen, affected_by_source.keys(), partition
    )
    results: dict[NodeId, dict[NodeId, int]] = {}
    for source, affected in affected_by_source.items():
        row = rows.get(source, {})
        results[source] = {
            target: row[target] for target in affected if target in row
        }
    return results


def _deletions_only_graph(graph_after, skip_edges, skip_nodes) -> DataGraph:
    """``graph_after`` minus the batch's insertions (the settle's view)."""
    mid = DataGraph()
    for node in graph_after.nodes():
        if node not in skip_nodes:
            mid.add_node(node, *graph_after.labels_of(node))
    for source, target in graph_after.edges():
        if (
            source in skip_nodes
            or target in skip_nodes
            or (source, target) in skip_edges
        ):
            continue
        mid.add_edge(source, target)
    return mid


# ----------------------------------------------------------------------
# Literal Algorithms 4 and 5 (worked examples of Section V-B)
# ----------------------------------------------------------------------
def paper_subprocess_1(
    graph: DataGraph, partition: LabelPartition, label: str
) -> dict[tuple[NodeId, NodeId], float]:
    """Algorithm 4: shortest path lengths between nodes of one partition.

    When the partition has outer bridge nodes whose own partition points
    back into this one, the two partitions are combined before running the
    BFS, exactly as the paper describes for partition ``P_SE`` in
    Example 14.
    """
    target_partition = partition.partition(label)
    allowed = set(target_partition.nodes)
    if target_partition.outer_bridge_nodes:
        for outer in target_partition.outer_bridge_nodes:
            outer_label = partition.label_of(outer)
            outer_partition = partition.partition(outer_label)
            if not outer_partition.outer_bridge_nodes:
                continue
            # "if one of the outer bridge nodes in Pj belongs to Pi: combine"
            if any(
                partition.label_of(other) == label
                for other in outer_partition.outer_bridge_nodes
            ):
                allowed |= set(outer_partition.nodes)
    result: dict[tuple[NodeId, NodeId], float] = {}
    for source in target_partition.nodes:
        row = _component_bfs(graph, source, allowed)
        for target in target_partition.nodes:
            result[(source, target)] = row.get(target, INF)
    return result


def paper_subprocess_2(
    graph: DataGraph,
    partition: LabelPartition,
    source_label: str,
    target_label: str,
) -> dict[tuple[NodeId, NodeId], float]:
    """Algorithm 5: shortest path lengths from one partition to another.

    Distances are composed through the bridge edges: for an inner bridge
    node ``a`` of the source partition with outer bridge node ``b`` in the
    target partition, ``SPD(a, b) = 1`` and every other pair goes through
    such a bridge, as in Example 15 (Table IX).
    """
    source_partition = partition.partition(source_label)
    target_partition = partition.partition(target_label)
    result: dict[tuple[NodeId, NodeId], float] = {
        (source, target): INF
        for source in source_partition.nodes
        for target in target_partition.nodes
    }
    if not source_partition.outer_bridge_nodes:
        return result
    intra_source = paper_subprocess_1(graph, partition, source_label)
    intra_target = paper_subprocess_1(graph, partition, target_label)
    bridges = [
        (inner, outer)
        for inner, outer in source_partition.cross_edges
        if partition.label_of(outer) == target_label
    ]
    for source in source_partition.nodes:
        for target in target_partition.nodes:
            best = INF
            for inner, outer in bridges:
                to_inner = intra_source.get((source, inner), INF)
                from_outer = intra_target.get((outer, target), INF)
                candidate = to_inner + 1 + from_outer
                if candidate < best:
                    best = candidate
            result[(source, target)] = best
    return result
