"""Graph substrate: data graphs, pattern graphs and the update model.

This package provides the two graph classes the paper operates on
(:class:`~repro.graph.digraph.DataGraph` and
:class:`~repro.graph.pattern.PatternGraph`), the update vocabulary of
Section III-C (edge/node insertions and deletions on either graph), and
simple text/JSON IO helpers.
"""

from repro.graph.digraph import DataGraph
from repro.graph.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    GraphError,
    InvalidBoundError,
    MissingEdgeError,
    MissingNodeError,
)
from repro.graph.pattern import STAR, PatternGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    Update,
    UpdateBatch,
    UpdateKind,
    apply_update,
    apply_updates,
    invert_update,
)

__all__ = [
    "DataGraph",
    "PatternGraph",
    "STAR",
    "GraphError",
    "MissingNodeError",
    "MissingEdgeError",
    "DuplicateNodeError",
    "DuplicateEdgeError",
    "InvalidBoundError",
    "GraphKind",
    "UpdateKind",
    "Update",
    "EdgeInsertion",
    "EdgeDeletion",
    "NodeInsertion",
    "NodeDeletion",
    "UpdateBatch",
    "apply_update",
    "apply_updates",
    "invert_update",
]
