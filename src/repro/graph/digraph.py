"""Directed, label-attributed data graph (the paper's ``GD``).

A :class:`DataGraph` is the graph being queried.  Per Section III-A each
node carries a set of labels (``fa``); in the paper's examples a single
job-title label per node is used, so the API treats the *first* label as
the primary one while still supporting multi-label nodes.

The implementation is a plain adjacency structure (dict of sets), with a
secondary label index so that ``nodes_with_label`` is O(1) per label.  It
deliberately avoids any third-party graph library: the shortest-path and
matching layers built on top only rely on this class.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

from repro.graph.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    MissingEdgeError,
    MissingNodeError,
)

NodeId = Hashable


class DataGraph:
    """A mutable directed graph whose nodes carry one or more labels.

    Parameters
    ----------
    nodes:
        Optional mapping ``node -> label`` or ``node -> iterable of labels``
        used to seed the graph.
    edges:
        Optional iterable of ``(source, target)`` pairs; referenced nodes
        must already appear in ``nodes``.

    Examples
    --------
    >>> g = DataGraph()
    >>> g.add_node("PM1", "PM")
    >>> g.add_node("SE1", "SE")
    >>> g.add_edge("PM1", "SE1")
    >>> g.has_edge("PM1", "SE1")
    True
    >>> sorted(g.nodes_with_label("SE"))
    ['SE1']
    """

    __slots__ = ("_succ", "_pred", "_labels", "_label_index", "_num_edges", "_version")

    def __init__(
        self,
        nodes: Optional[Mapping[NodeId, object]] = None,
        edges: Optional[Iterable[tuple[NodeId, NodeId]]] = None,
    ) -> None:
        self._succ: dict[NodeId, set[NodeId]] = {}
        self._pred: dict[NodeId, set[NodeId]] = {}
        self._labels: dict[NodeId, tuple[str, ...]] = {}
        self._label_index: dict[str, set[NodeId]] = {}
        self._num_edges = 0
        self._version = 0
        if nodes:
            for node, label in nodes.items():
                if isinstance(label, str):
                    self.add_node(node, label)
                else:
                    self.add_node(node, *label)
        if edges:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Node API
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, *labels: str) -> None:
        """Insert ``node`` carrying ``labels`` (at least one is required)."""
        if node in self._succ:
            raise DuplicateNodeError(node)
        if not labels:
            raise ValueError("a data-graph node needs at least one label")
        self._succ[node] = set()
        self._pred[node] = set()
        self._labels[node] = tuple(labels)
        self._version += 1
        for label in labels:
            self._label_index.setdefault(label, set()).add(node)

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every edge incident to it."""
        if node not in self._succ:
            raise MissingNodeError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        for label in self._labels[node]:
            bucket = self._label_index[label]
            bucket.discard(node)
            if not bucket:
                del self._label_index[label]
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]
        self._version += 1

    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._succ

    def labels_of(self, node: NodeId) -> tuple[str, ...]:
        """Return the label tuple ``fa(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def primary_label(self, node: NodeId) -> str:
        """Return the first (primary) label of ``node``."""
        return self.labels_of(node)[0]

    def has_label(self, node: NodeId, label: str) -> bool:
        """Return ``True`` if ``label`` is one of ``node``'s labels."""
        return label in self.labels_of(node)

    def nodes_with_label(self, label: str) -> frozenset[NodeId]:
        """Return the set of nodes carrying ``label`` (possibly empty)."""
        return frozenset(self._label_index.get(label, frozenset()))

    def labels(self) -> frozenset[str]:
        """Return every label present in the graph."""
        return frozenset(self._label_index)

    # ------------------------------------------------------------------
    # Edge API
    # ------------------------------------------------------------------
    def add_edge(self, source: NodeId, target: NodeId) -> None:
        """Insert the directed edge ``source -> target``."""
        if source not in self._succ:
            raise MissingNodeError(source)
        if target not in self._succ:
            raise MissingNodeError(target)
        if target in self._succ[source]:
            raise DuplicateEdgeError(source, target)
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._num_edges += 1
        self._version += 1

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove the directed edge ``source -> target``."""
        if source not in self._succ or target not in self._succ[source]:
            raise MissingEdgeError(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._num_edges -= 1
        self._version += 1

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """Return ``True`` if the edge ``source -> target`` exists."""
        return source in self._succ and target in self._succ[source]

    # ------------------------------------------------------------------
    # Traversal / inspection
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def successors(self, node: NodeId) -> frozenset[NodeId]:
        """Return the out-neighbours of ``node``."""
        try:
            return frozenset(self._succ[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def predecessors(self, node: NodeId) -> frozenset[NodeId]:
        """Return the in-neighbours of ``node``."""
        try:
            return frozenset(self._pred[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def successors_view(self, node: NodeId) -> set[NodeId]:
        """Return the *internal* out-neighbour set of ``node`` without copying.

        Callers must treat the result as read-only; this exists for hot
        traversal loops (BFS, incremental maintenance) where the frozenset
        copy of :meth:`successors` would dominate the runtime.
        """
        try:
            return self._succ[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def predecessors_view(self, node: NodeId) -> set[NodeId]:
        """Return the *internal* in-neighbour set of ``node`` without copying.

        Same read-only contract as :meth:`successors_view`.
        """
        try:
            return self._pred[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def out_degree(self, node: NodeId) -> int:
        """Return the number of out-edges of ``node``."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def in_degree(self, node: NodeId) -> int:
        """Return the number of in-edges of ``node``."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise MissingNodeError(node) from None

    @property
    def number_of_nodes(self) -> int:
        """``|VD|``."""
        return len(self._succ)

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every structural change.

        Lets derived structures (e.g. the dense ``SLen`` backend's CSR
        adjacency cache) key cached adjacency on ``(id(graph), version)``
        without any risk of serving stale neighbourhoods.
        """
        return self._version

    @property
    def number_of_edges(self) -> int:
        """``|ED|``."""
        return self._num_edges

    # ------------------------------------------------------------------
    # Copy / equality / debug
    # ------------------------------------------------------------------
    def copy(self) -> "DataGraph":
        """Return a deep copy (labels are immutable and shared)."""
        clone = DataGraph()
        clone._succ = {node: set(targets) for node, targets in self._succ.items()}
        clone._pred = {node: set(sources) for node, sources in self._pred.items()}
        clone._labels = dict(self._labels)
        clone._label_index = {
            label: set(nodes) for label, nodes in self._label_index.items()
        }
        clone._num_edges = self._num_edges
        clone._version = self._version
        return clone

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataGraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._succ == other._succ
        )

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("DataGraph is mutable and therefore unhashable")

    def __repr__(self) -> str:
        return (
            f"DataGraph(nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges}, labels={len(self._label_index)})"
        )
