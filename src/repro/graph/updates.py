"""Update model for pattern and data graphs (Section III-C).

The paper's update vocabulary is

* ``ΔG+_DE`` / ``ΔG-_DE`` — edge insertions / deletions in the data graph,
* ``ΔG+_DN`` / ``ΔG-_DN`` — node insertions / deletions in the data graph,
* ``ΔG+_PE`` / ``ΔG-_PE`` — edge insertions / deletions in the pattern graph,
* ``ΔG+_PN`` / ``ΔG-_PN`` — node insertions / deletions in the pattern graph.

Every update is a small frozen dataclass that knows how to apply itself to
its target graph and how to produce its inverse.  A :class:`UpdateBatch`
groups the updates occurring between two queries (the paper's ``ΔG``) and
offers the filtered views (pattern vs. data, insertions vs. deletions)
that the elimination detectors need.
"""

from __future__ import annotations

import enum
from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.pattern import Bound, PatternGraph, normalise_bound

NodeId = Hashable


class GraphKind(enum.Enum):
    """Which graph an update targets."""

    DATA = "data"
    PATTERN = "pattern"


class UpdateKind(enum.Enum):
    """The structural effect of an update."""

    EDGE_INSERT = "edge_insert"
    EDGE_DELETE = "edge_delete"
    NODE_INSERT = "node_insert"
    NODE_DELETE = "node_delete"


@dataclass(frozen=True)
class Update:
    """Base class for all updates; use the concrete subclasses."""

    graph: GraphKind

    @property
    def kind(self) -> UpdateKind:
        """The :class:`UpdateKind` of this update."""
        raise NotImplementedError

    @property
    def is_insertion(self) -> bool:
        """``True`` for edge/node insertions."""
        return self.kind in (UpdateKind.EDGE_INSERT, UpdateKind.NODE_INSERT)

    @property
    def is_deletion(self) -> bool:
        """``True`` for edge/node deletions."""
        return not self.is_insertion

    @property
    def is_edge_update(self) -> bool:
        """``True`` for edge insertions/deletions."""
        return self.kind in (UpdateKind.EDGE_INSERT, UpdateKind.EDGE_DELETE)

    def apply(self, target: Union[DataGraph, PatternGraph]) -> None:
        """Apply this update in place to ``target``."""
        raise NotImplementedError

    def inverse(self) -> "Update":
        """Return the update that undoes this one."""
        raise NotImplementedError


def _check_target(update: Update, target: Union[DataGraph, PatternGraph]) -> None:
    expects_pattern = update.graph is GraphKind.PATTERN
    if expects_pattern and not isinstance(target, PatternGraph):
        raise UpdateError(f"{update!r} targets the pattern graph, got {type(target).__name__}")
    if not expects_pattern and not isinstance(target, DataGraph):
        raise UpdateError(f"{update!r} targets the data graph, got {type(target).__name__}")


@dataclass(frozen=True)
class EdgeInsertion(Update):
    """Insert edge ``source -> target``; ``bound`` is required for pattern edges."""

    source: NodeId = None
    target: NodeId = None
    bound: Optional[Bound] = None

    def __post_init__(self) -> None:
        if self.graph is GraphKind.PATTERN:
            if self.bound is None:
                raise UpdateError("pattern-edge insertions require a bound")
            object.__setattr__(self, "bound", normalise_bound(self.bound))
        elif self.bound is not None:
            raise UpdateError("data-edge insertions do not take a bound")

    @property
    def kind(self) -> UpdateKind:
        return UpdateKind.EDGE_INSERT

    def apply(self, target: Union[DataGraph, PatternGraph]) -> None:
        _check_target(self, target)
        if isinstance(target, PatternGraph):
            target.add_edge(self.source, self.target, self.bound)
        else:
            target.add_edge(self.source, self.target)

    def inverse(self) -> "EdgeDeletion":
        return EdgeDeletion(self.graph, self.source, self.target, self.bound)


@dataclass(frozen=True)
class EdgeDeletion(Update):
    """Delete edge ``source -> target``.

    ``bound`` records the bound the edge carried (pattern edges only) so the
    deletion can be inverted; it is optional when applying.
    """

    source: NodeId = None
    target: NodeId = None
    bound: Optional[Bound] = None

    @property
    def kind(self) -> UpdateKind:
        return UpdateKind.EDGE_DELETE

    def apply(self, target: Union[DataGraph, PatternGraph]) -> None:
        _check_target(self, target)
        target.remove_edge(self.source, self.target)

    def inverse(self) -> EdgeInsertion:
        if self.graph is GraphKind.PATTERN and self.bound is None:
            raise UpdateError(
                "cannot invert a pattern-edge deletion without knowing its bound"
            )
        return EdgeInsertion(self.graph, self.source, self.target, self.bound)


@dataclass(frozen=True)
class NodeInsertion(Update):
    """Insert a node; ``labels`` carries ``fa``/``fv`` for the new node.

    ``edges`` optionally lists incident edges inserted together with the
    node (the common shape of a "new user joins and connects" update).
    Each entry is ``(source, target)`` for the data graph or
    ``(source, target, bound)`` for the pattern graph.
    """

    node: NodeId = None
    labels: tuple[str, ...] = ()
    edges: tuple[tuple, ...] = field(default=())

    def __post_init__(self) -> None:
        if isinstance(self.labels, str):
            object.__setattr__(self, "labels", (self.labels,))
        else:
            object.__setattr__(self, "labels", tuple(self.labels))
        if not self.labels:
            raise UpdateError("node insertions require at least one label")
        object.__setattr__(self, "edges", tuple(tuple(edge) for edge in self.edges))

    @property
    def kind(self) -> UpdateKind:
        return UpdateKind.NODE_INSERT

    def apply(self, target: Union[DataGraph, PatternGraph]) -> None:
        _check_target(self, target)
        if isinstance(target, PatternGraph):
            target.add_node(self.node, self.labels[0])
            for source, dest, bound in self.edges:
                target.add_edge(source, dest, bound)
        else:
            target.add_node(self.node, *self.labels)
            for source, dest in self.edges:
                target.add_edge(source, dest)

    def inverse(self) -> "NodeDeletion":
        return NodeDeletion(self.graph, self.node, self.labels, self.edges)


@dataclass(frozen=True)
class NodeDeletion(Update):
    """Delete a node (and implicitly all its incident edges).

    ``labels`` and ``edges`` record what the node looked like so the
    deletion can be inverted; they are optional when applying.
    """

    node: NodeId = None
    labels: tuple[str, ...] = ()
    edges: tuple[tuple, ...] = field(default=())

    def __post_init__(self) -> None:
        if isinstance(self.labels, str):
            object.__setattr__(self, "labels", (self.labels,))
        else:
            object.__setattr__(self, "labels", tuple(self.labels))
        object.__setattr__(self, "edges", tuple(tuple(edge) for edge in self.edges))

    @property
    def kind(self) -> UpdateKind:
        return UpdateKind.NODE_DELETE

    def apply(self, target: Union[DataGraph, PatternGraph]) -> None:
        _check_target(self, target)
        target.remove_node(self.node)

    def inverse(self) -> NodeInsertion:
        if not self.labels:
            raise UpdateError(
                "cannot invert a node deletion without knowing the node's labels"
            )
        return NodeInsertion(self.graph, self.node, self.labels, self.edges)


# ----------------------------------------------------------------------
# Convenience constructors mirroring the paper's ΔG notation
# ----------------------------------------------------------------------
def insert_data_edge(source: NodeId, target: NodeId) -> EdgeInsertion:
    """An update in ``ΔG+_DE``."""
    return EdgeInsertion(GraphKind.DATA, source, target)


def delete_data_edge(source: NodeId, target: NodeId) -> EdgeDeletion:
    """An update in ``ΔG-_DE``."""
    return EdgeDeletion(GraphKind.DATA, source, target)


def insert_pattern_edge(source: NodeId, target: NodeId, bound: Bound) -> EdgeInsertion:
    """An update in ``ΔG+_PE``."""
    return EdgeInsertion(GraphKind.PATTERN, source, target, bound)


def delete_pattern_edge(
    source: NodeId, target: NodeId, bound: Optional[Bound] = None
) -> EdgeDeletion:
    """An update in ``ΔG-_PE``."""
    return EdgeDeletion(GraphKind.PATTERN, source, target, bound)


def insert_data_node(
    node: NodeId, labels: Union[str, Iterable[str]], edges: Iterable[tuple] = ()
) -> NodeInsertion:
    """An update in ``ΔG+_DN``."""
    return NodeInsertion(GraphKind.DATA, node, labels, tuple(edges))


def delete_data_node(
    node: NodeId, labels: Union[str, Iterable[str]] = (), edges: Iterable[tuple] = ()
) -> NodeDeletion:
    """An update in ``ΔG-_DN``."""
    return NodeDeletion(GraphKind.DATA, node, labels, tuple(edges))


def insert_pattern_node(
    node: NodeId, label: str, edges: Iterable[tuple] = ()
) -> NodeInsertion:
    """An update in ``ΔG+_PN``."""
    return NodeInsertion(GraphKind.PATTERN, node, label, tuple(edges))


def delete_pattern_node(
    node: NodeId, label: str = "", edges: Iterable[tuple] = ()
) -> NodeDeletion:
    """An update in ``ΔG-_PN``."""
    labels = (label,) if label else ()
    return NodeDeletion(GraphKind.PATTERN, node, labels, tuple(edges))


# ----------------------------------------------------------------------
# Application helpers and batches
# ----------------------------------------------------------------------
def apply_update(update: Update, target: Union[DataGraph, PatternGraph]) -> None:
    """Apply ``update`` to ``target`` in place."""
    update.apply(target)


def apply_updates(
    updates: Iterable[Update],
    data_graph: Optional[DataGraph] = None,
    pattern_graph: Optional[PatternGraph] = None,
) -> None:
    """Apply a sequence of updates, routing each to the right graph."""
    for update in updates:
        if update.graph is GraphKind.DATA:
            if data_graph is None:
                raise UpdateError(f"{update!r} targets the data graph but none was given")
            update.apply(data_graph)
        else:
            if pattern_graph is None:
                raise UpdateError(f"{update!r} targets the pattern graph but none was given")
            update.apply(pattern_graph)


def invert_update(update: Update) -> Update:
    """Return the inverse of ``update``."""
    return update.inverse()


class UpdateBatch(Sequence[Update]):
    """The updates ``ΔG = (ΔGP, ΔGD)`` arriving between two queries.

    The batch preserves arrival order (needed by INC-GPNM, which processes
    updates one at a time) and exposes the filtered views used throughout
    the elimination machinery.

    A batch validates its *internal* consistency as updates arrive, so a
    malformed stream fails at construction instead of deep inside an
    apply: an update referencing a node that an earlier update in the
    same batch deleted raises :class:`UpdateError`, as does deleting the
    same node twice or re-inserting a node the batch already inserted.
    Re-inserting a node the batch *deleted* ("resurrection") is valid —
    the node is alive again afterwards, so later updates may reference
    it — which is what lets the batch compiler canonicalise
    delete-then-re-insert streams instead of rejecting them.
    (Consistency against the target graphs — whether an edge's endpoints
    exist at all — can only be checked at apply time.)
    """

    def __init__(self, updates: Iterable[Update] = ()) -> None:
        self._updates: list[Update] = []
        # Per-graph liveness bookkeeping for validation: nodes deleted so
        # far (referencing them is an error) and nodes inserted so far
        # (re-inserting them is an error).
        self._dead: dict[GraphKind, set[NodeId]] = {kind: set() for kind in GraphKind}
        self._born: dict[GraphKind, set[NodeId]] = {kind: set() for kind in GraphKind}
        for update in updates:
            self.append(update)

    def append(self, update: Update) -> None:
        """Add one update at the end of the batch.

        Raises :class:`UpdateError` when the update is inconsistent with
        the batch so far (see the class docstring).
        """
        if not isinstance(update, Update):
            raise TypeError(f"expected an Update, got {type(update).__name__}")
        self._validate(update)
        self._updates.append(update)

    def _validate(self, update: Update) -> None:
        dead = self._dead[update.graph]
        born = self._born[update.graph]
        if update.is_edge_update:
            for endpoint in (update.source, update.target):
                if endpoint in dead:
                    raise UpdateError(
                        f"{update!r} references node {endpoint!r}, which an earlier "
                        f"update in this batch deleted"
                    )
        elif isinstance(update, NodeInsertion):
            if update.node in born:
                raise UpdateError(
                    f"{update!r} inserts node {update.node!r} twice in the same batch"
                )
            for edge in update.edges:
                for endpoint in (edge[0], edge[1]):
                    if endpoint in dead and endpoint != update.node:
                        raise UpdateError(
                            f"{update!r} carries an edge referencing node {endpoint!r}, "
                            f"which an earlier update in this batch deleted"
                        )
            # Inserting a batch-deleted node is a resurrection: the node
            # is alive again from this point on.
            dead.discard(update.node)
            born.add(update.node)
        elif isinstance(update, NodeDeletion):
            if update.node in dead:
                raise UpdateError(
                    f"{update!r} deletes node {update.node!r} twice in the same batch"
                )
            born.discard(update.node)
            dead.add(update.node)

    def extend(self, updates: Iterable[Update]) -> None:
        """Add several updates, preserving order."""
        for update in updates:
            self.append(update)

    # Sequence protocol -------------------------------------------------
    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return UpdateBatch(self._updates[index])
        return self._updates[index]

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UpdateBatch):
            return self._updates == other._updates
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"UpdateBatch(pattern={len(self.pattern_updates())}, "
            f"data={len(self.data_updates())})"
        )

    # Filtered views -----------------------------------------------------
    def pattern_updates(self) -> list[Update]:
        """``ΔGP`` — the updates targeting the pattern graph."""
        return [u for u in self._updates if u.graph is GraphKind.PATTERN]

    def data_updates(self) -> list[Update]:
        """``ΔGD`` — the updates targeting the data graph."""
        return [u for u in self._updates if u.graph is GraphKind.DATA]

    def insertions(self) -> list[Update]:
        """All insertions, across both graphs."""
        return [u for u in self._updates if u.is_insertion]

    def deletions(self) -> list[Update]:
        """All deletions, across both graphs."""
        return [u for u in self._updates if u.is_deletion]

    def of_kind(self, graph: GraphKind, kind: UpdateKind) -> list[Update]:
        """Updates matching both a target graph and an update kind."""
        return [u for u in self._updates if u.graph is graph and u.kind is kind]

    def apply_all(
        self,
        data_graph: Optional[DataGraph] = None,
        pattern_graph: Optional[PatternGraph] = None,
    ) -> None:
        """Apply the whole batch in arrival order."""
        apply_updates(self._updates, data_graph, pattern_graph)
