"""Plain-text and JSON IO for data graphs and pattern graphs.

Formats
-------
* **Edge list + label file** — the format the SNAP datasets ship in.
  ``load_edge_list`` reads ``source target`` lines; labels come from a
  separate ``node label`` file or from a labelling function (the synthetic
  dataset generators use the latter).
* **JSON** — a single self-describing document, convenient for examples
  and for persisting generated workloads.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable
from pathlib import Path
from typing import Optional, Union

from repro.graph.digraph import DataGraph, NodeId
from repro.graph.pattern import STAR, PatternGraph


# ----------------------------------------------------------------------
# Edge-list format
# ----------------------------------------------------------------------
def load_edge_list(
    path: Union[str, Path],
    labeller: Optional[Callable[[str], str]] = None,
    label_path: Optional[Union[str, Path]] = None,
    comment: str = "#",
) -> DataGraph:
    """Load a data graph from a whitespace-separated edge list.

    Parameters
    ----------
    path:
        File with one ``source target`` pair per line.
    labeller:
        Function mapping a node identifier to its label.  Defaults to a
        constant ``"N"`` label when neither ``labeller`` nor
        ``label_path`` is given.
    label_path:
        Optional file with one ``node label`` pair per line; takes
        precedence over ``labeller`` for the nodes it mentions.
    comment:
        Lines starting with this prefix are skipped.
    """
    labels: dict[str, str] = {}
    if label_path is not None:
        with open(label_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith(comment):
                    continue
                node, label = line.split(None, 1)
                labels[node] = label.strip()

    def label_for(node: str) -> str:
        if node in labels:
            return labels[node]
        if labeller is not None:
            return labeller(node)
        return "N"

    graph = DataGraph()
    edges: list[tuple[str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            source, target = line.split()[:2]
            for node in (source, target):
                if not graph.has_node(node):
                    graph.add_node(node, label_for(node))
            edges.append((source, target))
    for source, target in edges:
        if not graph.has_edge(source, target):
            graph.add_edge(source, target)
    return graph


def dump_edge_list(
    graph: DataGraph,
    path: Union[str, Path],
    label_path: Optional[Union[str, Path]] = None,
) -> None:
    """Write ``graph`` as an edge list (and optionally a label file)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# source target\n")
        for source, target in sorted(graph.edges(), key=repr):
            handle.write(f"{source} {target}\n")
    if label_path is not None:
        with open(label_path, "w", encoding="utf-8") as handle:
            handle.write("# node label\n")
            for node in sorted(graph.nodes(), key=repr):
                handle.write(f"{node} {graph.primary_label(node)}\n")


# ----------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------
def data_graph_to_dict(graph: DataGraph) -> dict:
    """Return a JSON-serialisable description of a data graph."""
    return {
        "kind": "data_graph",
        "nodes": [
            {"id": node, "labels": list(graph.labels_of(node))} for node in graph.nodes()
        ],
        "edges": [[source, target] for source, target in graph.edges()],
    }


def data_graph_from_dict(payload: dict) -> DataGraph:
    """Rebuild a data graph from :func:`data_graph_to_dict` output."""
    if payload.get("kind") != "data_graph":
        raise ValueError("payload does not describe a data graph")
    graph = DataGraph()
    for entry in payload["nodes"]:
        graph.add_node(_freeze_id(entry["id"]), *entry["labels"])
    for source, target in payload["edges"]:
        graph.add_edge(_freeze_id(source), _freeze_id(target))
    return graph


def pattern_graph_to_dict(pattern: PatternGraph) -> dict:
    """Return a JSON-serialisable description of a pattern graph."""
    return {
        "kind": "pattern_graph",
        "nodes": [
            {"id": node, "label": pattern.label_of(node)} for node in pattern.nodes()
        ],
        "edges": [
            [source, target, "*" if bound is STAR else bound]
            for source, target, bound in pattern.edges()
        ],
    }


def pattern_graph_from_dict(payload: dict) -> PatternGraph:
    """Rebuild a pattern graph from :func:`pattern_graph_to_dict` output."""
    if payload.get("kind") != "pattern_graph":
        raise ValueError("payload does not describe a pattern graph")
    pattern = PatternGraph()
    for entry in payload["nodes"]:
        pattern.add_node(_freeze_id(entry["id"]), entry["label"])
    for source, target, bound in payload["edges"]:
        pattern.add_edge(_freeze_id(source), _freeze_id(target), bound)
    return pattern


def save_json(
    obj: Union[DataGraph, PatternGraph], path: Union[str, Path]
) -> None:
    """Persist either graph type to a JSON file."""
    if isinstance(obj, DataGraph):
        payload = data_graph_to_dict(obj)
    elif isinstance(obj, PatternGraph):
        payload = pattern_graph_to_dict(obj)
    else:
        raise TypeError(f"cannot serialise {type(obj).__name__}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)


def load_json(path: Union[str, Path]) -> Union[DataGraph, PatternGraph]:
    """Load either graph type from a JSON file produced by :func:`save_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("kind")
    if kind == "data_graph":
        return data_graph_from_dict(payload)
    if kind == "pattern_graph":
        return pattern_graph_from_dict(payload)
    raise ValueError(f"unknown graph kind {kind!r}")


def _freeze_id(raw: object) -> NodeId:
    """JSON keys/ids come back as lists for tuple ids; re-freeze them."""
    if isinstance(raw, list):
        return tuple(_freeze_id(item) for item in raw)
    return raw
