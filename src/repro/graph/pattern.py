"""Pattern graph (the paper's ``GP``) with bounded edges.

Each pattern node carries exactly one label (``fv``); each directed edge
carries a *bounded path length* (``fe``) that is either a positive integer
``k`` — the match of the edge may be any path of length at most ``k`` in
the data graph — or the wildcard ``"*"`` meaning "any finite path".

Internally the wildcard is stored as the module constant :data:`STAR`; the
public API accepts the string ``"*"`` as well.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional, Union

from repro.graph.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    InvalidBoundError,
    MissingEdgeError,
    MissingNodeError,
)

NodeId = Hashable

#: Sentinel used to represent the ``"*"`` (unbounded) edge constraint.
STAR: float = math.inf

Bound = Union[int, float, str]


def normalise_bound(bound: Bound) -> float | int:
    """Validate and normalise a pattern-edge bound.

    Returns either a positive ``int`` or :data:`STAR`.
    Raises :class:`~repro.graph.errors.InvalidBoundError` otherwise.
    """
    if bound == "*" or bound is STAR or bound == math.inf:
        return STAR
    if isinstance(bound, bool):
        raise InvalidBoundError(bound)
    if isinstance(bound, int) and bound >= 1:
        return bound
    raise InvalidBoundError(bound)


class PatternGraph:
    """A small directed pattern graph with labelled nodes and bounded edges.

    Examples
    --------
    >>> p = PatternGraph()
    >>> p.add_node("PM", "PM")
    >>> p.add_node("SE", "SE")
    >>> p.add_edge("PM", "SE", 3)
    >>> p.bound("PM", "SE")
    3
    """

    __slots__ = ("_succ", "_pred", "_labels", "_bounds")

    def __init__(
        self,
        nodes: Optional[Mapping[NodeId, str]] = None,
        edges: Optional[Iterable[tuple[NodeId, NodeId, Bound]]] = None,
    ) -> None:
        self._succ: dict[NodeId, set[NodeId]] = {}
        self._pred: dict[NodeId, set[NodeId]] = {}
        self._labels: dict[NodeId, str] = {}
        self._bounds: dict[tuple[NodeId, NodeId], float | int] = {}
        if nodes:
            for node, label in nodes.items():
                self.add_node(node, label)
        if edges:
            for source, target, bound in edges:
                self.add_edge(source, target, bound)

    # ------------------------------------------------------------------
    # Node API
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: str) -> None:
        """Insert a pattern node with label ``fv(node) = label``."""
        if node in self._succ:
            raise DuplicateNodeError(node)
        if not isinstance(label, str) or not label:
            raise ValueError(f"pattern node label must be a non-empty string, got {label!r}")
        self._succ[node] = set()
        self._pred[node] = set()
        self._labels[node] = label

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all its incident edges."""
        if node not in self._succ:
            raise MissingNodeError(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        del self._succ[node]
        del self._pred[node]
        del self._labels[node]

    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is in the pattern."""
        return node in self._succ

    def label_of(self, node: NodeId) -> str:
        """Return ``fv(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise MissingNodeError(node) from None

    # ------------------------------------------------------------------
    # Edge API
    # ------------------------------------------------------------------
    def add_edge(self, source: NodeId, target: NodeId, bound: Bound) -> None:
        """Insert edge ``source -> target`` with bounded path length ``bound``."""
        if source not in self._succ:
            raise MissingNodeError(source)
        if target not in self._succ:
            raise MissingNodeError(target)
        if target in self._succ[source]:
            raise DuplicateEdgeError(source, target)
        value = normalise_bound(bound)
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._bounds[(source, target)] = value

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove edge ``source -> target``."""
        if (source, target) not in self._bounds:
            raise MissingEdgeError(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        del self._bounds[(source, target)]

    def set_bound(self, source: NodeId, target: NodeId, bound: Bound) -> None:
        """Replace the bound of an existing edge."""
        if (source, target) not in self._bounds:
            raise MissingEdgeError(source, target)
        self._bounds[(source, target)] = normalise_bound(bound)

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """Return ``True`` if the edge exists."""
        return (source, target) in self._bounds

    def bound(self, source: NodeId, target: NodeId) -> float | int:
        """Return ``fe(source, target)`` (an int or :data:`STAR`)."""
        try:
            return self._bounds[(source, target)]
        except KeyError:
            raise MissingEdgeError(source, target) from None

    # ------------------------------------------------------------------
    # Traversal / inspection
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[NodeId]:
        """Iterate over pattern node identifiers."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[NodeId, NodeId, float | int]]:
        """Iterate over ``(source, target, bound)`` triples."""
        for (source, target), bound in self._bounds.items():
            yield (source, target, bound)

    def successors(self, node: NodeId) -> frozenset[NodeId]:
        """Return the out-neighbours of ``node``."""
        try:
            return frozenset(self._succ[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def predecessors(self, node: NodeId) -> frozenset[NodeId]:
        """Return the in-neighbours of ``node``."""
        try:
            return frozenset(self._pred[node])
        except KeyError:
            raise MissingNodeError(node) from None

    def labels(self) -> frozenset[str]:
        """Return the set of labels used by the pattern."""
        return frozenset(self._labels.values())

    @property
    def number_of_nodes(self) -> int:
        """``|VP|``."""
        return len(self._succ)

    @property
    def number_of_edges(self) -> int:
        """``|EP|``."""
        return len(self._bounds)

    # ------------------------------------------------------------------
    # Copy / equality / debug
    # ------------------------------------------------------------------
    def copy(self) -> "PatternGraph":
        """Return a deep copy of the pattern."""
        clone = PatternGraph()
        clone._succ = {node: set(targets) for node, targets in self._succ.items()}
        clone._pred = {node: set(sources) for node, sources in self._pred.items()}
        clone._labels = dict(self._labels)
        clone._bounds = dict(self._bounds)
        return clone

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternGraph):
            return NotImplemented
        return self._labels == other._labels and self._bounds == other._bounds

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("PatternGraph is mutable and therefore unhashable")

    def __repr__(self) -> str:
        return (
            f"PatternGraph(nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges})"
        )
