"""Exception hierarchy for the graph substrate.

All graph-level failures raise a subclass of :class:`GraphError` so that
callers can catch one family of exceptions at API boundaries while tests
can assert on the precise failure mode.
"""

from __future__ import annotations


class GraphError(Exception):
    """Base class for every error raised by :mod:`repro.graph`."""


class MissingNodeError(GraphError, KeyError):
    """An operation referenced a node that is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class MissingEdgeError(GraphError, KeyError):
    """An operation referenced an edge that is not present in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node was inserted twice."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is already in the graph")
        self.node = node


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was inserted twice."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is already in the graph")
        self.source = source
        self.target = target


class InvalidBoundError(GraphError, ValueError):
    """A pattern edge bound is neither a positive integer nor ``"*"``."""

    def __init__(self, bound: object) -> None:
        super().__init__(
            f"pattern edge bound must be a positive integer or '*', got {bound!r}"
        )
        self.bound = bound


class UpdateError(GraphError, ValueError):
    """An update could not be applied to its target graph."""
