"""INC-GPNM [13]: one incremental GPNM procedure per update.

INC-GPNM maintains the shortest path length index incrementally and
restricts the matching amendment to the area affected by each update —
but it processes the updates *one at a time*, running a full incremental
GPNM procedure (SLen maintenance + amendment pass) for every single
update in ``ΔGP`` and ``ΔGD``.  It is the strongest published baseline
the paper compares against, and the repeated passes are exactly the cost
UA-GPNM's elimination analysis removes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.algorithms.base import GPNMAlgorithm, QueryStats
from repro.elimination.eh_tree import EHTree
from repro.graph.updates import GraphKind, UpdateBatch
from repro.matching.gpnm import MatchResult


class IncGPNM(GPNMAlgorithm):
    """The INC-GPNM baseline: per-update incremental processing."""

    name = "INC-GPNM"

    def _process_batch(
        self, batch: UpdateBatch, stats: QueryStats
    ) -> tuple[MatchResult, Optional[EHTree]]:
        # INC-GPNM is per-update by definition, so a coalescing plan only
        # canonicalises the stream: duplicates, inverse pairs and
        # subsumed edge operations are compiled away before the
        # per-update loop (a per-update plan skips even that); each
        # survivor still gets its own maintenance + amendment.  The
        # recorded planned_strategy is the planner's decision — here it
        # means "compile first", never coalesced maintenance.
        plan = self._plan_data_batch(batch.data_updates(), len(batch))
        stats.planned_strategy = plan.strategy
        working: UpdateBatch = batch
        if plan.strategy != "per-update":
            compiled = self._compile_timed(batch, stats)
            working = compiled.batch
            plan = dataclasses.replace(plan, compilation=compiled.report)
            self._last_plan = plan
        for update in working:
            if update.graph is GraphKind.DATA:
                self._apply_data_update(update, stats)
            else:
                self._apply_pattern_update(update, stats)
            # One incremental GPNM procedure per update: amend the current
            # matching result for this update alone.
            self._amend([update], stats)
        return self._relation, None
