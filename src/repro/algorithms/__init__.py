"""The GPNM algorithms compared in the paper's evaluation (Section VII-A).

* :class:`~repro.algorithms.scratch.BatchGPNM` — recompute everything from
  scratch; the correctness oracle;
* :class:`~repro.algorithms.inc_gpnm.IncGPNM` — INC-GPNM [13]: one
  incremental GPNM procedure per update;
* :class:`~repro.algorithms.eh_gpnm.EHGPNM` — EH-GPNM [14]: elimination
  relationships among *data* updates only;
* :class:`~repro.algorithms.ua_gpnm.UAGPNM` — this paper's UA-GPNM, with
  all three elimination types, the EH-Tree and (optionally) the label
  partition.  ``UAGPNM(use_partition=False)`` is the UA-GPNM-NoPar
  baseline.

All four share the same state model: construct with a pattern and a data
graph (the initial query ``IQuery`` is computed immediately), then call
:meth:`~repro.algorithms.base.GPNMAlgorithm.subsequent_query` with an
update batch to obtain ``SQuery`` plus per-query statistics.
"""

from repro.algorithms.base import GPNMAlgorithm, QueryStats, SubsequentResult
from repro.algorithms.eh_gpnm import EHGPNM
from repro.algorithms.inc_gpnm import IncGPNM
from repro.algorithms.scratch import BatchGPNM
from repro.algorithms.ua_gpnm import UAGPNM, make_ua_gpnm, make_ua_gpnm_nopar

__all__ = [
    "GPNMAlgorithm",
    "QueryStats",
    "SubsequentResult",
    "BatchGPNM",
    "IncGPNM",
    "EHGPNM",
    "UAGPNM",
    "make_ua_gpnm",
    "make_ua_gpnm_nopar",
]
