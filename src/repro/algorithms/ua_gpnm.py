"""UA-GPNM: the paper's updates-aware GPNM algorithm (Section VI).

UA-GPNM processes a subsequent query in three steps:

1. maintain the shortest path length matrix for every data update
   (using the label partition of Section V to recompute affected rows
   when ``use_partition`` is on), collecting the affected sets
   ``Aff_N(UDi)``;
2. compute the candidate sets ``Can_N(UPi)`` of the pattern updates, run
   DER-I / DER-II / DER-III and index the detected elimination
   relationships in the EH-Tree;
3. amend the matching result with a *single* incremental GPNM pass that
   covers the uneliminated updates — the eliminated ones (``|Ue|`` in the
   complexity analysis) are exactly the per-update passes INC-GPNM and
   EH-GPNM would have spent on work subsumed by their EH-Tree ancestors.

``UAGPNM(use_partition=False)`` is the UA-GPNM-NoPar baseline of the
experiments: identical elimination machinery, but plain per-source BFS
whenever ``SLen`` rows must be recomputed.

With ``use_partition`` on, the label partition is **cached across
batches** (seeded by the initial build, maintained incrementally per
update, and invalidated whenever ``DataGraph.version`` moved without
the cache seeing the change), so the partitioned-coalesced maintenance
route pays O(|batch|) partition bookkeeping instead of an O(V + E)
rebuild per batch — see
:meth:`~repro.algorithms.base.GPNMAlgorithm._settle_partition`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.algorithms.base import GPNMAlgorithm, QueryStats
from repro.elimination.detector import detect_all
from repro.elimination.eh_tree import EHTree
from repro.graph.digraph import DataGraph
from repro.graph.errors import GraphError
from repro.graph.pattern import PatternGraph
from repro.graph.updates import UpdateBatch
from repro.matching.candidates import CandidateSet, candidate_set
from repro.matching.gpnm import MatchResult


class UAGPNM(GPNMAlgorithm):
    """The updates-aware GPNM algorithm (with or without the label partition)."""

    name = "UA-GPNM"

    def __init__(
        self,
        pattern: PatternGraph,
        data: DataGraph,
        use_partition: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(pattern, data, use_partition=use_partition, **kwargs)
        if not use_partition:
            self.name = "UA-GPNM-NoPar"

    def _process_batch(
        self, batch: UpdateBatch, stats: QueryStats
    ) -> tuple[MatchResult, Optional[EHTree]]:
        # Step 0: the execution planner routes the batch to per-update,
        # coalesced or partitioned-coalesced maintenance (one decision
        # point; the old ``coalesce_min_batch`` guard is a planner rule).
        # On a coalescing route the batch is first compiled down to its
        # net effect — duplicates, inverse pairs and subsumed edge
        # operations never reach the maintenance machinery below.
        plan = self._plan_data_batch(batch.data_updates(), len(batch))
        stats.planned_strategy = plan.strategy
        working: UpdateBatch = batch
        if plan.strategy != "per-update":
            compiled = self._compile_timed(batch, stats)
            working = compiled.batch
            plan = dataclasses.replace(plan, compilation=compiled.report)
            self._last_plan = plan
        data_updates = working.data_updates()
        pattern_updates = working.pattern_updates()

        # Step 1: candidate sets Can_N(UPi) against the pre-batch state
        # (Algorithm 1 / DER-I works on the original SLen; DER-III then
        # re-checks the candidates against the updated SLen).
        candidate_sets = []
        for update in pattern_updates:
            try:
                candidate_sets.append(
                    candidate_set(update, self._pattern, self._data, self._slen, self._relation)
                )
            except GraphError:
                # Exotic interactions inside one batch (e.g. an edge update
                # referencing a pattern node inserted by the same batch)
                # simply yield an empty candidate set.
                candidate_sets.append(CandidateSet(update=update))

        # Step 2: apply data updates, maintaining SLen and collecting Aff_N.
        # On a coalescing route the compiled stream is maintained by a
        # single multi-source pass instead of one update_slen call per
        # update (through the label partition on the partitioned route).
        affected_sets = self._execute_data_plan(data_updates, stats, plan)

        # Step 3: apply the pattern updates themselves.
        for update in pattern_updates:
            update.apply(self._pattern)

        # Step 4: detect all three elimination relationship types and build
        # the EH-Tree over the whole (compiled) batch.
        analysis = detect_all(candidate_sets, affected_sets, self._slen)
        eh_tree = EHTree.build(analysis, list(working))
        stats.elimination_relations += len(analysis.relations)
        stats.eliminated_updates += eh_tree.number_of_eliminated

        # Step 5: a single incremental GPNM pass for the uneliminated
        # updates delivers SQuery.  (The pass is seeded from the whole
        # batch's growth analysis so the result is exact regardless of how
        # aggressive the elimination was; with coalescing on it is seeded
        # from the net delta only, which is what makes the latency scale
        # with the net batch size.)
        # (If the whole batch compiled away, the graphs are unchanged and
        # the previous relation is already the answer.)
        if len(working):
            self._amend(list(working), stats)
        return self._relation, eh_tree


def make_ua_gpnm(pattern: PatternGraph, data: DataGraph, **kwargs) -> UAGPNM:
    """Factory for the full UA-GPNM (partition enabled)."""
    return UAGPNM(pattern, data, use_partition=True, **kwargs)


def make_ua_gpnm_nopar(pattern: PatternGraph, data: DataGraph, **kwargs) -> UAGPNM:
    """Factory for the UA-GPNM-NoPar baseline (partition disabled)."""
    return UAGPNM(pattern, data, use_partition=False, **kwargs)
