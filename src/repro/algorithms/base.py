"""Shared machinery of the four GPNM algorithms.

Every algorithm owns private copies of the pattern graph, the data graph,
the ``SLen`` matrix and the current (non-collapsed) matching relation.
The constructor answers the *initial query* (``IQuery``); each call to
:meth:`GPNMAlgorithm.subsequent_query` applies one update batch, produces
the *subsequent query* result (``SQuery``) and advances the internal
state so that batches can be chained, mirroring the paper's
initial-query-then-subsequent-query protocol.
"""

from __future__ import annotations

import abc
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.batching.coalesce import DEFAULT_COALESCE_MIN_BATCH, coalesce_slen
from repro.batching.compiler import CompiledBatch, compile_batch
from repro.batching.planner import (
    DEFAULT_COST_MODEL,
    PLAN_CHOICES,
    STRATEGY_AUTO,
    STRATEGY_PARTITIONED,
    STRATEGY_PER_UPDATE,
    BatchStatistics,
    CostModel,
    PlanReport,
    plan_batch,
)
from repro.batching.telemetry import PlanObservation, TelemetryLog
from repro.elimination.eh_tree import EHTree
from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.graph.updates import Update, UpdateBatch
from repro.matching.affected import AffectedSet, affected_set_from_delta
from repro.matching.amend import amend_match
from repro.matching.bgs import bounded_simulation
from repro.matching.candidates import CandidateSet, candidate_set
from repro.matching.gpnm import MatchResult
from repro.matching.shared import SharedDelta, shared_delta_from_batch
from repro.partition.label_partition import LabelPartition
from repro.partition.partitioned_spl import (
    build_slen_partitioned,
    coalesce_slen_partitioned,
)
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix

# ----------------------------------------------------------------------
# The ``coalesce_updates`` deprecation fires once per process, not once
# per algorithm construction (workloads build thousands of instances).
# The flag is guarded by a lock: service handlers construct algorithms
# on executor threads, and an unsynchronized check-then-set can emit the
# warning from several threads at once.
# ----------------------------------------------------------------------
_coalesce_deprecation_warned = False
_coalesce_deprecation_lock = threading.Lock()


def warn_coalesce_updates_deprecated(stacklevel: int = 4) -> None:
    """Emit the ``coalesce_updates`` DeprecationWarning at most once."""
    global _coalesce_deprecation_warned
    with _coalesce_deprecation_lock:
        if _coalesce_deprecation_warned:
            return
        _coalesce_deprecation_warned = True
    warnings.warn(
        "coalesce_updates is deprecated: the execution planner is the "
        "single decision point now; pass batch_plan='auto' instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_coalesce_deprecation_warning() -> None:
    """Re-arm the once-per-process deprecation (test hook)."""
    global _coalesce_deprecation_warned
    with _coalesce_deprecation_lock:
        _coalesce_deprecation_warned = False


@dataclass
class QueryStats:
    """Work accounting for one subsequent query.

    Attributes
    ----------
    elapsed_seconds:
        Wall-clock time of the whole ``subsequent_query`` call.
    maintenance_seconds:
        Wall-clock time of the batch's ``SLen`` maintenance alone (graph
        application + maintenance kernels) — the quantity the execution
        planner's cost model predicts, and what planner telemetry
        records against the prediction.
    updates_processed:
        Number of updates in the batch.
    refinement_passes:
        How many incremental GPNM (amendment) passes were run — the
        quantity the elimination machinery reduces.
    slen_updates:
        How many ``SLen`` maintenance passes were run.  The per-update
        path counts one per data update; a coalesced pass counts one per
        batch.
    recomputed_rows:
        How many whole BFS rows were recomputed during maintenance.
    eliminated_updates:
        ``|Ue|`` — updates subsumed by the EH-Tree (zero for algorithms
        that do not build one).
    elimination_relations:
        Total elimination relationships detected.
    coalesced_batches:
        How many coalesced maintenance passes were run (coalescing
        strategies only).
    compiled_away_updates:
        Updates removed by the batch compiler before processing
        (duplicates, inverse pairs, subsumed edge operations).
    planned_strategy:
        The maintenance strategy the execution planner chose for the
        batch (``"per-update"``, ``"coalesced"`` or ``"partitioned"``;
        empty for algorithms that do not plan, e.g. the oracle).  For
        INC-GPNM — per-update by definition — a coalescing decision
        only canonicalises the stream; maintenance itself stays
        per-update regardless of the recorded plan.
    """

    elapsed_seconds: float = 0.0
    maintenance_seconds: float = 0.0
    updates_processed: int = 0
    refinement_passes: int = 0
    slen_updates: int = 0
    recomputed_rows: int = 0
    eliminated_updates: int = 0
    elimination_relations: int = 0
    coalesced_batches: int = 0
    compiled_away_updates: int = 0
    planned_strategy: str = ""

    def as_dict(self) -> dict[str, float | str]:
        """Plain-dict copy (used by the experiment reports)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "maintenance_seconds": self.maintenance_seconds,
            "updates_processed": self.updates_processed,
            "refinement_passes": self.refinement_passes,
            "slen_updates": self.slen_updates,
            "recomputed_rows": self.recomputed_rows,
            "eliminated_updates": self.eliminated_updates,
            "elimination_relations": self.elimination_relations,
            "coalesced_batches": self.coalesced_batches,
            "compiled_away_updates": self.compiled_away_updates,
            "planned_strategy": self.planned_strategy,
        }


@dataclass
class SubsequentResult:
    """The answer to one subsequent query."""

    result: MatchResult
    stats: QueryStats
    eh_tree: Optional[EHTree] = None
    #: The execution planner's decision for the batch (``None`` for
    #: algorithms that do not plan, e.g. the from-scratch oracle).
    plan: Optional[PlanReport] = None


class GPNMAlgorithm(abc.ABC):
    """Base class for the four compared GPNM methods.

    Parameters
    ----------
    pattern / data:
        The initial pattern and data graphs; private copies are taken.
    use_partition:
        Whether the label-based partition accelerates ``SLen``
        construction and maintenance (Section V).
    enforce_totality:
        Whether returned :class:`MatchResult` objects collapse to empty
        when some pattern node has no match (the paper's GPNM semantics).
    batch_plan:
        Maintenance-strategy selection for each batch, decided by the
        execution planner (:mod:`repro.batching.planner`):

        * ``"auto"`` — **the default**: the planner's cost model picks
          the cheapest strategy per batch (insert-dominated batches are
          routed away from coalescing, small batches stay per-update).
          The default flipped from ``"per-update"`` once the planner
          soaked behind the 52-seed differential harness, the 50-seed
          strategy-equivalence suite and the calibration-convergence
          suite (all in the CI no-skip gate);
        * ``"per-update"`` — one ``update_slen`` pass per data update;
        * ``"coalesced"`` — compile the batch and maintain ``SLen`` with
          one coalesced pass; results are identical, the work scales
          with the *net* delta;
        * ``"partitioned"`` — coalesced maintenance whose deletion
          settle routes row-heavy sources through the label partition
          (degrades to ``"coalesced"`` when ``use_partition`` is off).

        ``None`` selects ``"auto"``.
    coalesce_updates:
        Deprecated alias for ``batch_plan="auto"`` (now the default
        anyway); the planner is the single decision point.  Passing it
        emits a :class:`DeprecationWarning` once per process; an
        explicit ``batch_plan`` wins.
    coalesce_min_batch:
        The planner's crossover rule: ``auto``-planned batches smaller
        than this stay on per-update maintenance (below the threshold
        the compile+coalesce fixed costs exceed the savings).  The
        default (64) is where ``BENCH_batching.json`` shows the
        coalesced path stops losing (about par at 64, decisive wins by
        256 on deletion-bearing mixes).  Forced strategies ignore it.
    slen_backend:
        ``SLen`` storage backend (``"sparse"`` / ``"dense"`` / ``"auto"``,
        see :mod:`repro.spl.backend`).  ``None`` inherits the backend of
        ``precomputed_slen`` when given, otherwise ``"sparse"``.
    dense_block_size:
        Block edge of the blocked dense layout (``None`` = the
        :data:`repro.spl.dense.DEFAULT_DENSE_BLOCK_SIZE` default);
        ignored by the sparse backend.
    cost_model:
        The planner's :class:`~repro.batching.planner.CostModel`
        (``None`` = the shipped calibration).  Online recalibration
        swaps refit models in here.
    telemetry:
        A :class:`~repro.batching.telemetry.TelemetryLog`; when given,
        every maintained batch emits a
        :class:`~repro.batching.telemetry.PlanObservation` (the
        planner's prediction vs. the measured maintenance time).  Logs
        can be shared across algorithm instances.
    recalibrate_every:
        Online recalibration cadence: after every N new telemetry
        observations the cost model is refit
        (:func:`repro.batching.calibrate.refit_cost_model`) and swapped
        in for subsequent planning decisions.  0 (the default) disables
        recalibration; a positive value without an explicit
        ``telemetry`` log creates a private one.
    """

    #: Human-readable name used in experiment reports.
    name: str = "base"

    def __init__(
        self,
        pattern: PatternGraph,
        data: DataGraph,
        use_partition: bool = False,
        enforce_totality: bool = True,
        precomputed_slen: Optional[SLenMatrix] = None,
        precomputed_relation: Optional[MatchResult] = None,
        coalesce_updates: bool = False,
        coalesce_min_batch: int = DEFAULT_COALESCE_MIN_BATCH,
        slen_backend: Optional[str] = None,
        dense_block_size: Optional[int] = None,
        batch_plan: Optional[str] = None,
        cost_model: Optional[CostModel] = None,
        telemetry: Optional[TelemetryLog] = None,
        recalibrate_every: int = 0,
    ) -> None:
        self._pattern = pattern.copy()
        self._data = data.copy()
        self._use_partition = use_partition
        self._enforce_totality = enforce_totality
        if coalesce_updates:
            warn_coalesce_updates_deprecated()
        if batch_plan is None:
            batch_plan = STRATEGY_AUTO
        elif batch_plan not in PLAN_CHOICES:
            raise ValueError(
                f"unknown batch_plan {batch_plan!r}; expected one of {PLAN_CHOICES}"
            )
        if recalibrate_every < 0:
            raise ValueError("recalibrate_every must be non-negative")
        self._batch_plan = batch_plan
        self._coalesce_min_batch = coalesce_min_batch
        self._cost_model = cost_model
        if telemetry is None and recalibrate_every:
            telemetry = TelemetryLog()
        self._telemetry = telemetry
        self._recalibration = None
        if recalibrate_every:
            # Imported lazily so `python -m repro.batching.calibrate`
            # does not find the module pre-imported through this package.
            from repro.batching.calibrate import RecalibrationSchedule

            self._recalibration = RecalibrationSchedule(
                recalibrate_every, cost_model, observed=telemetry.total_recorded
            )
        self._last_plan: Optional[PlanReport] = None
        #: Pattern-independent outcome of the most recent batch (the
        #: maintained data updates + their affected region), consumed by
        #: the multi-pattern subscription fan-out.
        self._last_shared_delta: Optional[SharedDelta] = None
        self._last_affected_sets: tuple[AffectedSet, ...] = ()
        self._last_maintained_updates: tuple[Update, ...] = ()
        #: Cross-batch LabelPartition cache for the partitioned route,
        #: trusted only while ``_partition_version`` matches the data
        #: graph's mutation counter.
        self._partition_cache: Optional[LabelPartition] = None
        self._partition_version: int = -1
        if precomputed_slen is not None:
            # The experiment harness shares one initial-query state across
            # the compared methods so that only the subsequent query is
            # re-measured; the matrix is copied because it will be mutated.
            if slen_backend is None:
                self._slen = precomputed_slen.copy()
            else:
                self._slen = precomputed_slen.to_backend(
                    slen_backend, dense_block_size=dense_block_size
                )
        elif use_partition:
            partition = LabelPartition.from_graph(self._data)
            self._slen = build_slen_partitioned(
                self._data,
                partition,
                backend=slen_backend if slen_backend is not None else "sparse",
                dense_block_size=dense_block_size,
            )
            # The construction partition seeds the cross-batch cache.
            self._partition_cache = partition
            self._partition_version = self._data.version
        else:
            self._slen = SLenMatrix.from_graph(
                self._data,
                backend=slen_backend if slen_backend is not None else "sparse",
                dense_block_size=dense_block_size,
            )
        if (
            use_partition
            and self._partition_cache is None
            and self._batch_plan in (STRATEGY_AUTO, STRATEGY_PARTITIONED)
        ):
            # Seed the cache on the precomputed-SLen path too (the
            # experiment harness always takes it): building here keeps
            # the O(V + E) partition construction out of the timed
            # maintenance window, so partitioned-route telemetry is not
            # inflated by setup the cache exists to amortise.  Plans
            # that can never route partitioned skip the build (the
            # lazy rebuild in _settle_partition covers stragglers).
            self._partition_cache = LabelPartition.from_graph(self._data)
            self._partition_version = self._data.version
        if precomputed_relation is not None:
            self._relation = MatchResult(precomputed_relation.as_dict(), enforce_totality=False)
        else:
            relation = bounded_simulation(self._pattern, self._data, self._slen)
            self._relation = MatchResult(relation, enforce_totality=False)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def initial_result(self) -> MatchResult:
        """``IQuery`` — the matching result of the current internal state."""
        return MatchResult(self._relation.as_dict(), enforce_totality=self._enforce_totality)

    @property
    def pattern(self) -> PatternGraph:
        """A copy of the algorithm's current pattern graph."""
        return self._pattern.copy()

    @property
    def data(self) -> DataGraph:
        """A copy of the algorithm's current data graph."""
        return self._data.copy()

    @property
    def slen(self) -> SLenMatrix:
        """A copy of the maintained shortest path length matrix."""
        return self._slen.copy()

    def shared_state(self) -> tuple[DataGraph, SLenMatrix]:
        """Borrowed references to the live ``(data, slen)`` state.

        Unlike :attr:`data` / :attr:`slen` (which copy) this hands out
        the algorithm's own objects, so pattern-independent state can be
        shared read-only across many standing patterns.  Callers must
        treat both as immutable and must not hold them across a later
        ``subsequent_query`` (which mutates them in place).
        """
        return self._data, self._slen

    @property
    def last_shared_delta(self) -> Optional[SharedDelta]:
        """The :class:`~repro.matching.shared.SharedDelta` of the most
        recent :meth:`subsequent_query` (``None`` before the first batch).
        The delta's updates are the *maintained* stream — post batch
        compilation on coalesced routes — which has the same net effect
        as the submitted batch."""
        return self._last_shared_delta

    def fork_state(self) -> tuple[DataGraph, SLenMatrix, Optional[LabelPartition]]:
        """A consistent ``(data, slen, partition)`` snapshot of internal state.

        The graph and (warm) partition are deep-copied — they are
        O(|V| + |E|) — while the ``SLen`` matrix is **forked**
        (copy-on-write on the blocked dense backend, so the O(|V|²)
        payload is shared until a later batch writes a block).  This is
        the cheap snapshot-publication primitive behind
        :mod:`repro.versioning`; the returned triple never mutates, and
        the algorithm stays fully usable.  The partition is ``None``
        when partitioned maintenance is disabled or the cache is cold.
        """
        partition: Optional[LabelPartition] = None
        if (
            self._partition_cache is not None
            and self._partition_version == self._data.version
        ):
            partition = self._partition_cache.copy()
        return self._data.copy(), self._slen.fork(), partition

    @property
    def uses_partition(self) -> bool:
        """Whether the label partition is in use."""
        return self._use_partition

    @property
    def batch_plan(self) -> str:
        """The requested batch plan (``"auto"`` or a forced strategy)."""
        return self._batch_plan

    @property
    def coalesces_updates(self) -> bool:
        """Whether the batch plan can route batches to a coalesced pass."""
        return self._batch_plan != STRATEGY_PER_UPDATE

    @property
    def slen_backend(self) -> str:
        """Resolved name of the ``SLen`` storage backend in use."""
        return self._slen.backend_name

    @property
    def cost_model(self) -> CostModel:
        """The planner's active cost model (refit models show up here)."""
        return self._cost_model or DEFAULT_COST_MODEL

    @property
    def telemetry(self) -> Optional[TelemetryLog]:
        """The telemetry log observations are emitted into (if any)."""
        return self._telemetry

    def _plan_data_batch(self, data_updates: Sequence[Update], batch_size: int) -> PlanReport:
        """Run the execution planner for one batch's data updates.

        Subsumes the old static ``coalesce_min_batch`` guard: the
        threshold is one planner rule, and the planner's decision — not a
        raw flag — selects the maintenance strategy (it is recorded in
        ``stats.planned_strategy`` and surfaced as
        :attr:`SubsequentResult.plan`).
        """
        statistics = BatchStatistics.from_updates(
            data_updates,
            node_count=self._data.number_of_nodes,
            backend=self._slen.backend_name,
            partition_available=self._use_partition,
            batch_size=batch_size,
        )
        plan = plan_batch(
            statistics,
            requested=self._batch_plan,
            min_batch=self._coalesce_min_batch,
            model=self._cost_model,
        )
        self._last_plan = plan
        return plan

    def subsequent_query(self, updates: Iterable[Update]) -> SubsequentResult:
        """Apply ``updates`` and answer the subsequent GPNM query."""
        batch = updates if isinstance(updates, UpdateBatch) else UpdateBatch(updates)
        stats = QueryStats(updates_processed=len(batch))
        self._last_plan = None
        self._last_affected_sets = ()
        self._last_maintained_updates = ()
        started = time.perf_counter()
        relation, eh_tree = self._process_batch(batch, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        self._last_shared_delta = shared_delta_from_batch(
            self._last_maintained_updates, self._last_affected_sets, self._data
        )
        self._relation = relation
        self._record_plan_observation(stats)
        return SubsequentResult(
            result=MatchResult(relation.as_dict(), enforce_totality=self._enforce_totality),
            stats=stats,
            eh_tree=eh_tree,
            plan=self._last_plan,
        )

    # ------------------------------------------------------------------
    # Planner telemetry + online recalibration
    # ------------------------------------------------------------------
    def _record_plan_observation(self, stats: QueryStats) -> None:
        """Emit one :class:`PlanObservation` for the batch just processed.

        The observation pairs the planner's prediction with the measured
        maintenance time; the *executed* strategy is inferred from the
        work counters because per-update-by-definition algorithms
        (INC-GPNM) can carry a coalescing plan that only canonicalises
        the stream.  Batches that ran no maintenance at all (everything
        compiled away, or pattern-only batches) are not observations —
        and neither are plan/execution mismatches: INC-GPNM's per-update
        maintenance under a coalescing plan ran over the *compiled*
        stream, so labelling its timing with the pre-compilation
        statistics would bias the refit's per-update unit anchor low.
        """
        plan = self._last_plan
        if plan is None or self._telemetry is None or stats.slen_updates == 0:
            return
        executed = plan.strategy if stats.coalesced_batches else STRATEGY_PER_UPDATE
        if executed != plan.strategy:
            return
        self._telemetry.record(
            PlanObservation(
                statistics=plan.statistics,
                requested=plan.requested,
                planned=plan.strategy,
                executed=executed,
                predicted_costs=dict(plan.costs),
                elapsed_seconds=stats.maintenance_seconds,
                algorithm=self.name,
            )
        )
        self._maybe_recalibrate()

    def _maybe_recalibrate(self) -> None:
        """Refit the cost model once enough new observations accrued
        (the cadence lives in :class:`~repro.batching.calibrate.
        RecalibrationSchedule`, shared with the experiment runner)."""
        if self._recalibration is None or self._telemetry is None:
            return
        refit = self._recalibration.maybe_refit(self._telemetry)
        if refit is not None:
            self._cost_model = refit

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _process_batch(
        self, batch: UpdateBatch, stats: QueryStats
    ) -> tuple[MatchResult, Optional[EHTree]]:
        """Apply the batch, update internal state and return the new relation."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _apply_data_update(self, update: Update, stats: QueryStats) -> AffectedSet:
        """Apply a data update to the graph and maintain ``SLen``.

        Partition-cache mirroring happens *outside* the timed window:
        the benchmark's per-update branch does no partition bookkeeping,
        and telemetry from both sources must measure the same quantity.
        """
        tracking = self._partition_tracking()
        started = time.perf_counter()
        update.apply(self._data)
        delta = update_slen(self._slen, self._data, update)
        stats.maintenance_seconds += time.perf_counter() - started
        if tracking:
            self._track_partition(update)
        stats.slen_updates += 1
        stats.recomputed_rows += len(delta.recomputed_sources)
        return affected_set_from_delta(update, delta)

    def _compile_timed(self, updates, stats: QueryStats) -> CompiledBatch:
        """:func:`compile_batch` with its wall-clock charged to
        ``stats.maintenance_seconds``.

        The cost model's ``coalesce_fixed_overhead`` covers compile +
        setup and the benchmark telemetry times the compile, so
        algorithm telemetry must include it too — otherwise the refit
        trains on two inconsistent definitions of the coalesced cost.
        """
        started = time.perf_counter()
        compiled = compile_batch(updates)
        stats.maintenance_seconds += time.perf_counter() - started
        stats.compiled_away_updates += compiled.report.eliminated
        return compiled

    def _execute_data_plan(
        self, data_updates: Sequence[Update], stats: QueryStats, plan: PlanReport
    ) -> list[AffectedSet]:
        """Apply ``data_updates`` along the planner's chosen route."""
        if plan.strategy != STRATEGY_PER_UPDATE and data_updates:
            affected = self._apply_data_updates_coalesced(
                data_updates,
                stats,
                partitioned=plan.strategy == STRATEGY_PARTITIONED,
            )
        else:
            affected = [self._apply_data_update(update, stats) for update in data_updates]
        # Stash the maintained stream + its affected region so the batch's
        # SharedDelta can be assembled once maintenance is done.
        self._last_maintained_updates = tuple(data_updates)
        self._last_affected_sets = tuple(affected)
        return affected

    def _apply_data_updates_coalesced(
        self,
        data_updates: Sequence[Update],
        stats: QueryStats,
        partitioned: bool = False,
    ) -> list[AffectedSet]:
        """Apply an already-compiled data-update stream in one coalesced pass.

        The updates must be canonical (as produced by
        :func:`repro.batching.compiler.compile_batch`): all structural
        changes are applied to the graph first, then ``SLen`` is
        maintained by a single :func:`~repro.batching.coalesce.coalesce_slen`
        call — or, with ``partitioned``, by
        :func:`~repro.partition.partitioned_spl.coalesce_slen_partitioned`,
        whose deletion settle goes through the label partition.  Returns
        per-update affected sets built from the pass's attribution
        deltas, so the elimination machinery keeps working.
        """
        if not data_updates:
            return []
        # The partitioned route's deletion bookkeeping (_settle_partition)
        # is timed — the benchmark's partitioned branch pays the same cost
        # — but cache *upkeep* (committing insertions, mirroring updates
        # on non-partitioned routes) is not: the benchmark does neither,
        # and both telemetry sources must measure the same quantity.
        tracking = not partitioned and self._partition_tracking()
        started = time.perf_counter()
        partition = self._settle_partition(data_updates) if partitioned else None
        try:
            for update in data_updates:
                update.apply(self._data)
            if partitioned:
                outcome = coalesce_slen_partitioned(
                    self._slen, self._data, data_updates, partition=partition
                )
            else:
                outcome = coalesce_slen(self._slen, self._data, data_updates)
        except Exception:
            # Keep failures non-corrupting: the graph may already hold some
            # of the batch, so resync the matrix to whatever state it
            # reached before re-raising.  A caller that catches the error
            # is left with a consistent (graph, SLen) pair.
            self._invalidate_partition_cache()
            self._slen = SLenMatrix.from_graph(
                self._data,
                horizon=self._slen.horizon,
                backend=self._slen.backend_name,
                dense_block_size=getattr(self._slen.backend, "block_size", None),
            )
            raise
        stats.maintenance_seconds += time.perf_counter() - started
        if partition is not None:
            self._commit_partition_cache(data_updates)
        elif tracking:
            for update in data_updates:
                self._track_partition(update)
        stats.slen_updates += 1
        stats.coalesced_batches += 1
        stats.recomputed_rows += len(outcome.delta.recomputed_sources)
        return [
            affected_set_from_delta(update, delta)
            for update, delta in zip(data_updates, outcome.per_update)
        ]

    # ------------------------------------------------------------------
    # Cross-batch LabelPartition cache (the partitioned route's O(V + E)
    # per-batch partition rebuild becomes O(|batch|) bookkeeping)
    # ------------------------------------------------------------------
    def _settle_partition(self, data_updates: Sequence[Update]) -> Optional[LabelPartition]:
        """The deletions-only :class:`LabelPartition` the partitioned
        settle needs, served from (and maintained into) the cache.

        The cache is trusted only while ``_partition_version`` matches
        :attr:`DataGraph.version`; any out-of-band mutation forces a
        rebuild.  The batch's deletions are applied to the cached
        partition *before* the graph changes, yielding exactly the
        partition of the deletions-only graph.  The cache is a pure
        optimisation: on any failure it is dropped and ``None`` is
        returned, making the settle derive its own partition.
        """
        if not self._use_partition:
            return None
        try:
            if (
                self._partition_cache is None
                or self._partition_version != self._data.version
            ):
                self._partition_cache = LabelPartition.from_graph(self._data)
                self._partition_version = self._data.version
            for update in data_updates:
                if update.is_deletion:
                    self._partition_cache.apply_update(update)
            return self._partition_cache
        except Exception:
            self._invalidate_partition_cache()
            return None

    def _commit_partition_cache(self, data_updates: Sequence[Update]) -> None:
        """Roll the cached partition forward over the batch's insertions
        so it matches the post-batch graph (deletions were applied by
        :meth:`_settle_partition`)."""
        if self._partition_cache is None:
            return
        try:
            for update in data_updates:
                if update.is_insertion:
                    self._partition_cache.apply_update(update)
        except Exception:
            self._invalidate_partition_cache()
            return
        self._partition_version = self._data.version

    def _invalidate_partition_cache(self) -> None:
        """Drop the cached partition (next partitioned batch rebuilds)."""
        self._partition_cache = None
        self._partition_version = -1

    def _partition_tracking(self) -> bool:
        """Whether the cache is warm enough to mirror graph mutations
        (it must match the graph *before* the mutation being applied).
        Plans that can never route partitioned don't track — the cache
        would be maintained forever without a consumer."""
        return (
            self._batch_plan in (STRATEGY_AUTO, STRATEGY_PARTITIONED)
            and self._partition_cache is not None
            and self._partition_version == self._data.version
        )

    def _track_partition(self, update: Update) -> None:
        """Mirror one just-applied data update on the warm cache, so
        per-update and plain-coalesced routes keep it from going cold
        between partitioned batches.  O(1)-ish per edit; any failure
        just drops the cache (pure optimisation)."""
        if self._partition_cache is None:
            return
        try:
            self._partition_cache.apply_update(update)
        except Exception:
            self._invalidate_partition_cache()
            return
        self._partition_version = self._data.version

    def _apply_pattern_update(self, update: Update, stats: QueryStats) -> CandidateSet:
        """Compute the candidate set of a pattern update, then apply it."""
        candidates = candidate_set(
            update, self._pattern, self._data, self._slen, self._relation
        )
        update.apply(self._pattern)
        return candidates

    def _amend(self, updates: Iterable[Update], stats: QueryStats) -> None:
        """Run one incremental amendment pass over ``updates``."""
        self._relation = amend_match(
            self._relation,
            self._pattern,
            self._data,
            self._slen,
            updates,
            enforce_totality=False,
        )
        stats.refinement_passes += 1

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(pattern_nodes={self._pattern.number_of_nodes}, "
            f"data_nodes={self._data.number_of_nodes}, partition={self._use_partition})"
        )
