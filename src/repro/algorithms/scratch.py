"""From-scratch GPNM: the correctness oracle and the "no reuse" baseline.

``BatchGPNM`` answers a subsequent query exactly the way the pre-GPNM
literature would: apply all the updates, rebuild the shortest path length
matrix from the updated data graph, and run the bounded-simulation
fixpoint from the label candidates.  It reuses nothing from the initial
query, which is what makes it slow — and what makes it the ideal oracle
against which every incremental algorithm is validated.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import GPNMAlgorithm, QueryStats
from repro.elimination.eh_tree import EHTree
from repro.graph.updates import UpdateBatch
from repro.matching.bgs import bounded_simulation
from repro.matching.gpnm import MatchResult
from repro.partition.label_partition import LabelPartition
from repro.partition.partitioned_spl import build_slen_partitioned
from repro.spl.matrix import SLenMatrix


class BatchGPNM(GPNMAlgorithm):
    """Recompute the GPNM result from scratch for every subsequent query."""

    name = "Scratch-GPNM"

    def _process_batch(
        self, batch: UpdateBatch, stats: QueryStats
    ) -> tuple[MatchResult, Optional[EHTree]]:
        batch.apply_all(self._data, self._pattern)
        if self._use_partition and self._slen.horizon == float("inf"):
            partition = LabelPartition.from_graph(self._data)
            self._slen = build_slen_partitioned(self._data, partition)
        else:
            self._slen = SLenMatrix.from_graph(
                self._data, horizon=self._slen.horizon, backend=self._slen.backend_name
            )
        stats.recomputed_rows += self._data.number_of_nodes
        relation = bounded_simulation(self._pattern, self._data, self._slen)
        stats.refinement_passes += 1
        return MatchResult(relation, enforce_totality=False), None
