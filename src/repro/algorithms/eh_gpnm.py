"""EH-GPNM [14]: elimination relationships among data updates only.

EH-GPNM detects the single-graph elimination relationships in the *data*
graph (Type II), indexes them in an EH-Tree and amends the matching
result once for the whole set of data updates.  Pattern updates are not
analysed: each one still triggers its own incremental GPNM procedure,
which is the gap UA-GPNM closes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.algorithms.base import GPNMAlgorithm, QueryStats
from repro.elimination.detector import EliminationAnalysis, detect_type_ii
from repro.elimination.eh_tree import EHTree
from repro.graph.updates import UpdateBatch
from repro.matching.gpnm import MatchResult


class EHGPNM(GPNMAlgorithm):
    """The EH-GPNM baseline: data-side elimination, per-update pattern processing."""

    name = "EH-GPNM"

    def _process_batch(
        self, batch: UpdateBatch, stats: QueryStats
    ) -> tuple[MatchResult, Optional[EHTree]]:
        data_updates = batch.data_updates()
        pattern_updates = batch.pattern_updates()

        # Data side: maintain SLen, detect Type II elimination, then amend
        # once for the whole data batch.  The execution planner routes the
        # data stream: on a coalescing route it is first compiled to its
        # net effect and maintained by one coalesced pass; the pattern
        # side keeps its per-update procedure, which is what defines
        # EH-GPNM.  (EH-GPNM runs without the label partition, so a
        # forced "partitioned" plan degrades to "coalesced".)  The plan
        # sees the full batch length, like every other algorithm, so the
        # min_batch crossover rule routes the same workload identically
        # across methods and telemetry cells line up.
        plan = self._plan_data_batch(data_updates, len(batch))
        stats.planned_strategy = plan.strategy
        if plan.strategy != "per-update":
            compiled = self._compile_timed(data_updates, stats)
            data_updates = compiled.data_updates()
            plan = dataclasses.replace(plan, compilation=compiled.report)
            self._last_plan = plan
        affected_sets = self._execute_data_plan(data_updates, stats, plan)
        relations = detect_type_ii(affected_sets)
        analysis = EliminationAnalysis(
            candidate_sets=[], affected_sets=affected_sets, relations=relations
        )
        eh_tree = EHTree.build(analysis, data_updates)
        stats.elimination_relations += len(relations)
        stats.eliminated_updates += eh_tree.number_of_eliminated
        if data_updates:
            self._amend(data_updates, stats)

        # Pattern side: no elimination analysis; one incremental procedure
        # per pattern update, as the paper describes.
        for update in pattern_updates:
            self._apply_pattern_update(update, stats)
            self._amend([update], stats)
        return self._relation, eh_tree
