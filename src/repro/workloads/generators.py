"""Deterministic synthetic social-graph generator.

The generator produces directed, label-attributed graphs with the
structural traits the paper's method relies on:

* nodes carry job-title-like labels, and most edges connect nodes with
  the same label ("people with the same role usually connect with each
  other closely", Section V-A);
* labels are organised in *tiers*; cross-label edges flow mostly from one
  tier towards later tiers, with a smaller share of lateral edges inside
  a tier.  This yields a quotient graph whose condensation has several
  components, which is what makes the label-based partition effective;
* in-label degree follows a preferential-attachment rule, producing the
  heavy-tailed degree distributions of real social graphs.

Everything is driven by :class:`random.Random` seeded from the spec, so a
given spec always produces the same graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graph.digraph import DataGraph

#: Default label tiers (org-chart flavoured, mirroring the paper's example
#: labels: project managers, developers, testers, support staff).  Keeping
#: the label count small matches the paper's setting, where each label's
#: candidate pool is a sizeable fraction of the graph.
DEFAULT_TIERS: tuple[tuple[str, ...], ...] = (
    ("PM", "BA"),
    ("SE", "DB"),
    ("TE", "QA"),
    ("S",),
)

#: The default labels flattened in tier order; patterns that respect this
#: order (edges from earlier to later labels) follow the dominant edge
#: direction of the generated graphs and therefore have non-trivial
#: matching results.
DEFAULT_LABEL_ORDER: tuple[str, ...] = tuple(
    label for tier in DEFAULT_TIERS for label in tier
)


@dataclass(frozen=True)
class SocialGraphSpec:
    """Parameters of one synthetic social graph.

    Attributes
    ----------
    name:
        Identifier used in node ids and experiment reports.
    num_nodes / num_edges:
        Target sizes.  The generator always hits ``num_nodes`` exactly and
        gets as close to ``num_edges`` as the density allows.
    tiers:
        Label tiers; cross-label edges go forward across tiers or sideways
        within a tier.
    intra_fraction:
        Share of edges connecting two nodes with the same label.
    forward_fraction:
        Share of edges going from a label to a label in a later tier.
    lateral_fraction:
        Share of edges between different labels of the same tier (both
        directions allowed — these create the small label-level cycles).
    hub_bias:
        Strength of preferential attachment when picking edge endpoints
        (0 disables it).
    seed:
        Seed of the deterministic RNG.
    """

    name: str
    num_nodes: int
    num_edges: int
    tiers: tuple[tuple[str, ...], ...] = DEFAULT_TIERS
    intra_fraction: float = 0.55
    forward_fraction: float = 0.30
    lateral_fraction: float = 0.15
    hub_bias: float = 0.6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a social graph needs at least two nodes")
        if self.num_edges < 1:
            raise ValueError("a social graph needs at least one edge")
        total = self.intra_fraction + self.forward_fraction + self.lateral_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError("edge-kind fractions must sum to 1.0")

    @property
    def labels(self) -> tuple[str, ...]:
        """All labels, flattened across tiers."""
        return tuple(label for tier in self.tiers for label in tier)


def generate_social_graph(spec: SocialGraphSpec) -> DataGraph:
    """Generate the graph described by ``spec`` (deterministic in the seed)."""
    rng = random.Random(spec.seed)
    labels = list(spec.labels)
    tier_of = {
        label: tier_index
        for tier_index, tier in enumerate(spec.tiers)
        for label in tier
    }

    # Node counts per label: a mildly skewed split so some roles are common
    # and some rare, as in real organisations.
    weights = [1.0 / (position + 1) ** 0.5 for position in range(len(labels))]
    total_weight = sum(weights)
    counts = [max(1, int(round(spec.num_nodes * weight / total_weight))) for weight in weights]
    # Adjust to hit the node budget exactly.
    while sum(counts) > spec.num_nodes:
        counts[counts.index(max(counts))] -= 1
    while sum(counts) < spec.num_nodes:
        counts[counts.index(min(counts))] += 1

    graph = DataGraph()
    nodes_by_label: dict[str, list[str]] = {}
    for label, count in zip(labels, counts):
        bucket = []
        for position in range(count):
            node = f"{spec.name}:{label}{position}"
            graph.add_node(node, label)
            bucket.append(node)
        nodes_by_label[label] = bucket

    in_degree_weight: dict[str, int] = {node: 1 for node in graph.nodes()}

    def pick_target(candidates: list[str]) -> str:
        """Preferential-attachment pick among ``candidates``."""
        if spec.hub_bias <= 0 or len(candidates) == 1:
            return rng.choice(candidates)
        if rng.random() < spec.hub_bias:
            weights_local = [in_degree_weight[node] for node in candidates]
            return rng.choices(candidates, weights=weights_local, k=1)[0]
        return rng.choice(candidates)

    def forward_labels(label: str) -> list[str]:
        tier_index = tier_of[label]
        return [other for other in labels if tier_of[other] > tier_index]

    def lateral_labels(label: str) -> list[str]:
        tier_index = tier_of[label]
        return [other for other in labels if tier_of[other] == tier_index and other != label]

    max_attempts = spec.num_edges * 40
    attempts = 0
    while graph.number_of_edges < spec.num_edges and attempts < max_attempts:
        attempts += 1
        roll = rng.random()
        source_label = rng.choice(labels)
        if roll < spec.intra_fraction or (
            not forward_labels(source_label) and not lateral_labels(source_label)
        ):
            target_label = source_label
        elif roll < spec.intra_fraction + spec.forward_fraction and forward_labels(source_label):
            target_label = rng.choice(forward_labels(source_label))
        elif lateral_labels(source_label):
            target_label = rng.choice(lateral_labels(source_label))
        else:
            target_label = source_label
        source_candidates = nodes_by_label[source_label]
        target_candidates = nodes_by_label[target_label]
        if not source_candidates or not target_candidates:
            continue
        source = rng.choice(source_candidates)
        target = pick_target(target_candidates)
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        in_degree_weight[target] += 1
    return graph


def generate_community_graph(
    num_nodes: int,
    community_size: int,
    seed: int,
    labels: tuple[str, ...] = ("PM", "SE", "TE"),
    intra_degree: int = 3,
    bridges: bool = True,
) -> DataGraph:
    """A community-structured digraph with slot-order locality.

    Nodes ``n0 .. n{num_nodes-1}`` are grouped into contiguous
    communities of ``community_size``; each community is wired with
    ``intra_degree`` random intra-community edges per node, plus (with
    ``bridges``) one random cross-community edge per community.  Because
    the communities are contiguous in insertion order, the reachable
    neighbourhood of every node stays within a narrow slot range — the
    shape whose unreachable regions the blocked dense ``SLen`` layout
    elides.  Used by the backend benchmark's scaling axis and the
    10⁴-node parity tests; deterministic in ``seed``.
    """
    rng = random.Random(seed)
    graph = DataGraph()
    for position in range(num_nodes):
        graph.add_node(f"n{position}", labels[position % len(labels)])
    for low in range(0, num_nodes, community_size):
        high = min(num_nodes, low + community_size)
        wanted = (high - low) * intra_degree
        added = 0
        attempts = 0
        while added < wanted and attempts < wanted * 20:
            attempts += 1
            a = rng.randrange(low, high)
            b = rng.randrange(low, high)
            if a != b and not graph.has_edge(f"n{a}", f"n{b}"):
                graph.add_edge(f"n{a}", f"n{b}")
                added += 1
    if bridges:
        for _ in range(num_nodes // max(1, community_size)):
            a = rng.randrange(num_nodes)
            b = rng.randrange(num_nodes)
            if a != b and not graph.has_edge(f"n{a}", f"n{b}"):
                graph.add_edge(f"n{a}", f"n{b}")
    return graph
