"""Workload substrate: synthetic datasets, pattern and update generators.

The paper evaluates on five SNAP social graphs (email-EU-core, DBLP,
Amazon, Youtube, LiveJournal), patterns produced by the *socnetv*
generator, and update streams that insert and delete nodes and edges in
both graphs.  None of the raw datasets can be downloaded in this
environment, so :mod:`repro.workloads.datasets` ships deterministic
synthetic stand-ins whose relative sizes, label structure and density
follow the originals at a documented scale-down factor (see DESIGN.md and
EXPERIMENTS.md).  The generators are deterministic given a seed, so every
experiment is reproducible.
"""

from repro.workloads.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.workloads.generators import (
    SocialGraphSpec,
    generate_community_graph,
    generate_social_graph,
)
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

__all__ = [
    "SocialGraphSpec",
    "generate_community_graph",
    "generate_social_graph",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "PatternSpec",
    "generate_pattern",
    "UpdateWorkloadSpec",
    "generate_update_batch",
]
