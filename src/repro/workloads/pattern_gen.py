"""Random pattern-graph generation (the paper's socnetv substitute).

Section VII-A generates patterns with three parameters: number of nodes,
number of edges, and the bounded path length on each edge (a small
integer, here 1–3, with an occasional ``"*"``).  Patterns are weakly
connected — a random spanning arborescence is laid down first and extra
edges are then added — because disconnected pattern components would make
the GPNM query trivially separable.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.graph.pattern import PatternGraph


@dataclass(frozen=True)
class PatternSpec:
    """Parameters of one generated pattern graph.

    When ``respect_label_order`` is on, pattern edges are oriented from a
    node whose label appears earlier in ``labels`` towards a node whose
    label appears later.  Running the generator against the tier-ordered
    label list of :data:`repro.workloads.generators.DEFAULT_LABEL_ORDER`
    then produces patterns aligned with the dominant edge direction of the
    synthetic social graphs, which keeps the initial query non-trivial.
    """

    num_nodes: int
    num_edges: int
    labels: tuple[str, ...]
    min_bound: int = 1
    max_bound: int = 3
    star_probability: float = 0.05
    respect_label_order: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a pattern needs at least two nodes")
        if self.num_edges < self.num_nodes - 1:
            raise ValueError("a connected pattern needs at least num_nodes - 1 edges")
        if not self.labels:
            raise ValueError("at least one label is required")
        if not 1 <= self.min_bound <= self.max_bound:
            raise ValueError("bounds must satisfy 1 <= min_bound <= max_bound")
        if not 0.0 <= self.star_probability <= 1.0:
            raise ValueError("star_probability must be in [0, 1]")


def generate_pattern(spec: PatternSpec) -> PatternGraph:
    """Generate a weakly connected pattern graph from ``spec``."""
    rng = random.Random(spec.seed)
    pattern = PatternGraph()
    node_ids = [f"p{i}" for i in range(spec.num_nodes)]

    # Prefer distinct labels while there are enough of them, then reuse.
    label_pool = list(spec.labels)
    if not spec.respect_label_order:
        rng.shuffle(label_pool)
    label_rank = {label: position for position, label in enumerate(spec.labels)}
    for position, node in enumerate(node_ids):
        if position < len(label_pool):
            label = label_pool[position]
        else:
            label = rng.choice(spec.labels)
        pattern.add_node(node, label)

    def random_bound() -> int | str:
        if rng.random() < spec.star_probability:
            return "*"
        return rng.randint(spec.min_bound, spec.max_bound)

    def orient(first: str, second: str) -> tuple[str, str]:
        """Pick the edge direction, following the label order when asked to."""
        if spec.respect_label_order:
            first_rank = label_rank.get(pattern.label_of(first), 0)
            second_rank = label_rank.get(pattern.label_of(second), 0)
            if first_rank > second_rank:
                return (second, first)
            if first_rank < second_rank:
                return (first, second)
        return (first, second) if rng.random() < 0.5 else (second, first)

    # Spanning structure: attach each node (after the first) to a random
    # earlier node, which guarantees weak connectivity.
    edges_added: set[tuple[str, str]] = set()
    for position in range(1, spec.num_nodes):
        node = node_ids[position]
        anchor = node_ids[rng.randrange(position)]
        source, target = orient(anchor, node)
        pattern.add_edge(source, target, random_bound())
        edges_added.add((source, target))

    # Extra edges up to the requested count.
    max_attempts = spec.num_edges * 50
    attempts = 0
    while pattern.number_of_edges < spec.num_edges and attempts < max_attempts:
        attempts += 1
        first, second = rng.sample(node_ids, 2)
        source, target = orient(first, second)
        if (source, target) in edges_added or pattern.has_edge(source, target):
            continue
        pattern.add_edge(source, target, random_bound())
        edges_added.add((source, target))
    return pattern


def pattern_for_dataset(
    data_labels: Sequence[str],
    num_nodes: int,
    num_edges: int,
    seed: int = 1,
) -> PatternGraph:
    """Convenience wrapper: generate a pattern using a dataset's label set."""
    spec = PatternSpec(
        num_nodes=num_nodes,
        num_edges=num_edges,
        labels=tuple(data_labels),
        seed=seed,
    )
    return generate_pattern(spec)
