"""Update-stream generation (the paper's ΔGP / ΔGD protocol, Section VII-A).

For the data graph the paper removes ``mG`` edges and ``mG`` nodes and
inserts ``nG`` new edges and ``nG`` new nodes per experiment; for the
pattern graph it removes and inserts between 1 and 5 nodes and edges.
:func:`generate_update_batch` reproduces that mix for arbitrary total
counts: the requested number of data (pattern) updates is split roughly
evenly over the four update kinds, and the emitted batch is ordered so it
is always applicable — insertions first, then edge deletions, then node
deletions, with conflicts (deleting an edge of a node that is itself
deleted, inserting a duplicate edge, …) avoided at generation time.

The batch lists data updates before pattern updates, matching the order
in which every algorithm in :mod:`repro.algorithms` processes them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    GraphKind,
    UpdateBatch,
    delete_data_edge,
    delete_data_node,
    delete_pattern_edge,
    delete_pattern_node,
    insert_data_edge,
    insert_data_node,
    insert_pattern_edge,
    insert_pattern_node,
)


#: Accepted values of :attr:`UpdateWorkloadSpec.mix`.
UPDATE_MIXES: tuple[str, ...] = ("balanced", "insert-heavy", "delete-heavy")

#: Weights (node inserts, edge inserts, edge deletes, node deletes) of
#: the skewed mixes; ``balanced`` keeps the original even four-way split.
_MIX_WEIGHTS: dict[str, tuple[int, int, int, int]] = {
    "insert-heavy": (2, 6, 1, 1),
    "delete-heavy": (1, 1, 6, 2),
}


@dataclass(frozen=True)
class UpdateWorkloadSpec:
    """Parameters of one generated update batch.

    Attributes
    ----------
    num_pattern_updates / num_data_updates:
        Total update counts for each graph (the two components of the
        paper's ΔG scale, e.g. ``(6, 200)``).
    max_bound:
        Largest bound used on inserted pattern edges.
    new_node_degree:
        How many edges each inserted data node brings with it.
    seed:
        Seed of the deterministic RNG.
    mix:
        How the data-update count is split over the four update kinds:
        ``"balanced"`` (the paper's even split, the default),
        ``"insert-heavy"`` (~80% insertions) or ``"delete-heavy"``
        (~80% deletions).  Deletions are where coalesced maintenance and
        the Ramalingam-Reps settle earn their keep, so the benchmarks
        sweep this axis.  Pattern updates always use the balanced split.
    """

    num_pattern_updates: int
    num_data_updates: int
    max_bound: int = 3
    new_node_degree: int = 2
    seed: int = 97
    mix: str = "balanced"

    def __post_init__(self) -> None:
        if self.num_pattern_updates < 0 or self.num_data_updates < 0:
            raise ValueError("update counts must be non-negative")
        if self.max_bound < 1:
            raise ValueError("max_bound must be at least 1")
        if self.new_node_degree < 0:
            raise ValueError("new_node_degree must be non-negative")
        if self.mix not in UPDATE_MIXES:
            raise ValueError(f"unknown mix {self.mix!r}; expected one of {UPDATE_MIXES}")


def generate_update_batch(
    data: DataGraph, pattern: PatternGraph, spec: UpdateWorkloadSpec
) -> UpdateBatch:
    """Generate an applicable update batch for ``data`` and ``pattern``."""
    rng = random.Random(spec.seed)
    batch = UpdateBatch()
    batch.extend(_data_updates(data, spec, rng))
    batch.extend(_pattern_updates(pattern, data, spec, rng))
    return batch


# ----------------------------------------------------------------------
# Data-graph updates
# ----------------------------------------------------------------------
def _data_updates(data: DataGraph, spec: UpdateWorkloadSpec, rng: random.Random) -> list:
    total = spec.num_data_updates
    if total == 0:
        return []
    node_inserts, edge_inserts, edge_deletes, node_deletes = _split_four_ways(total, spec.mix)

    existing_nodes = sorted(data.nodes(), key=repr)
    existing_edges = sorted(data.edges(), key=repr)
    labels = sorted(data.labels())
    if not existing_nodes or not labels:
        return []

    # Choose node deletions first so edge updates can avoid them.
    deletable = [node for node in existing_nodes if data.out_degree(node) + data.in_degree(node) > 0]
    rng.shuffle(deletable)
    nodes_to_delete = deletable[: min(node_deletes, max(0, len(deletable) - 2))]
    doomed = set(nodes_to_delete)

    updates = []

    # 1. Node insertions, each with a couple of edges to surviving nodes.
    safe_nodes = [node for node in existing_nodes if node not in doomed]
    for position in range(node_inserts):
        label = rng.choice(labels)
        new_node = f"new:{label}:{spec.seed}:{position}"
        edges = []
        if safe_nodes and spec.new_node_degree:
            neighbours = rng.sample(safe_nodes, min(spec.new_node_degree, len(safe_nodes)))
            for neighbour in neighbours:
                if rng.random() < 0.5:
                    edges.append((new_node, neighbour))
                else:
                    edges.append((neighbour, new_node))
        updates.append(insert_data_node(new_node, label, edges))

    # 2. Edge insertions between surviving existing nodes.
    inserted_pairs: set[tuple] = set()
    attempts = 0
    while len(inserted_pairs) < edge_inserts and attempts < edge_inserts * 50:
        attempts += 1
        if len(safe_nodes) < 2:
            break
        source, target = rng.sample(safe_nodes, 2)
        if data.has_edge(source, target) or (source, target) in inserted_pairs:
            continue
        inserted_pairs.add((source, target))
        updates.append(insert_data_edge(source, target))

    # 3. Edge deletions among pre-existing edges not touching doomed nodes.
    deletable_edges = [
        (source, target)
        for source, target in existing_edges
        if source not in doomed and target not in doomed
    ]
    rng.shuffle(deletable_edges)
    for source, target in deletable_edges[:edge_deletes]:
        updates.append(delete_data_edge(source, target))

    # 4. Node deletions last.
    for node in nodes_to_delete:
        updates.append(delete_data_node(node, data.labels_of(node)))
    return updates


# ----------------------------------------------------------------------
# Pattern-graph updates
# ----------------------------------------------------------------------
def _pattern_updates(
    pattern: PatternGraph, data: DataGraph, spec: UpdateWorkloadSpec, rng: random.Random
) -> list:
    total = spec.num_pattern_updates
    if total == 0:
        return []
    node_inserts, edge_inserts, edge_deletes, node_deletes = _split_four_ways(total)

    existing_nodes = sorted(pattern.nodes(), key=repr)
    existing_edges = sorted(
        ((source, target) for source, target, _bound in pattern.edges()), key=repr
    )
    data_labels = sorted(data.labels()) or ["N"]
    if not existing_nodes:
        return []

    # Keep the pattern from collapsing: delete at most a third of its nodes.
    max_node_deletes = max(0, min(node_deletes, len(existing_nodes) // 3))
    candidates_for_deletion = list(existing_nodes)
    rng.shuffle(candidates_for_deletion)
    nodes_to_delete = candidates_for_deletion[:max_node_deletes]
    doomed = set(nodes_to_delete)
    safe_nodes = [node for node in existing_nodes if node not in doomed]

    updates = []

    # 1. Node insertions, each wired to one surviving pattern node.
    for position in range(node_inserts):
        label = rng.choice(data_labels)
        new_node = f"pnew:{spec.seed}:{position}"
        edges = []
        if safe_nodes:
            anchor = rng.choice(safe_nodes)
            bound = rng.randint(1, spec.max_bound)
            if rng.random() < 0.5:
                edges.append((anchor, new_node, bound))
            else:
                edges.append((new_node, anchor, bound))
        updates.append(insert_pattern_node(new_node, label, edges))

    # 2. Edge insertions between surviving pattern nodes.
    inserted_pairs: set[tuple] = set()
    attempts = 0
    while len(inserted_pairs) < edge_inserts and attempts < edge_inserts * 50:
        attempts += 1
        if len(safe_nodes) < 2:
            break
        source, target = rng.sample(safe_nodes, 2)
        if pattern.has_edge(source, target) or (source, target) in inserted_pairs:
            continue
        inserted_pairs.add((source, target))
        updates.append(insert_pattern_edge(source, target, rng.randint(1, spec.max_bound)))

    # 3. Edge deletions among pre-existing edges not touching doomed nodes.
    deletable_edges = [
        (source, target)
        for source, target in existing_edges
        if source not in doomed and target not in doomed
    ]
    rng.shuffle(deletable_edges)
    for source, target in deletable_edges[:edge_deletes]:
        updates.append(delete_pattern_edge(source, target, pattern.bound(source, target)))

    # 4. Node deletions last.
    for node in nodes_to_delete:
        updates.append(delete_pattern_node(node, pattern.label_of(node)))
    return updates


def _split_four_ways(total: int, mix: str = "balanced") -> tuple[int, int, int, int]:
    """Split ``total`` into (node inserts, edge inserts, edge deletes, node deletes)."""
    if mix == "balanced":
        base = total // 4
        remainder = total % 4
        parts = [base, base, base, base]
        # Bias the remainder towards edge updates, which dominate real streams.
        order = (1, 2, 0, 3)
        for position in range(remainder):
            parts[order[position]] += 1
        return parts[0], parts[1], parts[2], parts[3]
    # Skewed mixes: largest-remainder apportionment of the weight vector,
    # ties broken towards edge updates (positions 1 and 2) like above.
    weights = _MIX_WEIGHTS[mix]
    weight_sum = sum(weights)
    quotas = [total * weight / weight_sum for weight in weights]
    parts = [int(quota) for quota in quotas]
    order = sorted(range(4), key=lambda position: (-(quotas[position] - parts[position]), position != 1, position != 2))
    for position in range(total - sum(parts)):
        parts[order[position % 4]] += 1
    return parts[0], parts[1], parts[2], parts[3]
