"""Update-stream generation (the paper's ΔGP / ΔGD protocol, Section VII-A).

For the data graph the paper removes ``mG`` edges and ``mG`` nodes and
inserts ``nG`` new edges and ``nG`` new nodes per experiment; for the
pattern graph it removes and inserts between 1 and 5 nodes and edges.
:func:`generate_update_batch` reproduces that mix for arbitrary total
counts: the requested number of data (pattern) updates is split roughly
evenly over the four update kinds, and the emitted batch is ordered so it
is always applicable — insertions first, then edge deletions, then node
deletions, with conflicts (deleting an edge of a node that is itself
deleted, inserting a duplicate edge, …) avoided at generation time.

The batch lists data updates before pattern updates, matching the order
in which every algorithm in :mod:`repro.algorithms` processes them.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    UpdateBatch,
    delete_data_edge,
    delete_data_node,
    delete_pattern_edge,
    delete_pattern_node,
    insert_data_edge,
    insert_data_node,
    insert_pattern_edge,
    insert_pattern_node,
)


def derive_seed(root: int, *labels: object) -> int:
    """Derive a child RNG seed from ``root`` and a label path.

    The repo's seeding contract for multi-case harnesses (stress tests,
    fault campaigns, benchmark streams): every per-case seed is
    ``derive_seed(root, case-label...)`` of a **single logged root
    seed**, so one line in a CI log ("root seed N") reproduces any
    individual case without re-running the whole sweep.  Blake2s keeps
    the derivation stable across processes and Python versions (unlike
    ``hash()``, which is salted).
    """
    material = "|".join([str(root), *[str(label) for label in labels]])
    digest = hashlib.blake2s(material.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


#: Accepted values of :attr:`UpdateWorkloadSpec.mix`.
UPDATE_MIXES: tuple[str, ...] = ("balanced", "insert-heavy", "delete-heavy")

#: Weights (node inserts, edge inserts, edge deletes, node deletes) of
#: the skewed mixes; ``balanced`` keeps the original even four-way split.
_MIX_WEIGHTS: dict[str, tuple[int, int, int, int]] = {
    "insert-heavy": (2, 6, 1, 1),
    "delete-heavy": (1, 1, 6, 2),
}

#: Accepted values of :attr:`UpdateWorkloadSpec.persona`.
UPDATE_PERSONAS: tuple[str, ...] = ("social-burst", "crawler", "churn-heavy")

#: Per-persona kind weights (same four positions as :data:`_MIX_WEIGHTS`).
_PERSONA_WEIGHTS: dict[str, tuple[int, int, int, int]] = {
    "social-burst": (1, 7, 1, 1),
    "crawler": (5, 4, 1, 0),
    "churn-heavy": (1, 1, 5, 3),
}


@dataclass(frozen=True)
class UpdateWorkloadSpec:
    """Parameters of one generated update batch.

    Attributes
    ----------
    num_pattern_updates / num_data_updates:
        Total update counts for each graph (the two components of the
        paper's ΔG scale, e.g. ``(6, 200)``).
    max_bound:
        Largest bound used on inserted pattern edges.
    new_node_degree:
        How many edges each inserted data node brings with it.
    seed:
        Seed of the deterministic RNG.
    mix:
        How the data-update count is split over the four update kinds:
        ``"balanced"`` (the paper's even split, the default),
        ``"insert-heavy"`` (~80% insertions) or ``"delete-heavy"``
        (~80% deletions).  Deletions are where coalesced maintenance and
        the Ramalingam-Reps settle earn their keep, so the benchmarks
        sweep this axis.  Pattern updates always use the balanced split.
    persona:
        Optional workload *shape* on top of the kind split — named after
        the client behaviours the multi-pattern service benchmarks
        replay.  A persona overrides ``mix`` for data updates and also
        changes *where* updates land, not just their kinds:

        * ``"social-burst"`` — insert-dominated, with edge insertions
          concentrated around a few hub (high-degree) nodes, like a
          viral post's reply storm;
        * ``"crawler"`` — node-insert dominated: new nodes wire onto
          the expanding frontier of previously inserted nodes, like an
          incremental crawl discovering pages;
        * ``"churn-heavy"`` — delete-dominated, with deletions
          clustered in one node's neighbourhood, like an account purge
          taking a community with it.
    """

    num_pattern_updates: int
    num_data_updates: int
    max_bound: int = 3
    new_node_degree: int = 2
    seed: int = 97
    mix: str = "balanced"
    persona: str | None = None

    def __post_init__(self) -> None:
        if self.num_pattern_updates < 0 or self.num_data_updates < 0:
            raise ValueError("update counts must be non-negative")
        if self.max_bound < 1:
            raise ValueError("max_bound must be at least 1")
        if self.new_node_degree < 0:
            raise ValueError("new_node_degree must be non-negative")
        if self.mix not in UPDATE_MIXES:
            raise ValueError(f"unknown mix {self.mix!r}; expected one of {UPDATE_MIXES}")
        if self.persona is not None and self.persona not in UPDATE_PERSONAS:
            raise ValueError(
                f"unknown persona {self.persona!r}; expected one of {UPDATE_PERSONAS}"
            )


def generate_update_batch(
    data: DataGraph, pattern: PatternGraph, spec: UpdateWorkloadSpec
) -> UpdateBatch:
    """Generate an applicable update batch for ``data`` and ``pattern``."""
    rng = random.Random(spec.seed)
    batch = UpdateBatch()
    batch.extend(_data_updates(data, spec, rng))
    batch.extend(_pattern_updates(pattern, data, spec, rng))
    return batch


def generate_payload_stream(
    data: DataGraph,
    *,
    payloads: int,
    updates_per_payload: int,
    seed: int = 97,
    mix: str = "balanced",
    persona: str | None = None,
    new_node_degree: int = 2,
) -> Iterator[dict]:
    """Yield ``payloads`` applicable wire-shaped delta payloads.

    The streaming-service counterpart of :func:`generate_update_batch`:
    each yielded dict is one ``{"inserts": [...], "deletes": [...]}``
    payload for :meth:`~repro.service.service.StreamingUpdateService.submit`,
    generated against a working copy of ``data`` that tracks every
    previous payload — so the whole stream admits cleanly, which is what
    the record/replay harness needs (a rejected delta never reaches the
    journal and would shrink the recorded window).  Per-payload seeds
    are :func:`derive_seed`\\ (seed, "payload", index): the stream is a
    pure function of ``seed`` and the knobs.
    """
    working = data.copy()
    for index in range(payloads):
        spec = UpdateWorkloadSpec(
            num_pattern_updates=0,
            num_data_updates=updates_per_payload,
            new_node_degree=new_node_degree,
            seed=derive_seed(seed, "payload", index),
            mix=mix,
            persona=persona,
        )
        updates = _data_updates(working, spec, random.Random(spec.seed))
        inserts: list[dict] = []
        deletes: list[dict] = []
        for update in updates:
            update.apply(working)
            if isinstance(update, EdgeInsertion):
                inserts.append(
                    {"type": "edge", "source": update.source, "target": update.target}
                )
            elif isinstance(update, NodeInsertion):
                inserts.append(
                    {
                        "type": "node",
                        "node": update.node,
                        "labels": list(update.labels),
                        "edges": [list(edge) for edge in update.edges],
                    }
                )
            elif isinstance(update, EdgeDeletion):
                deletes.append(
                    {"type": "edge", "source": update.source, "target": update.target}
                )
            elif isinstance(update, NodeDeletion):
                deletes.append(
                    {
                        "type": "node",
                        "node": update.node,
                        "labels": list(update.labels),
                    }
                )
        yield {"inserts": inserts, "deletes": deletes}


# ----------------------------------------------------------------------
# Data-graph updates
# ----------------------------------------------------------------------
def _data_updates(data: DataGraph, spec: UpdateWorkloadSpec, rng: random.Random) -> list:
    total = spec.num_data_updates
    if total == 0:
        return []
    if spec.persona is not None:
        node_inserts, edge_inserts, edge_deletes, node_deletes = _split_weighted(
            total, _PERSONA_WEIGHTS[spec.persona]
        )
    else:
        node_inserts, edge_inserts, edge_deletes, node_deletes = _split_four_ways(
            total, spec.mix
        )

    existing_nodes = sorted(data.nodes(), key=repr)
    existing_edges = sorted(data.edges(), key=repr)
    labels = sorted(data.labels())
    if not existing_nodes or not labels:
        return []

    # Choose node deletions first so edge updates can avoid them.  The
    # churn-heavy persona deletes a *cluster* (one seed's neighbourhood,
    # breadth-first) instead of a uniform sample.
    deletable = [node for node in existing_nodes if data.out_degree(node) + data.in_degree(node) > 0]
    if spec.persona == "churn-heavy" and deletable:
        deletable = _cluster_order(data, deletable, rng)
    else:
        rng.shuffle(deletable)
    nodes_to_delete = deletable[: min(node_deletes, max(0, len(deletable) - 2))]
    doomed = set(nodes_to_delete)
    #: The doomed cluster's surviving fringe — churn-heavy edge
    #: deletions concentrate here.
    fringe: set = set()
    for node in nodes_to_delete:
        fringe.update(data.successors(node))
        fringe.update(data.predecessors(node))
    fringe -= doomed

    updates = []

    # 1. Node insertions, each with a couple of edges to surviving
    # nodes.  The crawler persona wires new nodes onto an expanding
    # frontier (a breadth-first discovery walk from one seed) instead of
    # sampling anchors uniformly.
    safe_nodes = [node for node in existing_nodes if node not in doomed]
    crawl_frontier: list = []
    crawl_seen: set = set()
    if spec.persona == "crawler" and safe_nodes:
        seed_node = rng.choice(safe_nodes)
        crawl_frontier = [seed_node]
        crawl_seen = {seed_node}
    for position in range(node_inserts):
        label = rng.choice(labels)
        new_node = f"new:{label}:{spec.seed}:{position}"
        edges = []
        if safe_nodes and spec.new_node_degree:
            if crawl_frontier:
                # Anchor on the most recently discovered frontier slice,
                # then discover the anchors' own neighbours.
                pool = crawl_frontier[-min(len(crawl_frontier), 8):]
                neighbours = rng.sample(pool, min(spec.new_node_degree, len(pool)))
                for anchor in neighbours:
                    for discovered in sorted(
                        data.successors(anchor) | data.predecessors(anchor), key=repr
                    ):
                        if discovered not in crawl_seen and discovered not in doomed:
                            crawl_seen.add(discovered)
                            crawl_frontier.append(discovered)
                            break
            else:
                neighbours = rng.sample(safe_nodes, min(spec.new_node_degree, len(safe_nodes)))
            for neighbour in neighbours:
                if rng.random() < 0.5:
                    edges.append((new_node, neighbour))
                else:
                    edges.append((neighbour, new_node))
        updates.append(insert_data_node(new_node, label, edges))

    # 2. Edge insertions between surviving existing nodes.  The
    # social-burst persona concentrates one endpoint on a few hub
    # (highest-degree) nodes.
    hubs: list = []
    if spec.persona == "social-burst" and safe_nodes:
        ranked = sorted(
            safe_nodes,
            key=lambda node: (-(data.out_degree(node) + data.in_degree(node)), repr(node)),
        )
        hubs = ranked[: max(1, len(ranked) // 20)]
    inserted_pairs: set[tuple] = set()
    attempts = 0
    while len(inserted_pairs) < edge_inserts and attempts < edge_inserts * 50:
        attempts += 1
        if len(safe_nodes) < 2:
            break
        if hubs and rng.random() < 0.8:
            hub = rng.choice(hubs)
            other = rng.choice(safe_nodes)
            if other == hub:
                continue
            source, target = (hub, other) if rng.random() < 0.5 else (other, hub)
        else:
            source, target = rng.sample(safe_nodes, 2)
        if data.has_edge(source, target) or (source, target) in inserted_pairs:
            continue
        inserted_pairs.add((source, target))
        updates.append(insert_data_edge(source, target))

    # 3. Edge deletions among pre-existing edges not touching doomed
    # nodes; churn-heavy prefers edges on the doomed cluster's fringe.
    deletable_edges = [
        (source, target)
        for source, target in existing_edges
        if source not in doomed and target not in doomed
    ]
    rng.shuffle(deletable_edges)
    if spec.persona == "churn-heavy" and fringe:
        deletable_edges.sort(
            key=lambda edge: edge[0] not in fringe and edge[1] not in fringe
        )
    for source, target in deletable_edges[:edge_deletes]:
        updates.append(delete_data_edge(source, target))

    # 4. Node deletions last.
    for node in nodes_to_delete:
        updates.append(delete_data_node(node, data.labels_of(node)))
    return updates


def _cluster_order(data: DataGraph, nodes: list, rng: random.Random) -> list:
    """Order ``nodes`` by breadth-first distance from a random seed.

    The churn-heavy persona's deletion targeting: the front of the
    returned list is one connected neighbourhood, so taking a prefix
    deletes a cluster rather than a scattering.
    """
    pool = set(nodes)
    seed_node = rng.choice(nodes)
    ordered: list = []
    seen = {seed_node}
    queue = [seed_node]
    while queue:
        node = queue.pop(0)
        if node in pool:
            ordered.append(node)
        for neighbour in sorted(data.successors(node) | data.predecessors(node), key=repr):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    rest = [node for node in nodes if node not in set(ordered)]
    rng.shuffle(rest)
    return ordered + rest


# ----------------------------------------------------------------------
# Pattern-graph updates
# ----------------------------------------------------------------------
def _pattern_updates(
    pattern: PatternGraph, data: DataGraph, spec: UpdateWorkloadSpec, rng: random.Random
) -> list:
    total = spec.num_pattern_updates
    if total == 0:
        return []
    node_inserts, edge_inserts, edge_deletes, node_deletes = _split_four_ways(total)

    existing_nodes = sorted(pattern.nodes(), key=repr)
    existing_edges = sorted(
        ((source, target) for source, target, _bound in pattern.edges()), key=repr
    )
    data_labels = sorted(data.labels()) or ["N"]
    if not existing_nodes:
        return []

    # Keep the pattern from collapsing: delete at most a third of its nodes.
    max_node_deletes = max(0, min(node_deletes, len(existing_nodes) // 3))
    candidates_for_deletion = list(existing_nodes)
    rng.shuffle(candidates_for_deletion)
    nodes_to_delete = candidates_for_deletion[:max_node_deletes]
    doomed = set(nodes_to_delete)
    safe_nodes = [node for node in existing_nodes if node not in doomed]

    updates = []

    # 1. Node insertions, each wired to one surviving pattern node.
    for position in range(node_inserts):
        label = rng.choice(data_labels)
        new_node = f"pnew:{spec.seed}:{position}"
        edges = []
        if safe_nodes:
            anchor = rng.choice(safe_nodes)
            bound = rng.randint(1, spec.max_bound)
            if rng.random() < 0.5:
                edges.append((anchor, new_node, bound))
            else:
                edges.append((new_node, anchor, bound))
        updates.append(insert_pattern_node(new_node, label, edges))

    # 2. Edge insertions between surviving pattern nodes.
    inserted_pairs: set[tuple] = set()
    attempts = 0
    while len(inserted_pairs) < edge_inserts and attempts < edge_inserts * 50:
        attempts += 1
        if len(safe_nodes) < 2:
            break
        source, target = rng.sample(safe_nodes, 2)
        if pattern.has_edge(source, target) or (source, target) in inserted_pairs:
            continue
        inserted_pairs.add((source, target))
        updates.append(insert_pattern_edge(source, target, rng.randint(1, spec.max_bound)))

    # 3. Edge deletions among pre-existing edges not touching doomed nodes.
    deletable_edges = [
        (source, target)
        for source, target in existing_edges
        if source not in doomed and target not in doomed
    ]
    rng.shuffle(deletable_edges)
    for source, target in deletable_edges[:edge_deletes]:
        updates.append(delete_pattern_edge(source, target, pattern.bound(source, target)))

    # 4. Node deletions last.
    for node in nodes_to_delete:
        updates.append(delete_pattern_node(node, pattern.label_of(node)))
    return updates


def _split_four_ways(total: int, mix: str = "balanced") -> tuple[int, int, int, int]:
    """Split ``total`` into (node inserts, edge inserts, edge deletes, node deletes)."""
    if mix == "balanced":
        base = total // 4
        remainder = total % 4
        parts = [base, base, base, base]
        # Bias the remainder towards edge updates, which dominate real streams.
        order = (1, 2, 0, 3)
        for position in range(remainder):
            parts[order[position]] += 1
        return parts[0], parts[1], parts[2], parts[3]
    # Skewed mixes: largest-remainder apportionment of the weight vector.
    return _split_weighted(total, _MIX_WEIGHTS[mix])


def _split_weighted(total: int, weights: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    """Largest-remainder apportionment of ``total`` over ``weights``.

    Ties are broken towards edge updates (positions 1 and 2), which
    dominate real streams.  A zero weight stays exactly zero.
    """
    weight_sum = sum(weights)
    quotas = [total * weight / weight_sum for weight in weights]
    parts = [int(quota) for quota in quotas]
    order = sorted(
        (position for position in range(4) if weights[position]),
        key=lambda position: (-(quotas[position] - parts[position]), position != 1, position != 2),
    )
    for position in range(total - sum(parts)):
        parts[order[position % len(order)]] += 1
    return parts[0], parts[1], parts[2], parts[3]
