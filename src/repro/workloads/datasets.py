"""Synthetic stand-ins for the paper's five SNAP datasets (Table X).

The raw SNAP graphs (email-EU-core, DBLP, Amazon, Youtube, LiveJournal)
cannot be downloaded in this offline environment and, at up to 34M edges,
would be far beyond what a pure-Python all-pairs shortest-path pipeline
can process anyway.  Each dataset therefore maps to a deterministic
synthetic graph whose *relative* size ordering and density follow the
original at a documented scale-down factor.  Two scales ship with the
library:

* ``"quick"`` — sizes chosen so the whole experiment grid runs in minutes
  on a laptop; used by the tests and the default benchmark harness;
* ``"full"`` — roughly 4× larger, used when more fidelity is wanted.

The original node / edge counts are retained in the spec so reports can
show the scale factor next to every measured number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.workloads.generators import SocialGraphSpec, generate_social_graph


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset stand-in: paper-reported sizes plus synthetic-spec sizes."""

    name: str
    paper_nodes: int
    paper_edges: int
    quick: SocialGraphSpec
    full: SocialGraphSpec

    def spec_for(self, scale: str) -> SocialGraphSpec:
        """Return the generator spec for ``scale`` (``"quick"`` or ``"full"``)."""
        if scale == "quick":
            return self.quick
        if scale == "full":
            return self.full
        raise ValueError(f"unknown scale {scale!r}; expected 'quick' or 'full'")

    def scale_factor(self, scale: str = "quick") -> float:
        """Edge-count scale-down factor of the synthetic stand-in."""
        return self.paper_edges / self.spec_for(scale).num_edges


def _spec(name: str, nodes: int, edges: int, seed: int) -> SocialGraphSpec:
    return SocialGraphSpec(name=name, num_nodes=nodes, num_edges=edges, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    "email-EU-core": DatasetSpec(
        name="email-EU-core",
        paper_nodes=1_005,
        paper_edges=25_571,
        quick=_spec("email-EU-core", 110, 700, seed=11),
        full=_spec("email-EU-core", 420, 2_800, seed=11),
    ),
    "DBLP": DatasetSpec(
        name="DBLP",
        paper_nodes=317_080,
        paper_edges=1_049_866,
        quick=_spec("DBLP", 220, 1_000, seed=23),
        full=_spec("DBLP", 900, 4_200, seed=23),
    ),
    "Amazon": DatasetSpec(
        name="Amazon",
        paper_nodes=334_863,
        paper_edges=925_872,
        quick=_spec("Amazon", 240, 950, seed=37),
        full=_spec("Amazon", 950, 3_900, seed=37),
    ),
    "Youtube": DatasetSpec(
        name="Youtube",
        paper_nodes=1_134_890,
        paper_edges=2_987_624,
        quick=_spec("Youtube", 300, 1_400, seed=41),
        full=_spec("Youtube", 1_200, 5_600, seed=41),
    ),
    "LiveJournal": DatasetSpec(
        name="LiveJournal",
        paper_nodes=3_997_962,
        paper_edges=34_681_189,
        quick=_spec("LiveJournal", 380, 1_900, seed=53),
        full=_spec("LiveJournal", 1_500, 7_800, seed=53),
    ),
}


def dataset_names() -> list[str]:
    """The five dataset names in the paper's (size) order."""
    return list(DATASETS)


def load_dataset(name: str, scale: str = "quick") -> DataGraph:
    """Generate the synthetic stand-in for dataset ``name`` at ``scale``."""
    try:
        spec = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    return generate_social_graph(spec.spec_for(scale))
