"""Command line interface: regenerate the paper's tables and figures.

Examples
--------
Run the quick grid and print Table XI / XII::

    ua-gpnm table-xi
    ua-gpnm table-xii

Regenerate Figure 6 (DBLP) on the quick grid::

    ua-gpnm figure --dataset DBLP

Run everything (slow) and verify each method against the oracle::

    ua-gpnm all --preset full --verify

The adaptive batch execution planner routes each update batch to
per-update, coalesced or partitioned-coalesced SLen maintenance —
``--batch-plan auto`` is the default; force a single strategy with e.g.::

    ua-gpnm table-xi --batch-plan per-update

Record planner telemetry and recalibrate the cost model online::

    ua-gpnm table-xi --telemetry-out telemetry.json --recalibrate-every 50

Run the quick grid on the dense NumPy SLen backend (or ``auto``, which
picks dense above a node-count threshold)::

    ua-gpnm table-xi --slen-backend dense

Serve a dataset as a streaming update service (JSON lines over TCP;
see :mod:`repro.service.server` for the wire protocol), durably — every
accepted delta is journaled before its receipt returns and recovered on
the next start::

    ua-gpnm serve --dataset email-EU-core --port 8765 --deadline 0.05 \
        --journal-dir ./journals
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections.abc import Sequence
from typing import Optional

from repro.experiments.config import ExperimentConfig, full_config, quick_config, tiny_config
from repro.experiments.report import (
    render_figure,
    render_table_xi,
    render_table_xii,
    render_table_xiii,
    render_table_xiv,
)
from repro.experiments.runner import run_experiment
from repro.workloads.datasets import dataset_names


def _config_for(preset: str) -> ExperimentConfig:
    presets = {"tiny": tiny_config, "quick": quick_config, "full": full_config}
    try:
        return presets[preset]()
    except KeyError:
        raise SystemExit(f"unknown preset {preset!r}; expected one of {sorted(presets)}")


def _add_common_options(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Register the shared options on ``parser``.

    The options are accepted both before and after the subcommand.  On
    the subparsers the defaults are suppressed so a value parsed before
    the subcommand (by the main parser) is not clobbered by a subparser
    default afterwards.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--preset",
        default=default("quick"),
        choices=("tiny", "quick", "full"),
        help="experiment grid preset (default: quick)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        default=default(False),
        help="cross-check every method's result against the from-scratch oracle",
    )
    parser.add_argument(
        "--batch-plan",
        default=default(None),
        choices=("auto", "per-update", "coalesced", "partitioned"),
        help=(
            "update-batch execution strategy: auto (the default; "
            "cost-model routing per batch, see the epilog), or a forced "
            "per-update / coalesced / partitioned strategy"
        ),
    )
    parser.add_argument(
        "--coalesce",
        action="store_true",
        default=default(False),
        help="deprecated alias for --batch-plan auto",
    )
    parser.add_argument(
        "--coalesce-min-batch",
        type=int,
        default=default(None),
        metavar="N",
        help=(
            "batch size below which the auto plan stays on per-update "
            "maintenance (default 64, where the benchmark shows the "
            "coalesced path stops losing); forced strategies ignore it"
        ),
    )
    parser.add_argument(
        "--slen-backend",
        default=default("sparse"),
        choices=("sparse", "dense", "auto"),
        help=(
            "SLen storage backend: sparse dict-of-dicts, dense blocked "
            "int32 NumPy grid with vectorized kernels, or auto (dense "
            "above a node-count threshold); default: sparse"
        ),
    )
    parser.add_argument(
        "--dense-block-size",
        type=int,
        default=default(None),
        metavar="N",
        help=(
            "block edge of the blocked dense SLen layout (default 512); "
            "blocks are allocated lazily and all-INF blocks are elided, "
            "so memory scales with occupied blocks instead of |V|^2; "
            "ignored by the sparse backend"
        ),
    )
    parser.add_argument(
        "--telemetry-out",
        default=default(None),
        metavar="PATH",
        help=(
            "record planner telemetry (predicted cost vs measured "
            "maintenance time per batch) and write it here as JSON; feed "
            "the file to `python -m repro.batching.calibrate` to refit "
            "the cost model"
        ),
    )
    parser.add_argument(
        "--recalibrate-every",
        type=int,
        default=default(None),
        metavar="N",
        help=(
            "online recalibration: refit the planner's cost model after "
            "every N telemetry observations and route subsequent cells "
            "with the refit model (0 disables; default 0)"
        ),
    )
    parser.add_argument(
        "--cost-model",
        default=default(None),
        metavar="PATH",
        help=(
            "load the planner's cost model from this JSON file (e.g. a "
            "refit written by repro.batching.calibrate) instead of the "
            "shipped calibration"
        ),
    )


#: ``--help`` epilog: how the execution planner selects a strategy.
_EPILOG = """\
batch plan strategy selection (--batch-plan):
  Every update batch is routed by the execution planner to one of three
  SLen maintenance strategies:

    auto         THE DEFAULT: pick per batch via the planner's cost
                 model (see below)
    per-update   one incremental maintenance pass per data update;
                 always fastest for small or insert-dominated batches
    coalesced    compile the batch to its net effect, then maintain SLen
                 in one pass: all deletions share one affected-region
                 settle per source (or per target, transposed), all
                 insertions one relaxation sweep; wins 1.5-2.5x on
                 deletion-bearing batches above the crossover (~64)
    partitioned  coalesced maintenance whose deletion settle recomputes
                 row-heavy sources through the label partition
                 (Section V); requires a partition (UA-GPNM), pays off
                 on large deletion volumes

  'auto' (the default since the planner soaked behind the differential,
  strategy-equivalence and calibration gates) picks per batch via a
  small cost model (shipped calibration from BENCH_batching.json, or a
  refit loaded with --cost-model): batches under --coalesce-min-batch
  or dominated by insertions stay per-update (insert coalescing is a
  structural non-win); deletion-bearing batches above the crossover go
  coalesced, and partitioned when a partition is available and the
  deletion volume amortises the quotient condensation.  The model
  carries a backend feature column, so the same calibration prices
  sparse and (blocked) dense maintenance differently.  The chosen
  strategy is recorded per run (PlanReport).

SLen backend selection (--slen-backend / --dense-block-size):
  sparse keeps only finite entries in dicts (pure-Python kernels);
  dense stores a blocked int32 grid with vectorized kernels — blocks
  (--dense-block-size, default 512) are allocated lazily and all-INF
  blocks are elided, so memory scales with occupied blocks and the
  dense backend stays usable past 10^4 nodes.  auto picks dense at or
  above 256 nodes.  See the README's "choosing a backend" guide and
  BENCH_slen_backend.json.

planner telemetry and recalibration:
  --telemetry-out records one observation per maintained batch (the
  planner's predicted per-strategy costs vs the measured maintenance
  wall-clock) and writes the log as JSON at the end of the run.  Refit
  the cost model from one or more such logs with

    python -m repro.batching.calibrate telemetry.json --out model.json

  (least-squares refit per strategy, with a guard that keeps the
  incumbent coefficients when the fit predicts held-out observations
  worse) and feed the refit model back via --cost-model.

  --recalibrate-every N does the same online: after every N new
  observations the runner refits mid-run and all subsequent cells are
  routed with the refit model.

multi-pattern subscription serving (serve --patterns):
  One served graph can hold many standing patterns.  Each settle runs
  the shared, pattern-independent maintenance (graph application, SLen
  update, affected-region computation) exactly once, then fans the
  delta out to every subscription: patterns provably untouched by the
  batch are skipped, touched ones pay one amendment pass.  --patterns
  FILE subscribes the pattern set in FILE at startup:

    [{"pattern_id": "fraud",
      "pattern": {"kind": "pattern_graph",
                  "nodes": [{"id": "p0", "label": "A"},
                            {"id": "p1", "label": "B"}],
                  "edges": [["p0", "p1", 2]]},
      "k": 3},
     ...]

  ("bound" is an integer or "*"; "k" arms a standing top-k ranking for
  the push channel).  Without --patterns a single pattern is generated
  (--pattern-nodes/--pattern-edges) and subscribed as "default".
  Clients manage further patterns over the wire ({"op": "subscribe",
  ...} / {"op": "unsubscribe", ...}) and receive per-pattern
  {"kind": "notify", ...} deltas after each settle; reads address one
  pattern with "pattern_id" (omitted: "default").  Subscriptions are
  journaled with --journal-dir and recovered on restart; --no-push
  disables the push channel; --max-subscriptions caps the registry.

record & replay (replay):
  Any write-ahead journal (from serve --journal-dir or a live
  start_capture) is a deterministic recording: every accepted delta in
  admission order, every settle boundary (checkpoint), every
  subscribe/unsubscribe.  `ua-gpnm replay` re-runs a [--from-seq,
  --to-seq] window of it through a fresh service:

    ua-gpnm replay --journal-dir ./journals --verify

  replays the window faithfully (the recorded settle boundaries are
  reproduced exactly) under the default configuration as the
  reference, then re-replays it across the dense SLen backend, all
  three forced batch plans and re-admission, differentially comparing
  per-settle matches / top-k / SLen probes, the final graph and
  lifetime stamps, and as_of reads at every checkpointed version —
  exit 1 on any mismatch.  Give --slen-backend / --batch-plan /
  --mode readmit / --patterns FILE to verify one specific candidate
  configuration instead of the sweep, or drop --verify to just re-run
  and print the outcome.  A journal that predates its first compaction
  has no snapshot base; pass --dataset to supply the graph the
  recorded run started from.  See docs/ARCHITECTURE.md ("Record &
  replay") for the determinism contract.
"""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ua-gpnm",
        description="Reproduce the UA-GPNM evaluation tables and figures.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_common_options(parser, suppress=False)
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in ("table-xi", "table-xii", "table-xiii", "table-xiv", "all"):
        sub = subparsers.add_parser(name, help=f"print {name.replace('-', ' ')}")
        _add_common_options(sub, suppress=True)
    figure = subparsers.add_parser("figure", help="print one of Figures 5-9")
    _add_common_options(figure, suppress=True)
    figure.add_argument(
        "--dataset",
        default="email-EU-core",
        choices=dataset_names(),
        help="dataset / figure to regenerate",
    )
    serve = subparsers.add_parser(
        "serve",
        help="run the streaming update service (JSON lines over TCP)",
    )
    _add_common_options(serve, suppress=True)
    serve.add_argument(
        "--dataset",
        default="email-EU-core",
        choices=dataset_names(),
        help="dataset to register as the served graph",
    )
    serve.add_argument(
        "--pattern-nodes", type=int, default=6, metavar="N",
        help="generated pattern size: nodes (default 6)",
    )
    serve.add_argument(
        "--pattern-edges", type=int, default=6, metavar="N",
        help="generated pattern size: edges (default 6)",
    )
    serve.add_argument(
        "--patterns", default=None, metavar="FILE",
        help=(
            "subscribe the standing patterns in this JSON file instead "
            "of generating one: a list (or {'patterns': [...]}) of "
            "{'pattern_id', 'pattern': <pattern-graph doc>, 'k': "
            "optional} entries; see the epilog for the doc shape"
        ),
    )
    serve.add_argument(
        "--max-subscriptions", type=int, default=None, metavar="N",
        help="cap on standing patterns per graph (default 64)",
    )
    serve.add_argument(
        "--no-push", action="store_true",
        help=(
            "disable per-pattern push notifications; subscriptions "
            "still settle and serve reads (clients poll)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks an ephemeral port; default 8765)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "max time an accepted delta may sit buffered before the "
            "batch is cut regardless of the planner (default 0.05)"
        ),
    )
    serve.add_argument(
        "--max-buffer", type=int, default=None, metavar="N",
        help="cut the buffered batch unconditionally at this size (default 1024)",
    )
    serve.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help=(
            "write-ahead journal directory: every accepted delta is "
            "fsynced here before its receipt is returned, and on startup "
            "any journal found for the graph is recovered (the "
            "uncheckpointed tail is replayed); omit to run without "
            "durability"
        ),
    )
    serve.add_argument(
        "--snapshot-history", type=int, default=None, metavar="N",
        help=(
            "settled snapshot versions retained per graph for "
            "time-travel reads (the 'as_of' request field); older "
            "versions answer with an 'expired' error (default 8)"
        ),
    )
    serve.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help=(
            "refuse updates with an 'overloaded' + retry_after response "
            "once the graph's backlog reaches this size (default 4096)"
        ),
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="close connections that send nothing for this long (default: never)",
    )
    replay_cmd = subparsers.add_parser(
        "replay",
        help="re-run a recorded journal window, optionally differentially verified",
    )
    _add_common_options(replay_cmd, suppress=True)
    replay_cmd.add_argument(
        "--journal-dir", required=True, metavar="DIR",
        help="directory holding the *.journal.jsonl recording(s)",
    )
    replay_cmd.add_argument(
        "--graph", default=None, metavar="KEY",
        help=(
            "which graph's journal to replay (key or file slug); "
            "defaults to the only journal in --journal-dir"
        ),
    )
    replay_cmd.add_argument(
        "--from-seq", type=int, default=None, metavar="SEQ",
        help="first journal seq of the window (default: right after the snapshot base)",
    )
    replay_cmd.add_argument(
        "--to-seq", type=int, default=None, metavar="SEQ",
        help="last journal seq of the window (default: the journal's last seq)",
    )
    replay_cmd.add_argument(
        "--mode", default="faithful", choices=("faithful", "readmit"),
        help=(
            "faithful reproduces the recorded settle boundaries exactly; "
            "readmit pushes the deltas through the replayed "
            "configuration's own admission (final state only)"
        ),
    )
    replay_cmd.add_argument(
        "--patterns", default=None, metavar="FILE",
        help=(
            "replay under this pattern set (same file shape as serve "
            "--patterns) instead of the registry recorded at the window "
            "start"
        ),
    )
    replay_cmd.add_argument(
        "--dataset", default=None, choices=dataset_names(),
        help=(
            "base graph for a journal recorded before its first "
            "compaction (no snapshot record to start from)"
        ),
    )
    replay_cmd.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the replay/verification report here as JSON",
    )
    return parser


def _run_serve(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """The ``serve`` subcommand: register the dataset and serve forever.

    SIGINT and SIGTERM trigger a graceful shutdown: the listener stops
    accepting, open connections are closed, every buffered delta drains
    (settles or is durably quarantined) and the process exits 0.  With
    ``--journal-dir``, a journal left by a previous (possibly killed)
    process is recovered before the server starts answering.
    """
    import asyncio
    import json
    import signal

    from repro.service import (
        DEFAULT_PATTERN_ID,
        ServiceConfig,
        ServiceServer,
        StreamingUpdateService,
        parse_pattern_set,
    )
    from repro.workloads.datasets import load_dataset
    from repro.workloads.pattern_gen import pattern_for_dataset

    if args.deadline is not None:
        config = dataclasses.replace(config, service_deadline_seconds=args.deadline)
    if args.max_buffer is not None:
        config = dataclasses.replace(config, service_max_buffer=args.max_buffer)
    if args.journal_dir is not None:
        config = dataclasses.replace(config, journal_dir=args.journal_dir)
    if args.snapshot_history is not None:
        config = dataclasses.replace(config, service_snapshot_history=args.snapshot_history)
    if args.max_subscriptions is not None:
        config = dataclasses.replace(config, service_max_subscriptions=args.max_subscriptions)
    if args.no_push:
        config = dataclasses.replace(config, service_push_notifications=False)
    data = load_dataset(args.dataset, scale=config.dataset_scale)
    if args.patterns is not None:
        with open(args.patterns, encoding="utf-8") as handle:
            subscriptions = parse_pattern_set(json.load(handle))
    else:
        pattern = pattern_for_dataset(
            sorted(data.labels()), args.pattern_nodes, args.pattern_edges, seed=config.seed
        )
        from repro.service import Subscription

        subscriptions = [Subscription(DEFAULT_PATTERN_ID, pattern)]

    async def _serve() -> None:
        service = StreamingUpdateService(ServiceConfig.from_experiment(config))
        await service.register(args.dataset, data)
        for subscription in subscriptions:
            # replace=True keeps a journal-recovered subscription with
            # the same definition instead of erroring on the duplicate.
            await service.subscribe(
                args.dataset,
                subscription.pattern_id,
                subscription.pattern,
                k=subscription.k,
                replace=True,
            )
        server_kwargs = {}
        if args.max_pending is not None:
            server_kwargs["max_pending"] = args.max_pending
        if args.idle_timeout is not None:
            server_kwargs["idle_timeout"] = args.idle_timeout
        server = ServiceServer(service, host=args.host, port=args.port, **server_kwargs)
        host, port = await server.start()
        print(
            f"[serve] {len(service.subscription_docs(args.dataset))} "
            "standing pattern(s) subscribed",
            file=sys.stderr,
        )
        print(
            f"[serve] graph {args.dataset!r} "
            f"({data.number_of_nodes} nodes, {data.number_of_edges} edges) "
            f"on {host}:{port}",
            file=sys.stderr,
        )
        if config.journal_dir:
            stats = service.stats(args.dataset)
            journal = stats.get("journal") or {}
            print(
                f"[serve] journal {journal.get('path')} "
                f"(recovered {stats.get('recovered', 0)} delta(s), "
                f"skipped {stats.get('recovery_skipped', 0)})",
                file=sys.stderr,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loop
                pass
        serve_task = asyncio.create_task(server.serve_forever())
        stop_task = asyncio.create_task(stop.wait())
        try:
            done, _ = await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if serve_task in done:
                serve_task.result()
        finally:
            print("[serve] shutting down: draining buffered deltas", file=sys.stderr)
            serve_task.cancel()
            stop_task.cancel()
            for task in (serve_task, stop_task):
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.remove_signal_handler(signum)
                except NotImplementedError:  # pragma: no cover
                    pass
            await server.close()
            await service.close()
            print("[serve] shutdown complete", file=sys.stderr)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        print("[serve] shutting down", file=sys.stderr)
    return 0


def _run_replay(args: argparse.Namespace, config: ExperimentConfig) -> int:
    """The ``replay`` subcommand: re-run (and verify) a recorded window.

    Without ``--verify`` the window is replayed once under the
    requested configuration and the run summary is printed.  With
    ``--verify`` the window is first replayed faithfully under the
    default configuration (the reference) and then re-replayed under
    the candidate configuration(s) — the flags given, or the standard
    sweep (dense backend, the three forced batch plans, re-admission)
    when none are — with every observation differentially compared.
    Exits 1 on any mismatch.
    """
    import asyncio
    import json
    from pathlib import Path

    from repro.replay import ReplayLog, ReplayVerifier, replay
    from repro.service import parse_pattern_set
    from repro.service.journal import journal_slug

    directory = Path(args.journal_dir)
    journals = ReplayLog.discover(directory)
    if not journals:
        raise SystemExit(f"no *.journal.jsonl recordings under {directory}")
    if args.graph is not None:
        slug = args.graph if args.graph in journals else journal_slug(args.graph)
        if slug not in journals:
            raise SystemExit(
                f"no journal for graph {args.graph!r} under {directory}; "
                f"recorded: {', '.join(sorted(journals))}"
            )
    elif len(journals) == 1:
        (slug,) = journals
    else:
        raise SystemExit(
            f"{len(journals)} journals under {directory}; pick one with "
            f"--graph ({', '.join(sorted(journals))})"
        )
    base_graph = None
    if args.dataset is not None:
        from repro.workloads.datasets import load_dataset

        base_graph = load_dataset(args.dataset, scale=config.dataset_scale)
    log = ReplayLog(journals[slug])
    window = log.window(args.from_seq, args.to_seq, base_graph=base_graph)
    described = window.describe()
    print(
        f"[replay] {slug}: seqs [{window.from_seq}, {window.to_seq}] — "
        f"{window.delta_count} delta(s), {window.update_count} update(s), "
        f"{len(window.settle_groups())} settle group(s), "
        f"{len(window.subscriptions)} starting subscription(s)",
        file=sys.stderr,
    )

    overrides: dict = {"mode": args.mode}
    if getattr(args, "slen_backend", "sparse") != "sparse":
        overrides["slen_backend"] = args.slen_backend
    if getattr(args, "dense_block_size", None) is not None:
        overrides["dense_block_size"] = args.dense_block_size
    if getattr(args, "batch_plan", None) is not None:
        overrides["batch_plan"] = args.batch_plan
    if args.patterns is not None:
        with open(args.patterns, encoding="utf-8") as handle:
            overrides["subscriptions"] = parse_pattern_set(json.load(handle))

    def _write_report(report_doc: dict) -> None:
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(report_doc, handle, indent=2, default=str)
            print(f"[replay] report written to {args.out}", file=sys.stderr)

    if not args.verify:
        run = asyncio.run(replay(window, key=slug, **overrides))
        print(
            f"[replay] {run.mode}: {run.settle_count} settle(s), "
            f"{run.updates_accepted} update(s) accepted "
            f"({run.updates_rejected} rejected) in {run.wall_seconds:.3f}s "
            f"→ final version {run.final.version}, "
            f"{len(run.final.nodes)} node(s), {len(run.final.edges)} edge(s)"
        )
        _write_report({"window": described, "run": run.as_dict()})
        return 0

    explicit = {key: value for key, value in overrides.items() if key != "mode"}
    if explicit or args.mode != "faithful":
        candidates = [dict(overrides)]
    else:
        candidates = [
            {"slen_backend": "dense"},
            {"batch_plan": "per-update"},
            {"batch_plan": "coalesced"},
            {"batch_plan": "partitioned"},
            {"mode": "readmit"},
        ]

    async def _verify() -> tuple[int, dict]:
        verifier = ReplayVerifier()
        reference = await replay(window, key=slug)
        outcomes = []
        failures = 0
        for candidate_overrides in candidates:
            run = await replay(window, key=slug, **candidate_overrides)
            report = verifier.compare(reference, run)
            label = ", ".join(
                f"{key}={value}" for key, value in sorted(candidate_overrides.items())
            ) or "defaults"
            status = "OK" if report.ok else f"{len(report.mismatches)} mismatch(es)"
            print(f"[replay] verify {label}: {status}")
            if not report.ok:
                failures += 1
                print(report.summary(), file=sys.stderr)
            outcomes.append(
                {
                    "overrides": run.overrides,
                    "report": report.as_dict(),
                    "wall_seconds": run.wall_seconds,
                }
            )
        return failures, {
            "window": described,
            "reference": reference.overrides,
            "candidates": outcomes,
        }

    failures, report_doc = asyncio.run(_verify())
    _write_report(report_doc)
    if failures:
        print(f"[replay] FAILED: {failures} candidate(s) diverged", file=sys.stderr)
        return 1
    print(f"[replay] all {len(candidates)} candidate(s) equivalent", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``ua-gpnm`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    config = _config_for(args.preset)
    if getattr(args, "batch_plan", None) is not None:
        config = dataclasses.replace(config, batch_plan=args.batch_plan)
    elif args.coalesce:
        print(
            "[deprecated] --coalesce is an alias for --batch-plan auto",
            file=sys.stderr,
        )
        config = dataclasses.replace(config, batch_plan="auto")
    if getattr(args, "coalesce_min_batch", None) is not None:
        config = dataclasses.replace(config, coalesce_min_batch=args.coalesce_min_batch)
    if args.slen_backend != "sparse":
        config = dataclasses.replace(config, slen_backend=args.slen_backend)
    if getattr(args, "dense_block_size", None) is not None:
        config = dataclasses.replace(config, dense_block_size=args.dense_block_size)
    if getattr(args, "telemetry_out", None) is not None:
        config = dataclasses.replace(config, telemetry_path=args.telemetry_out)
    if getattr(args, "recalibrate_every", None) is not None:
        config = dataclasses.replace(config, recalibrate_every=args.recalibrate_every)
    if getattr(args, "cost_model", None) is not None:
        config = dataclasses.replace(config, cost_model_path=args.cost_model)

    if args.command == "serve":
        return _run_serve(args, config)
    if args.command == "replay":
        return _run_replay(args, config)

    def progress(message: str) -> None:
        print(f"[run] {message}", file=sys.stderr)

    records = run_experiment(config, verify_against_oracle=args.verify, progress=progress)
    if args.verify:
        mismatches = [record for record in records if record.matches_oracle is False]
        if mismatches:
            print(f"WARNING: {len(mismatches)} method results differ from the oracle", file=sys.stderr)
        else:
            print("verification: every method matches the from-scratch oracle", file=sys.stderr)

    if args.command == "table-xi":
        print(render_table_xi(records))
    elif args.command == "table-xii":
        print(render_table_xii(records))
    elif args.command == "table-xiii":
        print(render_table_xiii(records))
    elif args.command == "table-xiv":
        print(render_table_xiv(records))
    elif args.command == "figure":
        print(render_figure(records, args.dataset))
    elif args.command == "all":
        print(render_table_xi(records))
        print()
        print(render_table_xii(records))
        print()
        print(render_table_xiii(records))
        print()
        print(render_table_xiv(records))
        for dataset in config.datasets:
            print()
            print(render_figure(records, dataset))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
