"""Command line interface: regenerate the paper's tables and figures.

Examples
--------
Run the quick grid and print Table XI / XII::

    ua-gpnm table-xi
    ua-gpnm table-xii

Regenerate Figure 6 (DBLP) on the quick grid::

    ua-gpnm figure --dataset DBLP

Run everything (slow) and verify each method against the oracle::

    ua-gpnm all --preset full --verify

Run the quick grid with the batch compiler + coalesced SLen maintenance::

    ua-gpnm table-xi --coalesce

Run the quick grid on the dense NumPy SLen backend (or ``auto``, which
picks dense above a node-count threshold)::

    ua-gpnm table-xi --slen-backend dense
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from collections.abc import Sequence
from typing import Optional

from repro.experiments.config import ExperimentConfig, full_config, quick_config, tiny_config
from repro.experiments.report import (
    render_figure,
    render_table_xi,
    render_table_xii,
    render_table_xiii,
    render_table_xiv,
)
from repro.experiments.runner import run_experiment
from repro.workloads.datasets import dataset_names


def _config_for(preset: str) -> ExperimentConfig:
    presets = {"tiny": tiny_config, "quick": quick_config, "full": full_config}
    try:
        return presets[preset]()
    except KeyError:
        raise SystemExit(f"unknown preset {preset!r}; expected one of {sorted(presets)}")


def _add_common_options(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Register the shared options on ``parser``.

    The options are accepted both before and after the subcommand.  On
    the subparsers the defaults are suppressed so a value parsed before
    the subcommand (by the main parser) is not clobbered by a subparser
    default afterwards.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--preset",
        default=default("quick"),
        choices=("tiny", "quick", "full"),
        help="experiment grid preset (default: quick)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        default=default(False),
        help="cross-check every method's result against the from-scratch oracle",
    )
    parser.add_argument(
        "--coalesce",
        action="store_true",
        default=default(False),
        help="compile each update batch and maintain SLen in one coalesced pass",
    )
    parser.add_argument(
        "--coalesce-min-batch",
        type=int,
        default=default(None),
        metavar="N",
        help=(
            "batch size below which --coalesce falls back to per-update "
            "maintenance (default 64, where the benchmark shows the "
            "coalesced path stops losing)"
        ),
    )
    parser.add_argument(
        "--slen-backend",
        default=default("sparse"),
        choices=("sparse", "dense", "auto"),
        help=(
            "SLen storage backend: sparse dict-of-dicts, dense int32 NumPy "
            "matrix with vectorized kernels, or auto (dense above a "
            "node-count threshold); default: sparse"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ua-gpnm",
        description="Reproduce the UA-GPNM evaluation tables and figures.",
    )
    _add_common_options(parser, suppress=False)
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in ("table-xi", "table-xii", "table-xiii", "table-xiv", "all"):
        sub = subparsers.add_parser(name, help=f"print {name.replace('-', ' ')}")
        _add_common_options(sub, suppress=True)
    figure = subparsers.add_parser("figure", help="print one of Figures 5-9")
    _add_common_options(figure, suppress=True)
    figure.add_argument(
        "--dataset",
        default="email-EU-core",
        choices=dataset_names(),
        help="dataset / figure to regenerate",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``ua-gpnm`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    config = _config_for(args.preset)
    if args.coalesce:
        config = dataclasses.replace(config, coalesce_updates=True)
    if getattr(args, "coalesce_min_batch", None) is not None:
        config = dataclasses.replace(config, coalesce_min_batch=args.coalesce_min_batch)
    if args.slen_backend != "sparse":
        config = dataclasses.replace(config, slen_backend=args.slen_backend)

    def progress(message: str) -> None:
        print(f"[run] {message}", file=sys.stderr)

    records = run_experiment(config, verify_against_oracle=args.verify, progress=progress)
    if args.verify:
        mismatches = [record for record in records if record.matches_oracle is False]
        if mismatches:
            print(f"WARNING: {len(mismatches)} method results differ from the oracle", file=sys.stderr)
        else:
            print("verification: every method matches the from-scratch oracle", file=sys.stderr)

    if args.command == "table-xi":
        print(render_table_xi(records))
    elif args.command == "table-xii":
        print(render_table_xii(records))
    elif args.command == "table-xiii":
        print(render_table_xiii(records))
    elif args.command == "table-xiv":
        print(render_table_xiv(records))
    elif args.command == "figure":
        print(render_figure(records, args.dataset))
    elif args.command == "all":
        print(render_table_xi(records))
        print()
        print(render_table_xii(records))
        print()
        print(render_table_xiii(records))
        print()
        print(render_table_xiv(records))
        for dataset in config.datasets:
            print()
            print(render_figure(records, dataset))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
