"""The paper's running example (Figures 1, 2 and 4, Tables I and III–IX).

The data graph's edge set is reconstructed from the shortest path length
matrix of Table III (every pair at distance 1 is an edge); the
reconstruction reproduces Table III exactly, which the test suite checks.
The pattern graph follows Example 1: a PM must reach an SE and an S
within 3 hops, and an SE must reach a TE within 4 hops.

Note: Table I of the paper lists only ``PM1`` as the match of ``PM``, but
Example 5 and Example 7 both treat ``PM2`` as matched as well (UP1 makes
``PM2`` a removal candidate, which requires it to be in ``IQuery``).  The
expected result returned by :func:`table1_expected` therefore includes
``PM2``, consistent with the examples and with bounded graph simulation.
"""

from __future__ import annotations

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    UpdateBatch,
    insert_data_edge,
    insert_pattern_edge,
)

#: Edges of the Figure 1(a) / 2(a) data graph, reconstructed from Table III.
FIGURE1_EDGES: tuple[tuple[str, str], ...] = (
    ("PM1", "SE2"),
    ("PM1", "DB1"),
    ("PM2", "SE1"),
    ("SE1", "PM2"),
    ("SE1", "SE2"),
    ("SE1", "S1"),
    ("SE2", "TE1"),
    ("SE2", "DB1"),
    ("S1", "DB1"),
    ("TE1", "SE2"),
    ("TE2", "S1"),
    ("DB1", "SE1"),
)

#: Node labels of the Figure 1(a) data graph.
FIGURE1_LABELS: dict[str, str] = {
    "PM1": "PM",
    "PM2": "PM",
    "SE1": "SE",
    "SE2": "SE",
    "S1": "S",
    "TE1": "TE",
    "TE2": "TE",
    "DB1": "DB",
}


def figure1_data_graph() -> DataGraph:
    """The data graph ``GD`` of Figure 1(a) / Figure 2(a)."""
    return DataGraph(nodes=FIGURE1_LABELS, edges=FIGURE1_EDGES)


def figure1_pattern_graph() -> PatternGraph:
    """The pattern graph ``GP`` of Figure 1(b) / Figure 2(c).

    Edges: ``PM -SE`` within 3 hops, ``PM - S`` within 3 hops and
    ``SE - TE`` within 4 hops (Example 1).
    """
    pattern = PatternGraph()
    for label in ("PM", "SE", "TE", "S"):
        pattern.add_node(label, label)
    pattern.add_edge("PM", "SE", 3)
    pattern.add_edge("PM", "S", 3)
    pattern.add_edge("SE", "TE", 4)
    return pattern


def table1_expected() -> dict[str, frozenset[str]]:
    """The IQuery node-matching result (Table I, corrected per Example 5)."""
    return {
        "PM": frozenset({"PM1", "PM2"}),
        "SE": frozenset({"SE1", "SE2"}),
        "S": frozenset({"S1"}),
        "TE": frozenset({"TE1", "TE2"}),
    }


def table3_slen_expected() -> dict[tuple[str, str], float]:
    """The finite entries of the SLen matrix of Table III."""
    rows = {
        "PM1": {"PM2": 3, "SE1": 2, "SE2": 1, "S1": 3, "TE1": 2, "DB1": 1},
        "PM2": {"SE1": 1, "SE2": 2, "S1": 2, "TE1": 3, "DB1": 3},
        "SE1": {"PM2": 1, "SE2": 1, "S1": 1, "TE1": 2, "DB1": 2},
        "SE2": {"PM2": 3, "SE1": 2, "S1": 3, "TE1": 1, "DB1": 1},
        "S1": {"PM2": 3, "SE1": 2, "SE2": 3, "TE1": 4, "DB1": 1},
        "TE1": {"PM2": 4, "SE1": 3, "SE2": 1, "S1": 4, "DB1": 2},
        "TE2": {"PM2": 4, "SE1": 3, "SE2": 4, "S1": 1, "TE1": 5, "DB1": 2},
        "DB1": {"PM2": 2, "SE1": 1, "SE2": 2, "S1": 2, "TE1": 3},
    }
    expected: dict[tuple[str, str], float] = {}
    for source in FIGURE1_LABELS:
        expected[(source, source)] = 0
        for target, distance in rows.get(source, {}).items():
            expected[(source, target)] = distance
    return expected


def example2_updates() -> UpdateBatch:
    """The four updates of Example 2 / Figure 2 (UD1, UD2, UP1, UP2).

    Data updates first, then pattern updates, matching the processing
    order of every algorithm in :mod:`repro.algorithms`.
    """
    ud1 = insert_data_edge("SE1", "TE2")
    ud2 = insert_data_edge("DB1", "S1")
    up1 = insert_pattern_edge("PM", "TE", 2)
    up2 = insert_pattern_edge("S", "TE", 4)
    return UpdateBatch([ud1, ud2, up1, up2])


def example2_update_names() -> dict[str, object]:
    """The Example 2 updates keyed by their paper names (UD1, UD2, UP1, UP2)."""
    batch = example2_updates()
    return {"UD1": batch[0], "UD2": batch[1], "UP1": batch[2], "UP2": batch[3]}


def figure4_data_graph() -> DataGraph:
    """The Figure 4(a) data graph used by the partition examples (14 and 15)."""
    labels = {
        "SE1": "SE",
        "SE2": "SE",
        "SE3": "SE",
        "SE4": "SE",
        "TE1": "TE",
        "TE2": "TE",
        "TE3": "TE",
        "PM1": "PM",
    }
    edges = (
        ("SE1", "SE2"),
        ("SE2", "SE3"),
        ("SE3", "SE4"),
        ("SE1", "PM1"),
        ("PM1", "SE4"),
        ("SE2", "TE1"),
        ("TE1", "TE2"),
        ("TE2", "TE3"),
    )
    return DataGraph(nodes=labels, edges=edges)


def table8_expected() -> dict[tuple[str, str], float]:
    """Intra-partition shortest path lengths of ``P_SE`` (Table VIII)."""
    inf = float("inf")
    return {
        ("SE1", "SE1"): 0, ("SE1", "SE2"): 1, ("SE1", "SE3"): 2, ("SE1", "SE4"): 2,
        ("SE2", "SE1"): inf, ("SE2", "SE2"): 0, ("SE2", "SE3"): 1, ("SE2", "SE4"): 2,
        ("SE3", "SE1"): inf, ("SE3", "SE2"): inf, ("SE3", "SE3"): 0, ("SE3", "SE4"): 1,
        ("SE4", "SE1"): inf, ("SE4", "SE2"): inf, ("SE4", "SE3"): inf, ("SE4", "SE4"): 0,
    }


def table9_expected() -> dict[tuple[str, str], float]:
    """Cross-partition shortest path lengths from ``P_SE`` to ``P_TE`` (Table IX)."""
    inf = float("inf")
    return {
        ("SE1", "TE1"): 2, ("SE1", "TE2"): 3, ("SE1", "TE3"): 4,
        ("SE2", "TE1"): 1, ("SE2", "TE2"): 2, ("SE2", "TE3"): 3,
        ("SE3", "TE1"): inf, ("SE3", "TE2"): inf, ("SE3", "TE3"): inf,
        ("SE4", "TE1"): inf, ("SE4", "TE2"): inf, ("SE4", "TE3"): inf,
    }
