"""repro — a reproduction of "Updates-Aware Graph Pattern based Node Matching".

The package implements the paper's contribution (UA-GPNM) together with
every substrate it depends on: a directed labelled graph model, bounded
graph simulation, all-pairs shortest path length maintenance, label-based
graph partitioning, elimination-relationship detection, the EH-Tree
index, the compared baselines (INC-GPNM, EH-GPNM, UA-GPNM-NoPar, a
from-scratch oracle), synthetic workloads standing in for the five SNAP
datasets, and the experiment harness that regenerates every table and
figure of the evaluation section.

Quickstart
----------
>>> from repro import paper_example, UAGPNM
>>> data = paper_example.figure1_data_graph()
>>> pattern = paper_example.figure1_pattern_graph()
>>> engine = UAGPNM(pattern, data)
>>> sorted(engine.initial_result.matches("SE"))
['SE1', 'SE2']
>>> result = engine.subsequent_query(paper_example.example2_updates())
>>> result.stats.refinement_passes
1

Batch compilation, coalesced maintenance and the execution planner
------------------------------------------------------------------
Every algorithm accepts ``batch_plan=...``.  On a coalescing route, a
subsequent query first runs the batch through the **update-batch
compiler** (:func:`repro.batching.compile_batch`), which canonicalises
the stream — duplicates are dropped, inverse insert/delete pairs cancel,
edge operations subsumed by a node deletion disappear, a node deleted
and re-inserted survives as a resurrection pair, and the survivors are
reordered so they are always applicable.  The surviving data updates
are then maintained by **one coalesced ``SLen`` pass**
(:func:`repro.batching.coalesce_slen`): all deletions share a single
affected-region recompute per source (or per target — the transposed
sweep) and all insertions are applied in one multi-source relaxation
sweep.  With ``batch_plan="partitioned"`` the deletion settle routes
row-heavy sources through the label partition
(:func:`repro.partition.coalesce_slen_partitioned`).
``batch_plan="auto"`` — the **default** — has the execution planner
(:func:`repro.batching.plan_batch`) pick the cheapest strategy per
batch from an explicit, serializable
:class:`~repro.batching.CostModel`.  Results are bit-identical on every
route (``tests/test_differential.py`` and
``tests/batching/test_planner_equivalence.py`` check every method
and every forced strategy against the from-scratch oracle across 50+
seeds); on coalescing routes the cost scales with the batch's *net*
delta instead of its raw length — ``benchmarks/bench_batching.py``
measures the gap and the planner's routing accuracy.

>>> engine = UAGPNM(pattern, data, batch_plan="coalesced")
>>> engine.subsequent_query(paper_example.example2_updates()).stats.coalesced_batches
1

The experiment harness exposes the same switch as
``ExperimentConfig(batch_plan=...)`` and ``ua-gpnm --batch-plan``.
Auto-planned batches below the ``coalesce_min_batch`` crossover
(default 64, from the benchmark) stay on per-update maintenance — one
planner rule among several; ``ua-gpnm --help`` documents the full
strategy-selection policy.

Planner telemetry and self-calibration
--------------------------------------
The planner measures itself: hand any algorithm (or the harness, via
``ExperimentConfig(telemetry_path=...)`` / ``ua-gpnm
--telemetry-out``) a :class:`~repro.batching.TelemetryLog` and every
maintained batch records a :class:`~repro.batching.PlanObservation` —
the predicted per-strategy costs next to the measured maintenance
wall-clock.  :func:`repro.batching.calibrate.refit_cost_model`
least-squares refits the cost model from those observations, guarded
against fits that predict held-out observations worse than the
incumbent; ``recalibrate_every`` (CLI ``--recalibrate-every``) swaps
refit models in mid-run, and the CI ``calibration`` job refits from the
benchmark grid on every push and gates on routing-accuracy
non-regression.  UA-GPNM additionally caches its
:class:`~repro.partition.LabelPartition` across batches (invalidated on
:attr:`DataGraph.version <repro.graph.digraph.DataGraph.version>`
changes, maintained incrementally per update), so the partitioned
route's per-batch setup cost no longer distorts the telemetry it is
judged by.

Pluggable ``SLen`` storage backends
-----------------------------------
The shortest-path matrix that everything above is built on accepts a
``backend`` selection (``"sparse"`` / ``"dense"`` / ``"auto"``, see
:mod:`repro.spl.backend`): the sparse dict-of-dicts default stores only
finite entries, while the dense NumPy backend keeps a contiguous
``int32`` matrix and replaces the three hot maintenance kernels with
vectorized equivalents (frontier-array multi-source BFS construction,
rank-1 broadcast insertion relaxation, batched affected-region deletion
settling).  Every algorithm takes ``slen_backend=...``, the harness
``ExperimentConfig(slen_backend=...)``, and the CLI
``ua-gpnm --slen-backend dense``; results are identical on both backends
(the differential harness runs every method under each) and
``benchmarks/bench_slen_backend.py`` measures the kernel speedups.
"""

from repro import paper_example
from repro.batching import (
    DEFAULT_COST_MODEL,
    BatchStatistics,
    CoalescedMaintenance,
    CompilationReport,
    CompiledBatch,
    CostModel,
    PlanObservation,
    PlanReport,
    TelemetryLog,
    coalesce_slen,
    compile_batch,
    plan_batch,
)
from repro.algorithms import (
    BatchGPNM,
    EHGPNM,
    GPNMAlgorithm,
    IncGPNM,
    QueryStats,
    SubsequentResult,
    UAGPNM,
)
from repro.elimination import EHTree, EliminationRelation, EliminationType
from repro.graph import (
    DataGraph,
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    PatternGraph,
    STAR,
    Update,
    UpdateBatch,
    UpdateKind,
)
from repro.matching import MatchResult, bounded_simulation, gpnm_query
from repro.partition import (
    LabelPartition,
    build_slen_partitioned,
    coalesce_slen_partitioned,
)
from repro.spl import (
    BACKEND_NAMES,
    DENSE_AUTO_THRESHOLD,
    INF,
    SLenBackend,
    SLenMatrix,
    fold_deltas,
    update_slen,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "paper_example",
    # graphs and updates
    "DataGraph",
    "PatternGraph",
    "STAR",
    "GraphKind",
    "UpdateKind",
    "Update",
    "EdgeInsertion",
    "EdgeDeletion",
    "NodeInsertion",
    "NodeDeletion",
    "UpdateBatch",
    # shortest paths
    "INF",
    "SLenMatrix",
    "SLenBackend",
    "BACKEND_NAMES",
    "DENSE_AUTO_THRESHOLD",
    "update_slen",
    "fold_deltas",
    # batching
    "CompilationReport",
    "CompiledBatch",
    "compile_batch",
    "CoalescedMaintenance",
    "coalesce_slen",
    "BatchStatistics",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "PlanReport",
    "plan_batch",
    "PlanObservation",
    "TelemetryLog",
    # partition
    "LabelPartition",
    "build_slen_partitioned",
    "coalesce_slen_partitioned",
    # matching
    "MatchResult",
    "gpnm_query",
    "bounded_simulation",
    # elimination
    "EliminationType",
    "EliminationRelation",
    "EHTree",
    # algorithms
    "GPNMAlgorithm",
    "QueryStats",
    "SubsequentResult",
    "BatchGPNM",
    "IncGPNM",
    "EHGPNM",
    "UAGPNM",
]
