"""repro — a reproduction of "Updates-Aware Graph Pattern based Node Matching".

The package implements the paper's contribution (UA-GPNM) together with
every substrate it depends on: a directed labelled graph model, bounded
graph simulation, all-pairs shortest path length maintenance, label-based
graph partitioning, elimination-relationship detection, the EH-Tree
index, the compared baselines (INC-GPNM, EH-GPNM, UA-GPNM-NoPar, a
from-scratch oracle), synthetic workloads standing in for the five SNAP
datasets, and the experiment harness that regenerates every table and
figure of the evaluation section.

Quickstart
----------
>>> from repro import paper_example, UAGPNM
>>> data = paper_example.figure1_data_graph()
>>> pattern = paper_example.figure1_pattern_graph()
>>> engine = UAGPNM(pattern, data)
>>> sorted(engine.initial_result.matches("SE"))
['SE1', 'SE2']
>>> result = engine.subsequent_query(paper_example.example2_updates())
>>> result.stats.refinement_passes
1

Batch compilation, coalesced maintenance and the execution planner
------------------------------------------------------------------
Every algorithm accepts ``batch_plan=...``.  On a coalescing route, a
subsequent query first runs the batch through the **update-batch
compiler** (:func:`repro.batching.compile_batch`), which canonicalises
the stream — duplicates are dropped, inverse insert/delete pairs cancel,
edge operations subsumed by a node deletion disappear, a node deleted
and re-inserted survives as a resurrection pair, and the survivors are
reordered so they are always applicable.  The surviving data updates
are then maintained by **one coalesced ``SLen`` pass**
(:func:`repro.batching.coalesce_slen`): all deletions share a single
affected-region recompute per source (or per target — the transposed
sweep) and all insertions are applied in one multi-source relaxation
sweep.  With ``batch_plan="partitioned"`` the deletion settle routes
row-heavy sources through the label partition
(:func:`repro.partition.coalesce_slen_partitioned`), and with
``batch_plan="auto"`` the **execution planner**
(:func:`repro.batching.plan_batch`) picks the cheapest strategy per
batch from a cost model calibrated on the benchmark crossovers.
Results are bit-identical on every route (``tests/test_differential.py``
and ``tests/batching/test_planner_equivalence.py`` check every method
and every forced strategy against the from-scratch oracle across 50+
seeds); on coalescing routes the cost scales with the batch's *net*
delta instead of its raw length — ``benchmarks/bench_batching.py``
measures the gap and the planner's routing accuracy.

>>> engine = UAGPNM(pattern, data, batch_plan="coalesced")
>>> engine.subsequent_query(paper_example.example2_updates()).stats.coalesced_batches
1

The experiment harness exposes the same switch as
``ExperimentConfig(batch_plan="auto")`` and ``ua-gpnm --batch-plan
auto``.  Auto-planned batches below the ``coalesce_min_batch``
crossover (default 64, from the benchmark) stay on per-update
maintenance — one planner rule among several; ``ua-gpnm --help``
documents the full strategy-selection policy.

Pluggable ``SLen`` storage backends
-----------------------------------
The shortest-path matrix that everything above is built on accepts a
``backend`` selection (``"sparse"`` / ``"dense"`` / ``"auto"``, see
:mod:`repro.spl.backend`): the sparse dict-of-dicts default stores only
finite entries, while the dense NumPy backend keeps a contiguous
``int32`` matrix and replaces the three hot maintenance kernels with
vectorized equivalents (frontier-array multi-source BFS construction,
rank-1 broadcast insertion relaxation, batched affected-region deletion
settling).  Every algorithm takes ``slen_backend=...``, the harness
``ExperimentConfig(slen_backend=...)``, and the CLI
``ua-gpnm --slen-backend dense``; results are identical on both backends
(the differential harness runs every method under each) and
``benchmarks/bench_slen_backend.py`` measures the kernel speedups.
"""

from repro import paper_example
from repro.batching import (
    BatchStatistics,
    CoalescedMaintenance,
    CompilationReport,
    CompiledBatch,
    PlanReport,
    coalesce_slen,
    compile_batch,
    plan_batch,
)
from repro.algorithms import (
    BatchGPNM,
    EHGPNM,
    GPNMAlgorithm,
    IncGPNM,
    QueryStats,
    SubsequentResult,
    UAGPNM,
)
from repro.elimination import EHTree, EliminationRelation, EliminationType
from repro.graph import (
    DataGraph,
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    PatternGraph,
    STAR,
    Update,
    UpdateBatch,
    UpdateKind,
)
from repro.matching import MatchResult, bounded_simulation, gpnm_query
from repro.partition import (
    LabelPartition,
    build_slen_partitioned,
    coalesce_slen_partitioned,
)
from repro.spl import (
    BACKEND_NAMES,
    DENSE_AUTO_THRESHOLD,
    INF,
    SLenBackend,
    SLenMatrix,
    fold_deltas,
    update_slen,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "paper_example",
    # graphs and updates
    "DataGraph",
    "PatternGraph",
    "STAR",
    "GraphKind",
    "UpdateKind",
    "Update",
    "EdgeInsertion",
    "EdgeDeletion",
    "NodeInsertion",
    "NodeDeletion",
    "UpdateBatch",
    # shortest paths
    "INF",
    "SLenMatrix",
    "SLenBackend",
    "BACKEND_NAMES",
    "DENSE_AUTO_THRESHOLD",
    "update_slen",
    "fold_deltas",
    # batching
    "CompilationReport",
    "CompiledBatch",
    "compile_batch",
    "CoalescedMaintenance",
    "coalesce_slen",
    "BatchStatistics",
    "PlanReport",
    "plan_batch",
    # partition
    "LabelPartition",
    "build_slen_partitioned",
    "coalesce_slen_partitioned",
    # matching
    "MatchResult",
    "gpnm_query",
    "bounded_simulation",
    # elimination
    "EliminationType",
    "EliminationRelation",
    "EHTree",
    # algorithms
    "GPNMAlgorithm",
    "QueryStats",
    "SubsequentResult",
    "BatchGPNM",
    "IncGPNM",
    "EHGPNM",
    "UAGPNM",
]
