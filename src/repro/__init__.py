"""repro — a reproduction of "Updates-Aware Graph Pattern based Node Matching".

The package implements the paper's contribution (UA-GPNM) together with
every substrate it depends on: a directed labelled graph model, bounded
graph simulation, all-pairs shortest path length maintenance, label-based
graph partitioning, elimination-relationship detection, the EH-Tree
index, the compared baselines (INC-GPNM, EH-GPNM, UA-GPNM-NoPar, a
from-scratch oracle), synthetic workloads standing in for the five SNAP
datasets, and the experiment harness that regenerates every table and
figure of the evaluation section.

Quickstart
----------
>>> from repro import paper_example, UAGPNM
>>> data = paper_example.figure1_data_graph()
>>> pattern = paper_example.figure1_pattern_graph()
>>> engine = UAGPNM(pattern, data)
>>> sorted(engine.initial_result.matches("SE"))
['SE1', 'SE2']
>>> result = engine.subsequent_query(paper_example.example2_updates())
>>> result.stats.refinement_passes
1
"""

from repro import paper_example
from repro.algorithms import (
    BatchGPNM,
    EHGPNM,
    GPNMAlgorithm,
    IncGPNM,
    QueryStats,
    SubsequentResult,
    UAGPNM,
)
from repro.elimination import EHTree, EliminationRelation, EliminationType
from repro.graph import (
    DataGraph,
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    PatternGraph,
    STAR,
    Update,
    UpdateBatch,
    UpdateKind,
)
from repro.matching import MatchResult, bounded_simulation, gpnm_query
from repro.partition import LabelPartition, build_slen_partitioned
from repro.spl import INF, SLenMatrix, update_slen

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "paper_example",
    # graphs and updates
    "DataGraph",
    "PatternGraph",
    "STAR",
    "GraphKind",
    "UpdateKind",
    "Update",
    "EdgeInsertion",
    "EdgeDeletion",
    "NodeInsertion",
    "NodeDeletion",
    "UpdateBatch",
    # shortest paths
    "INF",
    "SLenMatrix",
    "update_slen",
    # partition
    "LabelPartition",
    "build_slen_partitioned",
    # matching
    "MatchResult",
    "gpnm_query",
    "bounded_simulation",
    # elimination
    "EliminationType",
    "EliminationRelation",
    "EHTree",
    # algorithms
    "GPNMAlgorithm",
    "QueryStats",
    "SubsequentResult",
    "BatchGPNM",
    "IncGPNM",
    "EHGPNM",
    "UAGPNM",
]
