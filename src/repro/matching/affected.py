"""Affected nodes ``Aff_N(UDi)`` for data-graph updates (DER-II).

A data update affects a node when some shortest path length from or to
that node changes.  The incremental ``SLen`` maintenance already computes
exactly this information (:class:`~repro.spl.incremental.SLenDelta`);
this module wraps it in the :class:`AffectedSet` record that elimination
detection and the EH-Tree operate on, keeping the same "does one update's
set cover another's" interface as :class:`~repro.matching.candidates.CandidateSet`.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.graph.updates import Update
from repro.spl.incremental import SLenDelta

NodeId = Hashable
Pair = tuple[NodeId, NodeId]
Change = tuple[float, float]


@dataclass(frozen=True)
class AffectedSet:
    """``Aff_N(UDi)`` plus the underlying ``AFF`` pair changes.

    Attributes
    ----------
    update:
        The data-graph update the set belongs to.
    nodes:
        ``Aff_N`` — nodes whose pairwise shortest path length changed (or
        that were structurally inserted / removed).
    changed_pairs:
        ``AFF[ui, vj] = [a, b]`` — the ordered pairs whose distance moved
        from ``a`` to ``b``.
    """

    update: Update
    nodes: frozenset[NodeId] = frozenset()
    changed_pairs: dict[Pair, Change] = field(default_factory=dict)

    def covers(self, other: "AffectedSet") -> bool:
        """``True`` when this update's affected nodes cover ``other``'s (⊇)."""
        return self.nodes >= other.nodes

    @property
    def is_empty(self) -> bool:
        """``True`` when the update changed no shortest path length."""
        return not self.nodes

    def __len__(self) -> int:
        return len(self.nodes)


def affected_set_from_delta(update: Update, delta: SLenDelta) -> AffectedSet:
    """Build an :class:`AffectedSet` from the ``SLen`` maintenance delta."""
    return AffectedSet(
        update=update,
        nodes=delta.affected_nodes,
        changed_pairs=dict(delta.changed_pairs),
    )
