"""Candidate nodes ``Can_N(UPi)`` for pattern-graph updates (DER-I).

For every update ``UPi`` in the pattern graph, the candidate set collects
the data nodes that might have to be *removed from* (``Can_RN``) or
*added to* (``Can_AN``) the current matching result.  Following the
paper's worked Example 7, the check is existential per endpoint:

* inserting a pattern edge ``(u, u')`` with bound ``b`` makes a currently
  matched ``vi ∈ IQuery[u]`` a removal candidate when *no* matched
  ``vj ∈ IQuery[u']`` lies within ``b`` hops of it, and a matched
  ``vj ∈ IQuery[u']`` a removal candidate when no matched ``vi`` reaches
  it within ``b`` hops (in Example 7 this yields exactly ``{PM2, TE2}``
  for ``UP1`` and ``{TE2}`` for ``UP2``);
* deleting a pattern edge can only add matches: label-consistent nodes
  that are currently unmatched *and* violate the old bound were
  potentially excluded by it, so they become addition candidates;
* inserting a pattern node adds its label-consistent data nodes as
  addition candidates and its neighbours' current matches as removal
  candidates (the new edges constrain them);
* deleting a pattern node releases the constraints it imposed on its
  neighbours, whose unmatched label-consistent nodes become addition
  candidates.

For pattern-edge insertions the set also keeps the matched pools of both
endpoints, which DER-III needs to verify cross-graph elimination (the
``AFF(PM2, TE2) = (∞, 2)`` check of Example 9).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.matching.gpnm import MatchResult
from repro.spl.matrix import SLenMatrix

NodeId = Hashable


@dataclass(frozen=True)
class CandidateSet:
    """``Can_N(UPi)`` split into its addition / removal halves.

    Attributes
    ----------
    update:
        The pattern update this set belongs to.
    add_nodes / remove_nodes:
        ``Can_AN`` / ``Can_RN`` of Section IV-A.
    source_candidates / target_candidates:
        For edge updates, the per-endpoint halves of the candidate set.
    source_pool / target_pool:
        For edge insertions, the matched data nodes of the pattern edge's
        endpoints at detection time; used by the DER-III verification.
    bound:
        The bound of the pattern edge involved, when applicable.
    """

    update: Update
    add_nodes: frozenset[NodeId] = frozenset()
    remove_nodes: frozenset[NodeId] = frozenset()
    source_candidates: frozenset[NodeId] = frozenset()
    target_candidates: frozenset[NodeId] = frozenset()
    source_pool: frozenset[NodeId] = frozenset()
    target_pool: frozenset[NodeId] = frozenset()
    bound: float | int | None = None

    @property
    def all_nodes(self) -> frozenset[NodeId]:
        """``Can_N`` — union of addition and removal candidates."""
        return self.add_nodes | self.remove_nodes

    def covers(self, other: "CandidateSet") -> bool:
        """``True`` when this update's candidates cover ``other``'s (⊇)."""
        return self.all_nodes >= other.all_nodes

    def __len__(self) -> int:
        return len(self.all_nodes)


def candidate_set(
    update: Update,
    pattern: PatternGraph,
    data: DataGraph,
    slen: SLenMatrix,
    iquery: MatchResult,
) -> CandidateSet:
    """Compute ``Can_N`` for one pattern update.

    Parameters
    ----------
    update:
        A pattern-graph update (``ΔGP``); data-graph updates are rejected.
    pattern:
        The pattern graph *before* the update is applied.
    data:
        The current data graph.
    slen:
        The current shortest path length matrix of ``data``.
    iquery:
        The matching result the candidates are relative to.
    """
    if update.graph is not GraphKind.PATTERN:
        raise UpdateError(f"candidate sets are defined for pattern updates, got {update!r}")
    if isinstance(update, EdgeInsertion):
        return _edge_insertion_candidates(update, slen, iquery)
    if isinstance(update, EdgeDeletion):
        return _edge_deletion_candidates(update, pattern, data, slen, iquery)
    if isinstance(update, NodeInsertion):
        return _node_insertion_candidates(update, data, iquery)
    if isinstance(update, NodeDeletion):
        return _node_deletion_candidates(update, pattern, data, iquery)
    raise UpdateError(f"unsupported update type {type(update).__name__}")


def _satisfied_and_reached(
    slen: SLenMatrix,
    sources: frozenset[NodeId],
    targets: frozenset[NodeId],
    bound: float | int,
) -> tuple[set[NodeId], set[NodeId]]:
    """Evaluate the bounded-reachability check for a pool of endpoint pairs.

    Returns ``(satisfied_sources, reached_targets)``: the sources that reach
    at least one node of ``targets`` within ``bound`` and the targets reached
    by at least one source.  A single scan of each source's (sparse) distance
    row answers both questions at once.
    """
    satisfied: set[NodeId] = set()
    reached: set[NodeId] = set()
    known = slen.nodes()
    for vi in sources:
        if vi not in known:
            continue
        hit = False
        for target, dist in slen.row_view(vi).items():
            if dist <= bound and target in targets:
                reached.add(target)
                hit = True
        if hit:
            satisfied.add(vi)
    return satisfied, reached


def _edge_insertion_candidates(
    update: EdgeInsertion,
    slen: SLenMatrix,
    iquery: MatchResult,
) -> CandidateSet:
    """Inserted pattern edge: matched endpoints violating the new bound may be removed."""
    bound = update.bound
    source_pool = iquery.matches(update.source)
    target_pool = iquery.matches(update.target)
    satisfied, reached = _satisfied_and_reached(slen, source_pool, target_pool, bound)
    source_candidates = frozenset(source_pool - satisfied)
    target_candidates = frozenset(target_pool - reached)
    return CandidateSet(
        update=update,
        remove_nodes=source_candidates | target_candidates,
        source_candidates=source_candidates,
        target_candidates=target_candidates,
        source_pool=frozenset(source_pool),
        target_pool=frozenset(target_pool),
        bound=bound,
    )


def _edge_deletion_candidates(
    update: EdgeDeletion,
    pattern: PatternGraph,
    data: DataGraph,
    slen: SLenMatrix,
    iquery: MatchResult,
) -> CandidateSet:
    """Deleted pattern edge: unmatched label-consistent nodes blocked by the
    old bound may now be added."""
    bound = update.bound if update.bound is not None else pattern.bound(update.source, update.target)
    source_label = pattern.label_of(update.source)
    target_label = pattern.label_of(update.target)
    source_pool = iquery.matches(update.source)
    target_pool = iquery.matches(update.target)
    unmatched_sources = frozenset(data.nodes_with_label(source_label)) - source_pool
    unmatched_targets = frozenset(data.nodes_with_label(target_label)) - target_pool
    satisfied, _ = _satisfied_and_reached(slen, unmatched_sources, target_pool, bound)
    _, reached = _satisfied_and_reached(slen, source_pool, unmatched_targets, bound)
    source_candidates = frozenset(unmatched_sources - satisfied)
    target_candidates = frozenset(unmatched_targets - reached)
    return CandidateSet(
        update=update,
        add_nodes=source_candidates | target_candidates,
        source_candidates=source_candidates,
        target_candidates=target_candidates,
        source_pool=frozenset(source_pool),
        target_pool=frozenset(target_pool),
        bound=bound,
    )


def _node_insertion_candidates(
    update: NodeInsertion,
    data: DataGraph,
    iquery: MatchResult,
) -> CandidateSet:
    """Inserted pattern node: its label candidates may be added; neighbours' matches may shrink."""
    label = update.labels[0]
    additions = frozenset(data.nodes_with_label(label))
    removal: set[NodeId] = set()
    for edge in update.edges:
        edge_source, edge_target = edge[0], edge[1]
        other = edge_target if edge_source == update.node else edge_source
        removal |= set(iquery.matches(other))
    return CandidateSet(
        update=update,
        add_nodes=additions,
        remove_nodes=frozenset(removal),
    )


def _node_deletion_candidates(
    update: NodeDeletion,
    pattern: PatternGraph,
    data: DataGraph,
    iquery: MatchResult,
) -> CandidateSet:
    """Deleted pattern node: neighbours lose a constraint, so their
    label-consistent unmatched nodes may be added."""
    if not pattern.has_node(update.node):
        raise UpdateError(f"pattern node {update.node!r} does not exist")
    neighbours = pattern.successors(update.node) | pattern.predecessors(update.node)
    additions: set[NodeId] = set()
    for neighbour in neighbours:
        label = pattern.label_of(neighbour)
        additions |= set(data.nodes_with_label(label)) - set(iquery.matches(neighbour))
    return CandidateSet(update=update, add_nodes=frozenset(additions))
