"""Shared per-batch delta for multi-pattern fan-out (ROADMAP item 4).

A settle in the streaming service maintains the data graph and its
``SLen`` matrix exactly once per batch — that work is pattern-independent.
What *is* pattern-dependent is cheap: deciding whether the batch can have
touched a given standing pattern at all, and if so re-running the
amendment pass for that pattern's match relation.

:class:`SharedDelta` is the record handed from the shared maintenance
pass to every subscription.  It carries the batch itself plus the
*touched region*: every node whose shortest-path lengths changed (the
union of the per-update ``Aff_N`` sets) together with the endpoints named
by the updates themselves, and the set of labels those nodes carry.

:func:`delta_touches_pattern` is the sound skip filter built on top of
it.  A pattern's match relation ``M(GP, GD)`` depends only on (a) which
data nodes carry the pattern's labels and (b) shortest-path lengths
*between* nodes carrying those labels.  If no touched node carries a
label used by the pattern, neither can have changed — any distance change
between pattern-labelled nodes puts both endpoints into ``Aff_N``, and
any structural change to a pattern-labelled node puts it into the update
endpoints — so the amendment pass can be skipped outright.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.graph.updates import NodeDeletion, NodeInsertion, Update
from repro.matching.affected import AffectedSet

NodeId = Hashable


@dataclass(frozen=True)
class SharedDelta:
    """The pattern-independent outcome of one settled batch.

    Attributes
    ----------
    updates:
        The data-graph updates of the settled batch, in arrival order.
    touched_nodes:
        Every node whose shortest-path lengths changed (union of the
        per-update ``Aff_N`` sets) plus every node named by an update.
    touched_labels:
        The labels carried by ``touched_nodes`` — looked up in the
        post-batch graph for surviving nodes and taken from the update
        payloads for deleted ones.
    """

    updates: tuple[Update, ...]
    touched_nodes: frozenset[NodeId]
    touched_labels: frozenset[str]

    @property
    def is_empty(self) -> bool:
        """``True`` when the batch touched nothing."""
        return not self.updates


def _update_endpoints(update: Update) -> Iterable[NodeId]:
    """Every node an update names: edge endpoints, the node, carried edges."""
    if update.is_edge_update:
        yield update.source
        yield update.target
        return
    yield update.node
    for edge in update.edges:
        yield edge[0]
        yield edge[1]


def shared_delta_from_batch(
    updates: Sequence[Update],
    affected_sets: Iterable[AffectedSet],
    data: DataGraph,
) -> SharedDelta:
    """Build the :class:`SharedDelta` for a settled batch.

    ``data`` is the *post-batch* graph; labels of nodes the batch deleted
    are recovered from the deletion payloads instead.
    """
    touched: set[NodeId] = set()
    labels: set[str] = set()
    for affected in affected_sets:
        touched.update(affected.nodes)
    for update in updates:
        touched.update(_update_endpoints(update))
        if isinstance(update, (NodeInsertion, NodeDeletion)):
            labels.update(update.labels)
    for node in touched:
        if data.has_node(node):
            labels.update(data.labels_of(node))
    return SharedDelta(
        updates=tuple(updates),
        touched_nodes=frozenset(touched),
        touched_labels=frozenset(labels),
    )


def pattern_label_set(pattern: PatternGraph) -> frozenset[str]:
    """The set of labels a pattern constrains its matches with."""
    return frozenset(pattern.label_of(node) for node in pattern.nodes())


def delta_touches_pattern(delta: SharedDelta, pattern: PatternGraph) -> bool:
    """Sound skip filter: can ``delta`` have changed ``pattern``'s matches?

    Returns ``False`` only when the match relation (and every match's
    ranking features) provably did not change: no touched node carries a
    label the pattern uses.  Erring on the side of ``True`` is always
    safe — the amendment pass converges to the exact relation from any
    over-approximation.
    """
    if delta.is_empty:
        return False
    return bool(delta.touched_labels & pattern_label_set(pattern))
