"""Top-k matching node selection (the paper's future-work item).

Section VIII lists "a new approach to selecting the top-k matching nodes"
as future work.  This module provides a straightforward realisation on
top of the GPNM result: matched data nodes are ranked per pattern node by
how *tightly* they satisfy the pattern's constraints, so downstream
applications (group finding, expert recommendation) can present the best
few candidates instead of the whole match set.

The score of a matched node ``v`` for pattern node ``u`` combines

* **slack** — for every pattern edge ``(u, u')`` with bound ``b``, the
  normalised margin ``(b - d(v, nearest match of u')) / b``; tighter
  connections score higher (wildcard edges contribute a fixed margin when
  satisfied);
* **coverage** — the fraction of ``u``'s pattern edges (in either
  direction) for which ``v`` has a finite-distance counterpart;
* **degree prior** — a small tie-breaking bonus for well-connected nodes,
  mirroring the "experts are central" heuristic of the paper's motivating
  applications.

Scores are in ``[0, 1]`` (up to the small degree bonus) and deterministic,
so rankings are stable across runs.
"""

from __future__ import annotations

import math
from collections.abc import Hashable
from dataclasses import dataclass

from repro.graph.digraph import DataGraph
from repro.graph.pattern import STAR, PatternGraph
from repro.matching.gpnm import MatchResult
from repro.spl.matrix import INF, SLenMatrix

NodeId = Hashable

#: Weighting of the three score components (slack, coverage, degree prior).
_SLACK_WEIGHT = 0.6
_COVERAGE_WEIGHT = 0.35
_DEGREE_WEIGHT = 0.05


@dataclass(frozen=True)
class RankedMatch:
    """One matched data node together with its relevance score."""

    pattern_node: NodeId
    data_node: NodeId
    score: float

    def __lt__(self, other: "RankedMatch") -> bool:  # pragma: no cover - trivial
        return self.score < other.score


def score_match(
    pattern_node: NodeId,
    data_node: NodeId,
    pattern: PatternGraph,
    data: DataGraph,
    slen: SLenMatrix,
    result: MatchResult,
) -> float:
    """Relevance score of ``data_node`` as a match of ``pattern_node``."""
    out_edges = [
        (target, pattern.bound(pattern_node, target))
        for target in pattern.successors(pattern_node)
    ]
    in_edges = [
        (source, pattern.bound(source, pattern_node))
        for source in pattern.predecessors(pattern_node)
    ]
    slacks: list[float] = []
    covered = 0
    total = len(out_edges) + len(in_edges)
    for other, bound in out_edges:
        margin = _best_margin(data_node, result.matches(other), bound, slen, outgoing=True)
        if margin is not None:
            covered += 1
            slacks.append(margin)
    for other, bound in in_edges:
        margin = _best_margin(data_node, result.matches(other), bound, slen, outgoing=False)
        if margin is not None:
            covered += 1
            slacks.append(margin)
    slack_score = sum(slacks) / len(slacks) if slacks else 0.0
    coverage_score = covered / total if total else 1.0
    degree = data.out_degree(data_node) + data.in_degree(data_node)
    degree_score = 1.0 - 1.0 / (1.0 + math.log1p(degree))
    return (
        _SLACK_WEIGHT * slack_score
        + _COVERAGE_WEIGHT * coverage_score
        + _DEGREE_WEIGHT * degree_score
    )


def _best_margin(
    data_node: NodeId,
    counterparts: frozenset[NodeId],
    bound: float | int,
    slen: SLenMatrix,
    outgoing: bool,
) -> float | None:
    """Best normalised slack towards any counterpart, or ``None`` if unreachable."""
    if not counterparts or data_node not in slen.nodes():
        return None
    best = INF
    for counterpart in counterparts:
        if counterpart not in slen.nodes():
            continue
        distance = (
            slen.distance(data_node, counterpart)
            if outgoing
            else slen.distance(counterpart, data_node)
        )
        if distance < best:
            best = distance
    if best == INF:
        return None
    if bound is STAR:
        # Satisfied wildcard edges get a fixed, middling margin.
        return 0.5
    if best > bound:
        return None
    return (bound - best + 1) / (bound + 1)


def top_k_matches(
    result: MatchResult,
    pattern: PatternGraph,
    data: DataGraph,
    slen: SLenMatrix,
    k: int,
    pattern_node: NodeId | None = None,
) -> dict[NodeId, list[RankedMatch]]:
    """Return the ``k`` best-scoring matches per pattern node.

    Parameters
    ----------
    result:
        A GPNM matching result (initial or subsequent query).
    pattern / data / slen:
        The graphs and distance index the result was computed against.
    k:
        How many matches to keep per pattern node (must be positive).
    pattern_node:
        Restrict the ranking to a single pattern node when given.

    Returns
    -------
    dict
        ``{pattern node: [RankedMatch, ...]}`` sorted by descending score,
        ties broken by the data node's representation for determinism.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    targets = [pattern_node] if pattern_node is not None else list(result)
    rankings: dict[NodeId, list[RankedMatch]] = {}
    for u in targets:
        scored = [
            RankedMatch(
                pattern_node=u,
                data_node=v,
                score=score_match(u, v, pattern, data, slen, result),
            )
            for v in result.matches(u)
        ]
        scored.sort(key=lambda match: (-match.score, repr(match.data_node)))
        rankings[u] = scored[:k]
    return rankings
