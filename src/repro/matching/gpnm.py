"""GPNM result type and the from-scratch GPNM query (Section III-B).

GPNM asks, for every node ``pi`` of the pattern, for the set ``N_pi`` of
data nodes that participate in the maximum bounded simulation ``M(GP,
GD)``.  Per the paper's definition, when the data graph has *no* match of
the pattern (some pattern node has no match), every ``N_pi`` is empty.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from typing import Optional

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.matching.bgs import bounded_simulation
from repro.spl.matrix import SLenMatrix

NodeId = Hashable


class MatchResult(Mapping[NodeId, frozenset[NodeId]]):
    """The node-matching result of a GPNM query.

    Maps every pattern node to the (frozen) set of its matching data
    nodes.  The paper's totality rule is applied at construction time
    unless ``enforce_totality=False``: if any pattern node has no match,
    the whole result collapses to empty sets.
    """

    __slots__ = ("_matches", "_total")

    def __init__(
        self,
        matches: Mapping[NodeId, frozenset[NodeId]],
        enforce_totality: bool = True,
    ) -> None:
        raw = {u: frozenset(nodes) for u, nodes in matches.items()}
        self._total = all(raw.values()) if raw else True
        if enforce_totality and not self._total:
            raw = {u: frozenset() for u in raw}
        self._matches = raw

    # Mapping protocol ---------------------------------------------------
    def __getitem__(self, pattern_node: NodeId) -> frozenset[NodeId]:
        return self._matches[pattern_node]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._matches)

    def __len__(self) -> int:
        return len(self._matches)

    # Convenience --------------------------------------------------------
    @property
    def is_total(self) -> bool:
        """``True`` when every pattern node had at least one match."""
        return self._total

    @property
    def is_empty(self) -> bool:
        """``True`` when no pattern node has any match."""
        return all(not nodes for nodes in self._matches.values())

    def matches(self, pattern_node: NodeId) -> frozenset[NodeId]:
        """``N_pi`` for ``pattern_node`` (empty when unknown)."""
        return self._matches.get(pattern_node, frozenset())

    def matched_data_nodes(self) -> frozenset[NodeId]:
        """Union of all matched data nodes."""
        nodes: set[NodeId] = set()
        for matched in self._matches.values():
            nodes |= matched
        return frozenset(nodes)

    def as_dict(self) -> dict[NodeId, frozenset[NodeId]]:
        """Plain-dict copy of the result."""
        return dict(self._matches)

    def diff(self, other: "MatchResult") -> dict[NodeId, tuple[frozenset, frozenset]]:
        """Per-pattern-node ``(added, removed)`` sets relative to ``self``.

        ``added`` are data nodes in ``other`` but not in ``self``;
        ``removed`` the opposite.  Pattern nodes present in only one of
        the results are reported as fully added / removed.
        """
        report: dict[NodeId, tuple[frozenset, frozenset]] = {}
        for pattern_node in set(self._matches) | set(other._matches):
            mine = self.matches(pattern_node)
            theirs = other.matches(pattern_node)
            added = theirs - mine
            removed = mine - theirs
            if added or removed:
                report[pattern_node] = (added, removed)
        return report

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MatchResult):
            return self._matches == other._matches
        if isinstance(other, Mapping):
            return self._matches == {u: frozenset(v) for u, v in other.items()}
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("MatchResult is a mapping; convert to items() to hash")

    def __repr__(self) -> str:
        sizes = {u: len(v) for u, v in self._matches.items()}
        return f"MatchResult({sizes})"


def gpnm_query(
    pattern: PatternGraph,
    data: DataGraph,
    slen: Optional[SLenMatrix] = None,
    enforce_totality: bool = True,
) -> MatchResult:
    """Answer a GPNM query from scratch.

    This is the paper's baseline query (and the oracle used to validate
    every incremental algorithm): compute ``SLen`` if not supplied, run
    the BGS fixpoint, wrap the relation in a :class:`MatchResult`.
    """
    relation = bounded_simulation(pattern, data, slen)
    return MatchResult(relation, enforce_totality=enforce_totality)
