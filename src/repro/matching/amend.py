"""The incremental GPNM amendment pass shared by all incremental algorithms.

Instead of recomputing the matching result from scratch after updates,
the incremental procedure of [13] (and of this paper's Step 3) *amends*
the previous result: it seeds the bounded-simulation fixpoint with an
over-approximation of the new maximum relation and refines it using the
already-maintained ``SLen`` matrix.  Because the maximum simulation is
the greatest fixpoint, refinement from any over-approximation converges
to the exact result — so one amendment pass over a batch of updates is
exactly as correct as one pass per update; what differs is the work done,
which is what the experiments measure.

The over-approximation is built as follows:

* pattern nodes deleted by the batch are dropped, newly inserted pattern
  nodes start from their label candidates;
* pattern nodes that may *gain* matches because of the batch — computed
  by :func:`growable_pattern_nodes` — restart from their label
  candidates;
* every other pattern node starts from its previous match set (pruned of
  data nodes that no longer exist or no longer carry the right label).

A pattern node may gain matches when a *relaxing* update touches it
(pattern edge/node deletion, data edge/node insertion) or when one of its
out-neighbours in the pattern may gain matches (the cascade travels
against pattern edges, because the constraint on ``u`` quantifies over
the matches of its successors ``u'``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Optional

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.matching.bgs import simulation_fixpoint
from repro.matching.gpnm import MatchResult
from repro.spl.matrix import SLenMatrix

NodeId = Hashable


def growable_pattern_nodes(
    pattern_after: PatternGraph, updates: Iterable[Update]
) -> frozenset[NodeId]:
    """Pattern nodes whose match sets may grow because of ``updates``.

    ``pattern_after`` is the pattern graph with the batch already applied
    (the cascade is computed over its structure).  The result is closed
    under reverse reachability along pattern edges: if ``u'`` may grow and
    ``(u, u')`` is a pattern edge, ``u`` may grow as well.
    """
    seeds: set[NodeId] = set()
    any_data_relaxation = False
    for update in updates:
        if update.graph is GraphKind.DATA:
            if update.is_insertion:
                any_data_relaxation = True
            continue
        if isinstance(update, EdgeDeletion):
            seeds.add(update.source)
            seeds.add(update.target)
        elif isinstance(update, NodeDeletion):
            # The deleted node's former neighbours lose a constraint; the
            # node itself is gone, so only neighbours seed the cascade.
            # Neighbour information is unavailable from the post-update
            # pattern, so conservatively seed every remaining node.
            seeds.update(pattern_after.nodes())
        elif isinstance(update, NodeInsertion):
            if pattern_after.has_node(update.node):
                seeds.add(update.node)
        elif isinstance(update, EdgeInsertion):
            # A new pattern edge only restricts; no growth seed.
            continue
    if any_data_relaxation:
        # Shorter distances can admit new matches for any pattern node
        # carrying an edge constraint, so seed everything.
        seeds.update(pattern_after.nodes())
    # Close under reverse reachability along pattern edges.
    seeds = {node for node in seeds if pattern_after.has_node(node)}
    frontier = list(seeds)
    while frontier:
        node = frontier.pop()
        for predecessor in pattern_after.predecessors(node):
            if predecessor not in seeds:
                seeds.add(predecessor)
                frontier.append(predecessor)
    return frozenset(seeds)


def amend_match(
    previous: MatchResult,
    pattern_after: PatternGraph,
    data_after: DataGraph,
    slen: SLenMatrix,
    updates: Iterable[Update],
    grow_nodes: Optional[frozenset[NodeId]] = None,
    enforce_totality: bool = True,
) -> MatchResult:
    """Run one incremental amendment pass and return the new match result.

    Parameters
    ----------
    previous:
        The matching result before the updates in this pass.
    pattern_after / data_after:
        The graphs with the pass's updates already applied.
    slen:
        The maintained shortest path length matrix of ``data_after``.
    updates:
        The updates handled by this pass (used to decide which pattern
        nodes may gain matches).
    grow_nodes:
        Precomputed :func:`growable_pattern_nodes` result, if the caller
        already has it.
    """
    updates = list(updates)
    if grow_nodes is None:
        grow_nodes = growable_pattern_nodes(pattern_after, updates)
    candidates: dict[NodeId, set[NodeId]] = {}
    for u in pattern_after.nodes():
        label = pattern_after.label_of(u)
        label_nodes = data_after.nodes_with_label(label)
        if u in grow_nodes or u not in previous:
            candidates[u] = set(label_nodes)
        else:
            # Shrink-only start: prune stale data nodes, never add.
            candidates[u] = {v for v in previous.matches(u) if v in label_nodes}
    relation = simulation_fixpoint(pattern_after, slen, candidates)
    return MatchResult(relation, enforce_totality=enforce_totality)
