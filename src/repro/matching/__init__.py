"""Graph pattern based node matching (GPNM) via bounded graph simulation.

* :mod:`repro.matching.bgs` — the maximum bounded-graph-simulation
  relation ``M(GP, GD)`` (Section III-A) computed by fixpoint refinement;
* :mod:`repro.matching.gpnm` — the node-matching result type and the
  initial / from-scratch queries;
* :mod:`repro.matching.candidates` — candidate nodes ``Can_N(UPi)`` for
  pattern updates (DER-I, Section IV-B);
* :mod:`repro.matching.affected` — affected nodes ``Aff_N(UDi)`` for data
  updates (DER-II);
* :mod:`repro.matching.amend` — the incremental amendment pass shared by
  INC-GPNM, EH-GPNM and UA-GPNM;
* :mod:`repro.matching.shared` — the pattern-independent per-batch delta
  (touched region + labels) that multi-pattern subscription serving fans
  out to every standing pattern.
"""

from repro.matching.affected import AffectedSet, affected_set_from_delta
from repro.matching.amend import amend_match, growable_pattern_nodes
from repro.matching.bgs import bounded_simulation, label_candidates, simulation_fixpoint
from repro.matching.candidates import CandidateSet, candidate_set
from repro.matching.gpnm import MatchResult, gpnm_query
from repro.matching.shared import (
    SharedDelta,
    delta_touches_pattern,
    pattern_label_set,
    shared_delta_from_batch,
)
from repro.matching.topk import RankedMatch, top_k_matches

__all__ = [
    "RankedMatch",
    "top_k_matches",
    "MatchResult",
    "gpnm_query",
    "bounded_simulation",
    "label_candidates",
    "simulation_fixpoint",
    "CandidateSet",
    "candidate_set",
    "AffectedSet",
    "affected_set_from_delta",
    "amend_match",
    "growable_pattern_nodes",
    "SharedDelta",
    "shared_delta_from_batch",
    "delta_touches_pattern",
    "pattern_label_set",
]
