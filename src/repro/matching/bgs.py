"""Bounded Graph Simulation (BGS) as defined in Section III-A.

A data graph ``GD`` matches a pattern ``GP`` when there is a binary
relation ``M ⊆ VP × VD`` such that every pattern node has at least one
match, matched data nodes carry the pattern node's label, and for every
pattern edge ``(u, u')`` with bound ``k`` each match ``v`` of ``u`` can
reach some match ``v'`` of ``u'`` within ``k`` hops (any finite number of
hops for ``"*"``).

As with ordinary graph simulation there is a unique *maximum* such
relation, computable by fixpoint refinement: start from the label-based
candidate sets and repeatedly discard data nodes violating some edge
constraint until nothing changes.  Starting the refinement from any
over-approximation of the maximum relation yields the same fixpoint,
which is what the incremental algorithms exploit.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from typing import Optional

from repro.graph.digraph import DataGraph
from repro.graph.pattern import STAR, PatternGraph
from repro.spl.matrix import SLenMatrix

NodeId = Hashable
Candidates = dict[NodeId, set[NodeId]]


def label_candidates(pattern: PatternGraph, data: DataGraph) -> Candidates:
    """Initial candidate sets: data nodes whose labels include the pattern label."""
    return {
        u: set(data.nodes_with_label(pattern.label_of(u)))
        for u in pattern.nodes()
    }


def edge_constraint_holds(
    slen: SLenMatrix, source_match: NodeId, target_matches: set[NodeId], bound: float | int
) -> bool:
    """``True`` when ``source_match`` reaches some node of ``target_matches`` within ``bound``."""
    if not target_matches:
        return False
    row = slen.row_view(source_match)
    if len(row) <= len(target_matches):
        if bound is STAR:
            return any(target in target_matches for target in row)
        return any(
            target in target_matches for target, dist in row.items() if dist <= bound
        )
    if bound is STAR:
        return any(target in row for target in target_matches)
    return any(row.get(target, _TOO_FAR) <= bound for target in target_matches)


_TOO_FAR = float("inf")


def simulation_fixpoint(
    pattern: PatternGraph,
    slen: SLenMatrix,
    candidates: Mapping[NodeId, set[NodeId]],
) -> dict[NodeId, frozenset[NodeId]]:
    """Refine ``candidates`` to the maximum bounded simulation relation.

    ``candidates`` must be an over-approximation of the maximum relation
    restricted to label-consistent nodes (the caller is responsible for
    label consistency).  The input mapping is not mutated.

    Each edge check asks the matrix for the surviving sources in bulk
    (:meth:`~repro.spl.matrix.SLenMatrix.sources_within`): on the dense
    backend that is one block-wise submatrix gather for the whole
    candidate set, instead of one materialised per-row dict per
    candidate; the sparse backend runs the same per-row scan the scalar
    check always did.

    Returns the refined relation as ``{pattern node: frozenset of data nodes}``.
    """
    match: dict[NodeId, set[NodeId]] = {u: set(candidates.get(u, set())) for u in pattern.nodes()}
    # Worklist of pattern edges to (re-)check.  When match[u'] shrinks, every
    # in-edge (u, u') of u' must be re-checked.
    edges = list(pattern.edges())
    pending = set(range(len(edges)))
    in_edges_of: dict[NodeId, list[int]] = {u: [] for u in pattern.nodes()}
    for position, (_source, target, _bound) in enumerate(edges):
        in_edges_of[target].append(position)
    while pending:
        position = pending.pop()
        source_pattern, target_pattern, bound = edges[position]
        source_matches = match[source_pattern]
        target_matches = match[target_pattern]
        satisfied = slen.sources_within(
            source_matches, target_matches, _TOO_FAR if bound is STAR else bound
        )
        if len(satisfied) == len(source_matches):
            continue
        source_matches.intersection_update(satisfied)
        for affected_edge in in_edges_of[source_pattern]:
            pending.add(affected_edge)
        # The edge we just processed may need re-checking too if its own
        # source set changed other edges' validity; edges out of the source
        # are unaffected by shrinking the source set, so nothing else to do.
    return {u: frozenset(nodes) for u, nodes in match.items()}


def bounded_simulation(
    pattern: PatternGraph,
    data: DataGraph,
    slen: Optional[SLenMatrix] = None,
) -> dict[NodeId, frozenset[NodeId]]:
    """Compute the maximum BGS relation ``M(GP, GD)`` from scratch.

    Parameters
    ----------
    slen:
        Optional precomputed all-pairs matrix; computed from ``data`` when
        omitted (the expensive part of a from-scratch query).
    """
    if slen is None:
        slen = SLenMatrix.from_graph(data)
    return simulation_fixpoint(pattern, slen, label_candidates(pattern, data))
