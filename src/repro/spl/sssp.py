"""Single-source shortest path traversals over :class:`DataGraph`.

The data graphs of the paper are unweighted, so the workhorse is a plain
breadth-first search.  A binary-heap Dijkstra is provided as well: it is
used by the weighted-graph extension and by tests as an independent
reference implementation for BFS results.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Hashable
from typing import Optional

from repro.graph.digraph import DataGraph
from repro.graph.errors import MissingNodeError

NodeId = Hashable


def bfs_lengths(
    graph: DataGraph, source: NodeId, reverse: bool = False
) -> dict[NodeId, int]:
    """Return shortest path lengths from ``source`` to every reachable node.

    Parameters
    ----------
    graph:
        The data graph to traverse.
    source:
        Start node; must be in ``graph``.
    reverse:
        When ``True``, traverse edges backwards, yielding distances *to*
        ``source`` instead of *from* it.

    Returns
    -------
    dict
        ``node -> distance``; unreachable nodes are absent.  The source
        maps to ``0``.
    """
    if not graph.has_node(source):
        raise MissingNodeError(source)
    neighbours = graph.predecessors_view if reverse else graph.successors_view
    distances: dict[NodeId, int] = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbour in neighbours(node):
            if neighbour not in distances:
                distances[neighbour] = next_distance
                queue.append(neighbour)
    return distances


def bfs_lengths_within(
    graph: DataGraph, source: NodeId, max_depth: int, reverse: bool = False
) -> dict[NodeId, int]:
    """Like :func:`bfs_lengths` but stop expanding beyond ``max_depth`` hops.

    Useful for bounded-path checks where only distances up to the largest
    pattern bound matter.
    """
    if max_depth < 0:
        raise ValueError("max_depth must be non-negative")
    if not graph.has_node(source):
        raise MissingNodeError(source)
    neighbours = graph.predecessors_view if reverse else graph.successors_view
    distances: dict[NodeId, int] = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if depth >= max_depth:
            continue
        for neighbour in neighbours(node):
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                queue.append(neighbour)
    return distances


def dijkstra_lengths(
    graph: DataGraph,
    source: NodeId,
    weight: Optional[Callable[[NodeId, NodeId], float]] = None,
    reverse: bool = False,
) -> dict[NodeId, float]:
    """Dijkstra's algorithm with an arbitrary non-negative edge weight.

    With the default unit weight this produces the same distances as
    :func:`bfs_lengths` (as integers cast to float), which the test suite
    uses as a cross-check.

    Parameters
    ----------
    weight:
        ``weight(u, v)`` returning a non-negative edge weight; defaults to
        the unit weight.
    """
    if not graph.has_node(source):
        raise MissingNodeError(source)
    if weight is None:
        weight = _unit_weight
    neighbours = graph.predecessors if reverse else graph.successors
    distances: dict[NodeId, float] = {}
    heap: list[tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        for neighbour in neighbours(node):
            if neighbour in distances:
                continue
            edge = (neighbour, node) if reverse else (node, neighbour)
            step = weight(*edge)
            if step < 0:
                raise ValueError(f"negative edge weight on {edge!r}")
            counter += 1
            heapq.heappush(heap, (dist + step, counter, neighbour))
    return distances


def _unit_weight(_source: NodeId, _target: NodeId) -> float:
    return 1.0
