"""Hybrid (ELL + COO) storage for the sparse ``SLen`` matrix.

Section IV-B of the paper remarks that the shortest path length matrix of
a social graph is sparse (many rows contain mostly unreachable entries)
and suggests compressing it with the *Hybrid format* of Bell & Garland:
an ELLPACK block holding up to ``K`` entries per row plus a COO overflow
list for the rows that exceed ``K``.  The quoted space bound is
``2 |ND| |K|`` versus ``|ND|^2`` for the dense matrix.

This module implements that storage scheme so the space-cost discussion
(and the ablation benchmark comparing dict / dense / hybrid backends) can
be reproduced.  It is a storage format, not an algorithmic component: the
algorithms read distances through the same ``distance`` interface.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from typing import Optional

from repro.graph.errors import MissingNodeError
from repro.spl.matrix import INF, SLenMatrix

NodeId = Hashable


class HybridMatrix:
    """Read-only ELL+COO compressed view of an :class:`SLenMatrix`.

    Parameters
    ----------
    slen:
        The matrix to compress.
    k:
        The ELL width (max finite entries stored per row in the ELL
        block).  Defaults to the *median* row population, which keeps the
        ELL block small while pushing only the heavy rows into COO.
    """

    __slots__ = ("_nodes", "_ell", "_coo", "_k")

    def __init__(self, slen: SLenMatrix, k: Optional[int] = None) -> None:
        self._nodes: frozenset[NodeId] = slen.nodes()
        populations = sorted(len(slen.row(node)) for node in self._nodes) or [0]
        if k is None:
            k = populations[len(populations) // 2]
        if k < 0:
            raise ValueError("k must be non-negative")
        self._k = k
        self._ell: dict[NodeId, dict[NodeId, int]] = {}
        self._coo: dict[NodeId, dict[NodeId, int]] = {}
        for node in self._nodes:
            row = slen.row(node)
            items = sorted(row.items(), key=lambda item: (item[1], repr(item[0])))
            self._ell[node] = dict(items[:k])
            overflow = dict(items[k:])
            if overflow:
                self._coo[node] = overflow

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: NodeId, target: NodeId) -> float | int:
        """Return the stored distance, or :data:`INF` when absent."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        if target not in self._nodes:
            raise MissingNodeError(target)
        value = self._ell[source].get(target)
        if value is not None:
            return value
        overflow = self._coo.get(source)
        if overflow is not None:
            return overflow.get(target, INF)
        return INF

    def row(self, source: NodeId) -> dict[NodeId, int]:
        """Return all finite entries of a row (ELL part plus overflow)."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        merged = dict(self._ell[source])
        merged.update(self._coo.get(source, {}))
        return merged

    def nodes(self) -> frozenset[NodeId]:
        """The node universe."""
        return self._nodes

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Iterate over every stored ``(source, target, distance)``."""
        for source in self._nodes:
            for target, dist in self.row(source).items():
                yield (source, target, dist)

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The ELL width used for this compression."""
        return self._k

    @property
    def ell_cells(self) -> int:
        """Cells reserved by the ELL block (``2 * |ND| * K`` in the paper's count)."""
        return 2 * len(self._nodes) * self._k

    @property
    def coo_cells(self) -> int:
        """Cells used by the COO overflow (three words per entry)."""
        return 3 * sum(len(row) for row in self._coo.values())

    @property
    def dense_cells(self) -> int:
        """Cells a dense ``|ND| x |ND|`` matrix would take."""
        return len(self._nodes) ** 2

    @property
    def compression_ratio(self) -> float:
        """Hybrid cells divided by dense cells (lower is better)."""
        if not self._nodes:
            return 0.0
        return (self.ell_cells + self.coo_cells) / self.dense_cells

    # ------------------------------------------------------------------
    # Round trip
    # ------------------------------------------------------------------
    def to_slen(self) -> SLenMatrix:
        """Expand back into a mutable :class:`SLenMatrix`."""
        rows = {node: self.row(node) for node in self._nodes}
        return SLenMatrix.from_rows(self._nodes, rows)

    def __repr__(self) -> str:
        return (
            f"HybridMatrix(nodes={len(self._nodes)}, k={self._k}, "
            f"coo_entries={sum(len(r) for r in self._coo.values())})"
        )
