"""Pluggable storage backends for the ``SLen`` matrix.

:class:`~repro.spl.matrix.SLenMatrix` is a thin facade over an
:class:`SLenBackend`, which owns both the *storage* of the all-pairs
shortest path lengths and the three *maintenance kernels* every layer
above relies on:

* ``build`` — construction from a data graph (all-pairs BFS);
* ``relax_edge`` — the single-edge insertion relaxation
  ``d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y))``;
* ``affected_by_*`` + ``settle_sources`` — the Ramalingam & Reps
  affected-area deletion maintenance: identify the pairs whose every
  shortest path used the deleted edge/node, then recompute exactly
  those entries seeded from the unaffected frontier.

Two backends ship with the repository:

``sparse`` (:class:`SparseSLenBackend`, here)
    The original dict-of-dicts representation: only finite entries are
    stored, mirroring the paper's observation that social graphs produce
    many infinite entries.  Memory is O(finite entries); every kernel is
    a pure-Python loop, so per-entry interpreter overhead dominates on
    dense update streams.

``dense`` (:class:`~repro.spl.dense.DenseSLenBackend`)
    A blocked ``int32`` NumPy layout: the all-pairs matrix is a grid of
    lazily-allocated fixed-size blocks with a sentinel for ``INF``
    (all-``INF`` blocks are elided entirely), plus vectorized kernels
    (bit-packed-frontier multi-source BFS construction, rank-1
    insertion relaxation, batched affected-region settling, and the
    block-gather matching kernel behind :meth:`SLenBackend.
    sources_within`).  Memory scales with the *occupied* blocks, which
    is what lets the dense backend handle graphs past ~10⁴ nodes; the
    block edge is the ``dense_block_size`` knob.

``auto``
    Resolved at construction time: dense for graphs with at least
    :data:`DENSE_AUTO_THRESHOLD` nodes (where the broadcast kernels
    dominate interpreter overhead by a wide margin), sparse below it,
    and sparse whenever :mod:`numpy` is unavailable.

The abstract base class provides *generic* kernel implementations in
terms of the storage primitives; they are exactly the pre-refactor
pure-Python algorithms, so a backend only needs to implement storage to
be correct, and overrides kernels only to be fast.
"""

from __future__ import annotations

import abc
import heapq
import math
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

from repro.graph.digraph import DataGraph
from repro.spl.sssp import bfs_lengths, bfs_lengths_within

NodeId = Hashable
Pair = tuple[NodeId, NodeId]
Change = tuple[float, float]

#: Distance value used for unreachable pairs.
INF: float = math.inf

#: ``auto`` picks the dense backend at or above this node count.
DENSE_AUTO_THRESHOLD: int = 256

#: Names accepted wherever a backend is selected.
BACKEND_NAMES: tuple[str, ...] = ("sparse", "dense", "auto")

_NO_EDGES: frozenset = frozenset()
_NO_NODES: frozenset = frozenset()


class SLenBackend(abc.ABC):
    """Storage + maintenance-kernel interface behind :class:`SLenMatrix`.

    Subclasses must implement the storage primitives; the maintenance
    kernels have generic (pure-Python) default implementations written
    against those primitives and may be overridden with vectorized
    versions.  All distances handed out are plain Python ``int``s (or
    :data:`INF`); backends are responsible for any conversion.
    """

    #: Selection name of the backend ("sparse" / "dense").
    name: str = "abstract"

    horizon: float

    # ------------------------------------------------------------------
    # Storage primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def node_set(self) -> set[NodeId]:
        """A fresh set holding the node universe."""

    @abc.abstractmethod
    def __contains__(self, node: NodeId) -> bool:
        """Whether ``node`` is in the universe."""

    @abc.abstractmethod
    def number_of_nodes(self) -> int:
        """``|VD|`` as seen by the backend."""

    @abc.abstractmethod
    def get(self, source: NodeId, target: NodeId) -> float | int:
        """``SLen(source, target)``; :data:`INF` when absent."""

    @abc.abstractmethod
    def row(self, source: NodeId) -> dict[NodeId, int]:
        """A fresh dict of the finite entries of one row."""

    @abc.abstractmethod
    def row_view(self, source: NodeId) -> Mapping[NodeId, int]:
        """A read-only mapping of the finite entries of one row.

        May be the internal representation (sparse) or a cached
        materialisation (dense); callers must not mutate it.
        """

    @abc.abstractmethod
    def column(self, target: NodeId) -> dict[NodeId, int]:
        """``{source: distance}`` over all sources reaching ``target``."""

    @abc.abstractmethod
    def set_value(self, source: NodeId, target: NodeId, value: float | int) -> None:
        """Set one entry; :data:`INF` (or beyond the horizon) removes it."""

    @abc.abstractmethod
    def set_row(self, source: NodeId, row: Mapping[NodeId, int]) -> None:
        """Replace one row (entries beyond the horizon are dropped)."""

    @abc.abstractmethod
    def replace_row_raw(self, source: NodeId, row: dict[NodeId, int]) -> None:
        """Replace one row verbatim, without horizon filtering.

        Used by :meth:`recompute_rows`, which historically stores plain
        BFS rows even on a bounded matrix.
        """

    @abc.abstractmethod
    def add_node(self, node: NodeId) -> None:
        """Add an isolated node to the universe."""

    @abc.abstractmethod
    def remove_node(self, node: NodeId) -> None:
        """Drop a node, its row and its column."""

    @abc.abstractmethod
    def copy(self) -> "SLenBackend":
        """An independent deep copy (same backend kind and horizon)."""

    def fork(self) -> "SLenBackend":
        """A snapshot clone optimised for structural sharing.

        Backends with copy-on-write storage (the blocked dense grid)
        override this to share unmodified storage between the clone and
        the live instance; the generic fallback is a deep
        :meth:`copy`, so ``fork`` is always safe to use for snapshot
        publication regardless of backend kind.
        """
        return self.copy()

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Iterate over ``(source, target, distance)`` finite entries."""
        for source in self.node_set():
            for target, dist in self.row_view(source).items():
                yield (source, target, dist)

    def sources_within(
        self, sources: Iterable[NodeId], targets: Iterable[NodeId], bound: float | int
    ) -> set[NodeId]:
        """Subset of ``sources`` reaching some node of ``targets`` within ``bound``.

        The bulk form of the BGS edge-constraint check: the simulation
        fixpoint asks this question once per pattern edge per refinement
        round, for the whole candidate set at once.  The generic
        implementation scans each source's row view with the same
        small/large-set heuristics the scalar check used; the dense
        backend overrides it with one block-wise submatrix gather.
        Sources or targets outside the universe are ignored; ``bound``
        may be :data:`INF` (any finite distance qualifies — the ``"*"``
        wildcard).
        """
        target_set = targets if isinstance(targets, (set, frozenset)) else set(targets)
        satisfied: set[NodeId] = set()
        if not target_set:
            return satisfied
        for source in sources:
            if source not in self:
                continue
            row = self.row_view(source)
            if len(row) <= len(target_set):
                for target, dist in row.items():
                    if dist <= bound and target in target_set:
                        satisfied.add(source)
                        break
            else:
                for target in target_set:
                    dist = row.get(target)
                    if dist is not None and dist <= bound:
                        satisfied.add(source)
                        break
        return satisfied

    def finite_count(self) -> int:
        """Number of finite (stored) entries."""
        return sum(len(self.row_view(source)) for source in self.node_set())

    # ------------------------------------------------------------------
    # Maintenance kernels (generic pure-Python defaults)
    # ------------------------------------------------------------------
    def build(self, graph: DataGraph) -> None:
        """Populate the matrix from ``graph`` (universe must match)."""
        if self.horizon == INF:
            for source in graph.nodes():
                self.replace_row_raw(source, bfs_lengths(graph, source))
        else:
            depth = int(self.horizon)
            for source in graph.nodes():
                self.replace_row_raw(source, bfs_lengths_within(graph, source, depth))

    def recompute_rows(self, graph: DataGraph, sources: Iterable[NodeId]) -> set[NodeId]:
        """Recompute the rows of ``sources`` by BFS; return the changed ones."""
        changed: set[NodeId] = set()
        for source in sources:
            new_row = bfs_lengths(graph, source)
            if new_row != dict(self.row_view(source)):
                self.replace_row_raw(source, new_row)
                changed.add(source)
        return changed

    def relax_edge(self, source: NodeId, target: NodeId) -> dict[Pair, Change]:
        """Apply the insertion relaxation for edge ``source -> target``.

        Mutates the matrix in place and returns the changed pairs as
        ``{(x, y): (old, new)}``.
        """
        changed: dict[Pair, Change] = {}
        sources_into = self.column(source)
        sources_into[source] = 0
        targets_out = dict(self.row_view(target))
        horizon = self.horizon
        for x, dist_to_source in sources_into.items():
            row_x = self.row_view(x)
            base = dist_to_source + 1
            for y, dist_from_target in targets_out.items():
                if x == y:
                    continue
                candidate = base + dist_from_target
                if candidate > horizon:
                    continue
                current = row_x.get(y, INF)
                if candidate < current:
                    self.set_value(x, y, candidate)
                    changed[(x, y)] = (current, candidate)
        return changed

    def affected_by_edge_deletion(
        self, source: NodeId, target: NodeId
    ) -> dict[NodeId, set[NodeId]]:
        """Pairs possibly worsened by deleting edge ``source -> target``.

        A pair (x, y) is affected exactly when every old shortest path
        used the edge, i.e. ``d(x, y) == d(x, source) + 1 + d(target, y)``
        (pre-deletion distances).  Returns ``{x: {y, ...}}`` with only
        non-empty target sets.
        """
        column_source = self.column(source)
        column_source[source] = 0
        row_target = dict(self.row_view(target))
        affected: dict[NodeId, set[NodeId]] = {}
        for x, dist_to_source in column_source.items():
            row_x = self.row_view(x)
            base = dist_to_source + 1
            targets = {
                y
                for y, dist_from_target in row_target.items()
                if x != y and row_x.get(y) == base + dist_from_target
            }
            if targets:
                affected[x] = targets
        return affected

    def affected_by_node_deletion(
        self, old_row: Mapping[NodeId, int], old_column: Mapping[NodeId, int]
    ) -> dict[NodeId, set[NodeId]]:
        """Pairs possibly worsened by a node deletion.

        ``old_row`` / ``old_column`` are the deleted node's row and column
        captured *before* its removal from the matrix; the node (and any
        other node no longer in the universe) is excluded automatically
        because membership is checked against the current universe.
        """
        affected: dict[NodeId, set[NodeId]] = {}
        for x, dist_to_node in old_column.items():
            if x not in self:
                continue
            row_x = self.row_view(x)
            targets = {
                y
                for y, dist_from_node in old_row.items()
                if y != x and y in self and row_x.get(y) == dist_to_node + dist_from_node
            }
            if targets:
                affected[x] = targets
        return affected

    def settle_sources(
        self,
        graph_after: DataGraph,
        affected_by_source: Mapping[NodeId, set[NodeId]],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set = _NO_EDGES,
        skip_nodes: frozenset[NodeId] | set = _NO_NODES,
    ) -> dict[NodeId, dict[NodeId, int]]:
        """Recompute ``d(source, y)`` for every affected ``y`` per source.

        Pure: the matrix is *not* mutated; the caller applies the
        returned values (``{source: {target: new_distance}}``; targets
        that became unreachable are absent).  ``skip_edges`` /
        ``skip_nodes`` exclude parts of ``graph_after`` from the
        traversal — the coalesced pass uses them to settle against the
        deletions-only graph while ``graph_after`` already contains the
        batch's insertions.
        """
        return {
            source: self._settle_one(graph_after, source, affected, skip_edges, skip_nodes)
            for source, affected in affected_by_source.items()
        }

    def _settle_one(
        self,
        graph_after: DataGraph,
        source: NodeId,
        affected: set[NodeId],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set,
        skip_nodes: frozenset[NodeId] | set,
    ) -> dict[NodeId, int]:
        """One source's affected-region recompute (Ramalingam-Reps).

        Every affected node is seeded with the best distance achievable
        through an unaffected in-neighbour (whose distance is known to be
        unchanged by the deletion) and the remaining slack is resolved by
        a small Dijkstra over the affected set only.
        """
        source_row = self.row_view(source) if source in self else {}
        tentative: dict[NodeId, float] = {}
        for y in affected:
            best = INF
            for w in graph_after.predecessors_view(y):
                if w in affected or w in skip_nodes or (w, y) in skip_edges:
                    continue
                if w == source:
                    upstream = 0
                else:
                    upstream = source_row.get(w)
                    if upstream is None:
                        continue
                if upstream + 1 < best:
                    best = upstream + 1
            if best < INF:
                tentative[y] = best
        settled: dict[NodeId, int] = {}
        heap: list[tuple[float, str, NodeId]] = [
            (dist, repr(y), y) for y, dist in tentative.items()
        ]
        heapq.heapify(heap)
        while heap:
            dist, _, y = heapq.heappop(heap)
            if y in settled or dist > tentative.get(y, INF):
                continue
            settled[y] = int(dist)
            for z in graph_after.successors_view(y):
                if z not in affected or z in settled or (y, z) in skip_edges:
                    continue
                if dist + 1 < tentative.get(z, INF):
                    tentative[z] = dist + 1
                    heapq.heappush(heap, (dist + 1, repr(z), z))
        return settled

    def settle_sources_transposed(
        self,
        graph_after: DataGraph,
        affected_by_source: Mapping[NodeId, set[NodeId]],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set = _NO_EDGES,
        skip_nodes: frozenset[NodeId] | set = _NO_NODES,
    ) -> dict[NodeId, dict[NodeId, int]]:
        """The per-target transposed deletion sweep.

        Computes exactly what :meth:`settle_sources` computes, but runs
        one settle per affected *target*, shared across every source
        affected for that target — the mirror image of the per-source
        settle, i.e. the Ramalingam-Reps recompute on the transposed
        graph.  It wins when deletions damage few distinct targets seen
        from many sources (the "edge near a sink" shape), where the
        per-source orientation would repeat near-identical Dijkstras.
        """
        affected_by_target: dict[NodeId, set[NodeId]] = {}
        for source, targets in affected_by_source.items():
            for target in targets:
                affected_by_target.setdefault(target, set()).add(source)
        results: dict[NodeId, dict[NodeId, int]] = {
            source: {} for source in affected_by_source
        }
        for target, sources in affected_by_target.items():
            settled = self._settle_one_transposed(
                graph_after, target, sources, skip_edges, skip_nodes
            )
            for source, dist in settled.items():
                results[source][target] = dist
        return results

    def _settle_one_transposed(
        self,
        graph_after: DataGraph,
        target: NodeId,
        affected_sources: set[NodeId],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set,
        skip_nodes: frozenset[NodeId] | set,
    ) -> dict[NodeId, int]:
        """One target's affected-region recompute over its sources.

        Mirror of :meth:`_settle_one`: every affected source is seeded
        with the best distance achievable through an unaffected
        out-neighbour (whose distance *to the target* is known to be
        unchanged by the deletion) and the remaining slack is resolved by
        a small Dijkstra over the affected sources only, relaxing along
        *incoming* edges.
        """
        target_column = self.column(target) if target in self else {}
        tentative: dict[NodeId, float] = {}
        for x in affected_sources:
            best = INF
            for z in graph_after.successors_view(x):
                if z in affected_sources or z in skip_nodes or (x, z) in skip_edges:
                    continue
                if z == target:
                    downstream = 0
                else:
                    downstream = target_column.get(z)
                    if downstream is None:
                        continue
                if downstream + 1 < best:
                    best = downstream + 1
            if best < INF:
                tentative[x] = best
        settled: dict[NodeId, int] = {}
        heap: list[tuple[float, str, NodeId]] = [
            (dist, repr(x), x) for x, dist in tentative.items()
        ]
        heapq.heapify(heap)
        while heap:
            dist, _, x = heapq.heappop(heap)
            if x in settled or dist > tentative.get(x, INF):
                continue
            settled[x] = int(dist)
            for w in graph_after.predecessors_view(x):
                if w not in affected_sources or w in settled or (w, x) in skip_edges:
                    continue
                if dist + 1 < tentative.get(w, INF):
                    tentative[w] = dist + 1
                    heapq.heappush(heap, (dist + 1, repr(w), w))
        return settled


class SparseSLenBackend(SLenBackend):
    """The original dict-of-dicts storage: only finite entries are kept.

    Memory scales with the number of finite entries and all kernels are
    the generic pure-Python ones — this backend is bit-for-bit the
    pre-refactor :class:`SLenMatrix` behaviour.
    """

    name = "sparse"

    __slots__ = ("_nodes", "_rows", "horizon")

    def __init__(self, nodes: Iterable[NodeId] = (), horizon: float = INF) -> None:
        self._nodes: set[NodeId] = set(nodes)
        self._rows: dict[NodeId, dict[NodeId, int]] = {node: {node: 0} for node in self._nodes}
        self.horizon = horizon

    # ------------------------------------------------------------------
    # Storage primitives
    # ------------------------------------------------------------------
    def node_set(self) -> set[NodeId]:
        """A fresh set holding the node universe."""
        return set(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def number_of_nodes(self) -> int:
        """``|VD|`` as seen by the backend."""
        return len(self._nodes)

    def get(self, source: NodeId, target: NodeId) -> float | int:
        """``SLen(source, target)``; :data:`INF` when absent."""
        return self._rows[source].get(target, INF)

    def row(self, source: NodeId) -> dict[NodeId, int]:
        """A fresh dict of the finite entries of one row."""
        return dict(self._rows[source])

    def row_view(self, source: NodeId) -> Mapping[NodeId, int]:
        """The internal row dict itself (callers must not mutate it)."""
        return self._rows[source]

    def column(self, target: NodeId) -> dict[NodeId, int]:
        """``{source: distance}`` over all sources reaching ``target``."""
        return {
            source: row[target]
            for source, row in self._rows.items()
            if target in row
        }

    def set_value(self, source: NodeId, target: NodeId, value: float | int) -> None:
        """Set one entry; :data:`INF` (or beyond the horizon) removes it."""
        if value == INF or value > self.horizon:
            self._rows[source].pop(target, None)
        else:
            self._rows[source][target] = int(value)

    def set_row(self, source: NodeId, row: Mapping[NodeId, int]) -> None:
        """Replace one row (entries beyond the horizon are dropped)."""
        new_row = {
            target: int(dist)
            for target, dist in row.items()
            if dist <= self.horizon
        }
        new_row[source] = 0
        self._rows[source] = new_row

    def replace_row_raw(self, source: NodeId, row: dict[NodeId, int]) -> None:
        """Replace one row verbatim, without horizon filtering."""
        self._rows[source] = row

    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (its row starts at ``{node: 0}``)."""
        self._nodes.add(node)
        self._rows[node] = {node: 0}

    def remove_node(self, node: NodeId) -> None:
        """Drop a node, its row and its column."""
        self._nodes.discard(node)
        del self._rows[node]
        for row in self._rows.values():
            row.pop(node, None)

    def copy(self) -> "SparseSLenBackend":
        """An independent deep copy (same horizon)."""
        clone = SparseSLenBackend(horizon=self.horizon)
        clone._nodes = set(self._nodes)
        clone._rows = {source: dict(row) for source, row in self._rows.items()}
        return clone

    # ------------------------------------------------------------------
    # Deletion-settle orientation
    # ------------------------------------------------------------------
    def settle_sources(
        self,
        graph_after: DataGraph,
        affected_by_source: Mapping[NodeId, set[NodeId]],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set = _NO_EDGES,
        skip_nodes: frozenset[NodeId] | set = _NO_NODES,
    ) -> dict[NodeId, dict[NodeId, int]]:
        """Settle in whichever orientation needs fewer Dijkstras.

        The per-source settle runs one Dijkstra per affected source; the
        transposed sweep one per distinct affected *target*, shared
        across all sources (the dense backend's batched settle gets this
        sharing implicitly from its matrix fixpoint — this closes the
        sparse/dense deletion-kernel gap).  Both orientations compute the
        exact Ramalingam-Reps fixpoint, so the choice is purely a cost
        call: the transposed sweep pays one column scan per target, hence
        it is only taken when there are strictly fewer targets than
        sources.
        """
        if affected_by_source:
            distinct_targets: set[NodeId] = set()
            for targets in affected_by_source.values():
                distinct_targets |= targets
            if len(distinct_targets) < len(affected_by_source):
                return self.settle_sources_transposed(
                    graph_after, affected_by_source, skip_edges, skip_nodes
                )
        return super().settle_sources(
            graph_after, affected_by_source, skip_edges, skip_nodes
        )

    def finite_count(self) -> int:
        """Number of finite (stored) entries."""
        return sum(len(row) for row in self._rows.values())

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Iterate over ``(source, target, distance)`` finite entries."""
        for source, row in self._rows.items():
            for target, dist in row.items():
                yield (source, target, dist)


def dense_available() -> bool:
    """Whether the dense backend can be used (numpy importable)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is baked into the test image
        return False
    return True


def resolve_backend_name(name: str, num_nodes: int) -> str:
    """Resolve a backend selection to a concrete backend name.

    ``auto`` picks ``dense`` for at least :data:`DENSE_AUTO_THRESHOLD`
    nodes (falling back to ``sparse`` when numpy is missing); ``sparse``
    and ``dense`` pass through unchanged.
    """
    if name not in BACKEND_NAMES:
        raise ValueError(f"unknown SLen backend {name!r}; expected one of {BACKEND_NAMES}")
    if name == "auto":
        if num_nodes >= DENSE_AUTO_THRESHOLD and dense_available():
            return "dense"
        return "sparse"
    return name


def make_backend(
    name: str,
    nodes: Iterable[NodeId] = (),
    horizon: float = INF,
    dense_block_size: Optional[int] = None,
) -> SLenBackend:
    """Instantiate a backend by (resolved or unresolved) name.

    ``dense_block_size`` sets the blocked dense layout's block edge
    (``None`` = :data:`repro.spl.dense.DEFAULT_DENSE_BLOCK_SIZE`); the
    sparse backend ignores it.
    """
    nodes = list(nodes)
    resolved = resolve_backend_name(name, len(nodes))
    if resolved == "sparse":
        return SparseSLenBackend(nodes, horizon=horizon)
    from repro.spl.dense import DEFAULT_DENSE_BLOCK_SIZE, DenseSLenBackend

    return DenseSLenBackend(
        nodes,
        horizon=horizon,
        block_size=DEFAULT_DENSE_BLOCK_SIZE if dense_block_size is None else dense_block_size,
    )
