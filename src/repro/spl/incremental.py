"""Incremental maintenance of the ``SLen`` matrix under graph updates.

Every data-graph update UDi changes a (usually small) set of shortest
path lengths.  The functions here apply a single update to an existing
:class:`~repro.spl.matrix.SLenMatrix` and return an :class:`SLenDelta`
recording exactly which pairs changed — the ``AFF[ui, vj] = [a, b]``
entries of Table II — and therefore which nodes are *affected*
(``Aff_N(UDi)``, Section IV-A Type II).

The contract for every function is:

* the data graph passed in is the **post-update** graph (the caller
  applies the structural change first);
* the matrix passed in reflects the **pre-update** graph and is mutated
  in place to reflect the post-update graph;
* the returned delta describes the difference between the two states.

Edge insertions use the classic relaxation
``d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y))``, exact for a single
inserted edge.  Deletions follow the affected-area approach of
Ramalingam & Reps [35] that the paper's complexity analysis is based on:
for every source the set of *affected targets* (pairs whose only shortest
paths used the deleted edge or node) is identified first, and a small
recomputation restricted to those targets restores their distances,
seeded from the unaffected frontier whose distances are known to be
unchanged.

The heavy lifting is delegated to the matrix's storage backend
(:mod:`repro.spl.backend`): the sparse backend runs the original
pure-Python kernels, the dense backend (:mod:`repro.spl.dense`)
vectorized NumPy equivalents.  This module orchestrates the kernels,
applies the settled values and assembles the deltas — identically for
every backend.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.spl.matrix import INF, SLenMatrix

NodeId = Hashable
Pair = tuple[NodeId, NodeId]
Change = tuple[float, float]

@dataclass(frozen=True)
class SLenDelta:
    """The effect of one data-graph update on the ``SLen`` matrix.

    Attributes
    ----------
    changed_pairs:
        ``{(u, v): (old_distance, new_distance)}`` for every ordered pair
        whose shortest path length changed.
    recomputed_sources:
        Sources whose distances had to be partially recomputed (deletions
        only); a measure of the work performed.
    structural_nodes:
        Nodes added to / removed from the matrix universe by the update.
    """

    changed_pairs: dict[Pair, Change] = field(default_factory=dict)
    recomputed_sources: frozenset[NodeId] = frozenset()
    structural_nodes: frozenset[NodeId] = frozenset()

    @property
    def affected_nodes(self) -> frozenset[NodeId]:
        """``Aff_N`` — every node appearing in a changed pair, plus nodes
        structurally added or removed by the update."""
        nodes: set[NodeId] = set(self.structural_nodes)
        for source, target in self.changed_pairs:
            nodes.add(source)
            nodes.add(target)
        return frozenset(nodes)

    @property
    def is_empty(self) -> bool:
        """``True`` when the update changed no shortest path length."""
        return not self.changed_pairs and not self.structural_nodes

    def __len__(self) -> int:
        return len(self.changed_pairs)


def update_slen(slen: SLenMatrix, graph_after: DataGraph, update: Update) -> SLenDelta:
    """Apply a single data-graph ``update`` to ``slen`` in place.

    ``graph_after`` must already include the structural change.
    """
    if update.graph is not GraphKind.DATA:
        raise UpdateError(f"SLen maintenance only applies to data-graph updates, got {update!r}")
    if isinstance(update, EdgeInsertion):
        return insert_edge(slen, graph_after, update.source, update.target)
    if isinstance(update, EdgeDeletion):
        return delete_edge(slen, graph_after, update.source, update.target)
    if isinstance(update, NodeInsertion):
        return insert_node(slen, graph_after, update.node, update.edges)
    if isinstance(update, NodeDeletion):
        return delete_node(slen, graph_after, update.node)
    raise UpdateError(f"unsupported update type {type(update).__name__}")


def insert_edge(
    slen: SLenMatrix, graph_after: DataGraph, source: NodeId, target: NodeId
) -> SLenDelta:
    """Maintain ``slen`` after inserting the data edge ``source -> target``."""
    if not graph_after.has_edge(source, target):
        raise UpdateError(
            f"graph does not contain edge ({source!r}, {target!r}); apply the update first"
        )
    # Every node that reaches `source` may now reach everything `target`
    # reaches; the backend relaxes all such pairs in one kernel call.
    changed = slen.backend.relax_edge(source, target)
    return SLenDelta(changed_pairs=changed)


def _apply_settled(
    slen: SLenMatrix,
    affected_by_source: dict[NodeId, set[NodeId]],
    settled: dict[NodeId, dict[NodeId, int]],
    changed: dict[Pair, Change],
) -> frozenset[NodeId]:
    """Write settled deletion values into ``slen`` and record the changes."""
    horizon = slen.horizon
    get = slen.backend.get
    for x, affected in affected_by_source.items():
        new_values = settled.get(x, {})
        for y in affected:
            old = get(x, y)
            new = new_values.get(y, INF)
            if new > horizon:
                new = INF
            if new != old:
                slen.set_distance(x, y, new)
                changed[(x, y)] = (old, new)
    return frozenset(affected_by_source)


def delete_edge(
    slen: SLenMatrix, graph_after: DataGraph, source: NodeId, target: NodeId
) -> SLenDelta:
    """Maintain ``slen`` after deleting the data edge ``source -> target``."""
    if graph_after.has_edge(source, target):
        raise UpdateError(
            f"graph still contains edge ({source!r}, {target!r}); apply the update first"
        )
    # A pair (x, y) can only get worse if *every* old shortest path used the
    # deleted edge, which requires d(x, y) == d(x, source) + 1 + d(target, y).
    backend = slen.backend
    affected_by_source = backend.affected_by_edge_deletion(source, target)
    settled = backend.settle_sources(graph_after, affected_by_source)
    changed: dict[Pair, Change] = {}
    recomputed = _apply_settled(slen, affected_by_source, settled, changed)
    return SLenDelta(changed_pairs=changed, recomputed_sources=recomputed)


def insert_node(
    slen: SLenMatrix, graph_after: DataGraph, node: NodeId, edges: tuple = ()
) -> SLenDelta:
    """Maintain ``slen`` after inserting ``node`` (plus optional incident edges)."""
    if not graph_after.has_node(node):
        raise UpdateError(f"graph does not contain node {node!r}; apply the update first")
    slen.add_node(node)
    changed: dict[Pair, Change] = {}
    recomputed: set[NodeId] = set()
    for edge in edges:
        edge_source, edge_target = edge[0], edge[1]
        delta = insert_edge(slen, graph_after, edge_source, edge_target)
        _merge_changes(changed, delta.changed_pairs)
        recomputed |= delta.recomputed_sources
    return SLenDelta(
        changed_pairs=changed,
        recomputed_sources=frozenset(recomputed),
        structural_nodes=frozenset({node}),
    )


def delete_node(slen: SLenMatrix, graph_after: DataGraph, node: NodeId) -> SLenDelta:
    """Maintain ``slen`` after deleting ``node`` and its incident edges."""
    if graph_after.has_node(node):
        raise UpdateError(f"graph still contains node {node!r}; apply the update first")
    if node not in slen.nodes():
        raise UpdateError(f"node {node!r} is not in the SLen matrix")
    changed: dict[Pair, Change] = {}
    # Pairs that involved the removed node become undefined; record them as
    # transitions to INF so Aff_N still covers the removed node.
    old_row = slen.row(node)
    old_column = slen.column(node)
    for target, dist in old_row.items():
        if target != node:
            changed[(node, target)] = (dist, INF)
    for origin, dist in old_column.items():
        if origin != node:
            changed[(origin, node)] = (dist, INF)
    slen.remove_node(node)
    backend = slen.backend
    affected_by_source = backend.affected_by_node_deletion(old_row, old_column)
    settled = backend.settle_sources(graph_after, affected_by_source)
    recomputed = _apply_settled(slen, affected_by_source, settled, changed)
    return SLenDelta(
        changed_pairs=changed,
        recomputed_sources=recomputed,
        structural_nodes=frozenset({node}),
    )


def _merge_changes(accumulated: dict[Pair, Change], fresh: dict[Pair, Change]) -> None:
    """Merge ``fresh`` changes into ``accumulated`` keeping the earliest 'old' value."""
    for pair, (old, new) in fresh.items():
        if pair in accumulated:
            original_old = accumulated[pair][0]
            accumulated[pair] = (original_old, new)
        else:
            accumulated[pair] = (old, new)


def fold_deltas(deltas: Iterable[SLenDelta]) -> SLenDelta:
    """Compose sequential per-update deltas into one net :class:`SLenDelta`.

    ``changed_pairs`` keeps the earliest old and the latest new value per
    pair; pairs whose net change is zero (an insert-then-delete pair, a
    deletion whose damage a later insertion repaired) are dropped.
    ``structural_nodes`` composes as a symmetric difference, so a node
    inserted and deleted within the same batch nets out entirely.  The
    result is what a single coalesced maintenance pass over the batch
    (:func:`repro.batching.coalesce.coalesce_slen`) reports directly.
    """
    changed: dict[Pair, Change] = {}
    recomputed: set[NodeId] = set()
    structural: set[NodeId] = set()
    for delta in deltas:
        _merge_changes(changed, delta.changed_pairs)
        recomputed |= delta.recomputed_sources
        structural ^= set(delta.structural_nodes)
    changed = {pair: change for pair, change in changed.items() if change[0] != change[1]}
    return SLenDelta(
        changed_pairs=changed,
        recomputed_sources=frozenset(recomputed),
        structural_nodes=frozenset(structural),
    )
