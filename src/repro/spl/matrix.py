"""The all-pairs shortest path length matrix ``SLen`` (Table II).

``SLen(u, v)`` is the length of the shortest directed path from ``u`` to
``v`` in the data graph, or :data:`INF` when ``v`` is unreachable from
``u``.  The matrix dominates both the memory footprint and the
maintenance cost of the whole system (the paper's Hybrid-format remark),
so its storage is *pluggable* (:mod:`repro.spl.backend`):

``sparse`` (default)
    Dict-of-dicts keeping only finite entries — O(finite entries) memory,
    pure-Python maintenance kernels.  Mirrors the paper's observation
    that social graphs produce many infinite entries.

``dense``
    A blocked ``int32`` NumPy layout (:mod:`repro.spl.dense`) — a grid
    of lazily-allocated fixed-size blocks (all-``INF`` blocks elided),
    so memory scales with the occupied blocks rather than |V|², plus
    vectorized construction, insertion, deletion and matching kernels
    that replace per-entry interpreter overhead with array operations.
    The block edge is the ``dense_block_size`` knob.

``auto``
    Dense at or above
    :data:`~repro.spl.backend.DENSE_AUTO_THRESHOLD` nodes (sparse when
    :mod:`numpy` is unavailable), sparse below — the point where the
    broadcast kernels decisively beat the dict loops while the O(|V|²)
    memory stays modest.

Both backends are horizon-aware: a finite horizon turns the matrix into
a bounded distance index whose entries beyond the horizon are absent.

The class supports the operations every layer above needs:

* construction from a :class:`~repro.graph.digraph.DataGraph` via
  all-pairs BFS,
* point queries and row views,
* row recomputation for a subset of sources (the incremental maintenance
  in :mod:`repro.spl.incremental` relies on this),
* structural edits when nodes are inserted into / removed from the graph,
* dense export to :mod:`numpy` for the ablation benchmarks.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

import numpy as np

from repro.graph.digraph import DataGraph
from repro.graph.errors import MissingNodeError
from repro.spl.backend import (
    BACKEND_NAMES,
    DENSE_AUTO_THRESHOLD,
    INF,
    SLenBackend,
    make_backend,
    resolve_backend_name,
)

NodeId = Hashable

__all__ = [
    "INF",
    "SLenMatrix",
    "BACKEND_NAMES",
    "DENSE_AUTO_THRESHOLD",
]


class SLenMatrix:
    """All-pairs shortest path length matrix over a fixed node set.

    The node set is explicit (not inferred from the finite entries) so
    that fully disconnected nodes still appear in :meth:`nodes`.  Storage
    and maintenance kernels live in a pluggable backend (see the module
    docstring); matrices with different backends compare equal when they
    hold the same distances.

    Examples
    --------
    >>> g = DataGraph({"a": "X", "b": "X", "c": "X"}, [("a", "b"), ("b", "c")])
    >>> slen = SLenMatrix.from_graph(g)
    >>> slen.distance("a", "c")
    2
    >>> slen.distance("c", "a")
    inf
    """

    __slots__ = ("_backend",)

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        horizon: float = INF,
        backend: str = "sparse",
        dense_block_size: Optional[int] = None,
    ) -> None:
        if horizon != INF and horizon < 0:
            raise ValueError("horizon must be non-negative")
        self._backend = make_backend(
            backend, nodes, horizon=horizon, dense_block_size=dense_block_size
        )

    @classmethod
    def _from_backend(cls, backend: SLenBackend) -> "SLenMatrix":
        matrix = cls.__new__(cls)
        matrix._backend = backend
        return matrix

    @property
    def backend(self) -> SLenBackend:
        """The storage backend (used by the maintenance kernels)."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Resolved backend name (``"sparse"`` or ``"dense"``)."""
        return self._backend.name

    @property
    def horizon(self) -> float:
        """Largest distance the matrix stores.

        Defaults to :data:`INF` (full all-pairs matrix).  A finite horizon
        turns the matrix into a *bounded* distance index: entries larger
        than the horizon are simply absent and read back as :data:`INF`.
        Bounded matrices are sufficient — and much cheaper to maintain —
        whenever every pattern bound is at most the horizon and no pattern
        edge uses the ``"*"`` wildcard; the experiment harness relies on
        this (DESIGN.md, substitution table).
        """
        return self._backend.horizon

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: DataGraph,
        horizon: float = INF,
        backend: str = "sparse",
        dense_block_size: Optional[int] = None,
    ) -> "SLenMatrix":
        """Build the matrix from ``graph`` (all-pairs BFS).

        ``backend`` selects the storage/kernel implementation
        (``sparse`` / ``dense`` / ``auto``); the sparse backend runs one
        Python BFS per source, the dense backend a bit-packed-frontier
        multi-source BFS per block-row stripe.  ``dense_block_size``
        sets the blocked layout's block edge (dense backends only).
        """
        matrix = cls(
            graph.nodes(),
            horizon=horizon,
            backend=backend,
            dense_block_size=dense_block_size,
        )
        matrix._backend.build(graph)
        return matrix

    @classmethod
    def from_rows(
        cls,
        nodes: Iterable[NodeId],
        rows: Mapping[NodeId, Mapping[NodeId, int]],
        backend: str = "sparse",
        dense_block_size: Optional[int] = None,
    ) -> "SLenMatrix":
        """Build a matrix from precomputed BFS rows (used by the partition layer).

        ``dense_block_size`` sets the blocked dense layout's block edge
        when ``backend`` resolves to dense (``None`` = the default edge);
        the sparse backend ignores it.
        """
        matrix = cls(nodes, backend=backend, dense_block_size=dense_block_size)
        store = matrix._backend
        for source, row in rows.items():
            if source not in store:
                raise MissingNodeError(source)
            new_row = {target: int(dist) for target, dist in row.items()}
            new_row[source] = 0
            store.replace_row_raw(source, new_row)
        return matrix

    def to_backend(
        self, backend: str, dense_block_size: Optional[int] = None
    ) -> "SLenMatrix":
        """Return a copy of this matrix stored in ``backend``.

        A no-op copy when the resolved backend matches the current one
        *and* no different block size was requested (``dense_block_size``
        of ``None`` preserves the current block size); a dense matrix
        asked for a different ``dense_block_size`` is re-blocked, and a
        conversion to dense honours ``dense_block_size``.
        """
        resolved = resolve_backend_name(backend, self.number_of_nodes)
        if resolved == self._backend.name:
            current_block_size = getattr(self._backend, "block_size", None)
            if (
                dense_block_size is None
                or current_block_size is None
                or int(dense_block_size) == current_block_size
            ):
                return self.copy()
        converted = SLenMatrix(
            self.nodes(),
            horizon=self.horizon,
            backend=resolved,
            dense_block_size=dense_block_size,
        )
        store = converted._backend
        for source in self._backend.node_set():
            store.replace_row_raw(source, dict(self._backend.row_view(source)))
        return converted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: NodeId, target: NodeId) -> float | int:
        """Return ``SLen(source, target)`` (:data:`INF` if unreachable)."""
        if source not in self._backend:
            raise MissingNodeError(source)
        if target not in self._backend:
            raise MissingNodeError(target)
        return self._backend.get(source, target)

    def row(self, source: NodeId) -> dict[NodeId, int]:
        """Return a copy of the finite entries of the row of ``source``."""
        if source not in self._backend:
            raise MissingNodeError(source)
        return self._backend.row(source)

    def row_view(self, source: NodeId) -> Mapping[NodeId, int]:
        """Return a read-only mapping of the finite entries of ``source``'s row.

        Callers must treat the returned mapping as read-only; it exists so
        that hot loops (the simulation fixpoint) can scan finite entries
        without allocating a copy per lookup.  The sparse backend hands
        out its internal row; the dense backend a cached materialisation.
        """
        if source not in self._backend:
            raise MissingNodeError(source)
        return self._backend.row_view(source)

    def column(self, target: NodeId) -> dict[NodeId, int]:
        """Return ``{source: distance}`` for all sources reaching ``target``."""
        if target not in self._backend:
            raise MissingNodeError(target)
        return self._backend.column(target)

    def reachable_from(self, source: NodeId) -> frozenset[NodeId]:
        """Nodes at finite distance from ``source`` (including itself)."""
        if source not in self._backend:
            raise MissingNodeError(source)
        return frozenset(self._backend.row_view(source))

    def within(self, source: NodeId, bound: float | int) -> frozenset[NodeId]:
        """Nodes ``v`` with ``SLen(source, v) <= bound``."""
        if source not in self._backend:
            raise MissingNodeError(source)
        return frozenset(
            target
            for target, dist in self._backend.row_view(source).items()
            if dist <= bound
        )

    def sources_within(
        self, sources: Iterable[NodeId], targets: Iterable[NodeId], bound: float | int
    ) -> set[NodeId]:
        """Subset of ``sources`` with ``SLen(source, t) <= bound`` for some ``t`` in ``targets``.

        The bulk edge-constraint check of the BGS simulation fixpoint:
        one call per pattern edge per refinement round, answered on the
        dense backend by a block-wise submatrix gather instead of one
        materialised row dict per source (:meth:`repro.spl.backend.
        SLenBackend.sources_within`).  ``bound`` may be :data:`INF`
        (any finite distance qualifies).  Sources or targets outside
        the matrix universe are ignored.
        """
        return self._backend.sources_within(sources, targets, bound)

    def nodes(self) -> frozenset[NodeId]:
        """The node universe of the matrix."""
        return frozenset(self._backend.node_set())

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Iterate over ``(source, target, distance)`` for finite entries."""
        return self._backend.finite_entries()

    @property
    def number_of_nodes(self) -> int:
        """``|VD|`` as seen by the matrix."""
        return self._backend.number_of_nodes()

    @property
    def number_of_finite_entries(self) -> int:
        """Count of finite (stored) entries."""
        return self._backend.finite_count()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_distance(self, source: NodeId, target: NodeId, value: float | int) -> None:
        """Set one entry; :data:`INF` (or a value beyond the horizon) removes it."""
        if source not in self._backend:
            raise MissingNodeError(source)
        if target not in self._backend:
            raise MissingNodeError(target)
        self._backend.set_value(source, target, value)

    def set_row(self, source: NodeId, row: Mapping[NodeId, int]) -> None:
        """Replace the whole row of ``source`` with ``row`` (finite entries only)."""
        if source not in self._backend:
            raise MissingNodeError(source)
        self._backend.set_row(source, row)

    def add_node(self, node: NodeId) -> None:
        """Add a new isolated node to the matrix universe."""
        if node in self._backend:
            return
        self._backend.add_node(node)

    def remove_node(self, node: NodeId) -> None:
        """Drop ``node`` from the universe, removing its row and column."""
        if node not in self._backend:
            raise MissingNodeError(node)
        self._backend.remove_node(node)

    def recompute_rows(self, graph: DataGraph, sources: Iterable[NodeId]) -> set[NodeId]:
        """Recompute the rows of ``sources`` from ``graph`` via BFS.

        Returns the set of sources whose row actually changed.
        """
        sources = list(sources)
        for source in sources:
            if source not in self._backend:
                raise MissingNodeError(source)
        return self._backend.recompute_rows(graph, sources)

    # ------------------------------------------------------------------
    # Copy / comparison / export
    # ------------------------------------------------------------------
    def copy(self) -> "SLenMatrix":
        """Return a deep copy of the matrix (preserving horizon and backend)."""
        return SLenMatrix._from_backend(self._backend.copy())

    def fork(self) -> "SLenMatrix":
        """Return a copy-on-write snapshot clone (see ``SLenBackend.fork``).

        On the blocked dense backend this copies only the block-pointer
        grid and shares every block until one side writes it; on
        backends without structural sharing it falls back to a deep
        copy.  Both the fork and the live matrix stay fully usable.
        """
        return SLenMatrix._from_backend(self._backend.fork())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SLenMatrix):
            return NotImplemented
        mine = self._backend
        theirs = other._backend
        if mine.node_set() != theirs.node_set():
            return False
        return all(
            dict(mine.row_view(source)) == dict(theirs.row_view(source))
            for source in mine.node_set()
        )

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("SLenMatrix is mutable and therefore unhashable")

    def __repr__(self) -> str:
        return (
            f"SLenMatrix(nodes={self.number_of_nodes}, "
            f"finite_entries={self.number_of_finite_entries}, "
            f"backend={self.backend_name!r})"
        )

    def differences(self, other: "SLenMatrix") -> dict[tuple[NodeId, NodeId], tuple]:
        """Return ``{(u, v): (self_distance, other_distance)}`` for differing pairs.

        Only pairs present in both universes are compared; this is the
        ``AFF[ui, vj] = [a, b]`` structure of Table II.
        """
        shared = self._backend.node_set() & other._backend.node_set()
        changes: dict[tuple[NodeId, NodeId], tuple] = {}
        for source in shared:
            mine = self._backend.row_view(source)
            theirs = other._backend.row_view(source)
            for target in shared:
                a = mine.get(target, INF)
                b = theirs.get(target, INF)
                if a != b:
                    changes[(source, target)] = (a, b)
        return changes

    def to_dense(self, order: Optional[list[NodeId]] = None) -> tuple[np.ndarray, list[NodeId]]:
        """Export to a dense ``numpy`` array (``inf`` for unreachable pairs).

        Returns the array together with the node ordering of its axes.
        """
        universe = self._backend.node_set()
        ordering = list(order) if order is not None else sorted(universe, key=repr)
        if set(ordering) != universe:
            raise ValueError("order must be a permutation of the matrix's node set")
        index = {node: position for position, node in enumerate(ordering)}
        dense = np.full((len(ordering), len(ordering)), INF, dtype=float)
        for source in universe:
            i = index[source]
            for target, dist in self._backend.row_view(source).items():
                dense[i, index[target]] = dist
        return dense, ordering
