"""The all-pairs shortest path length matrix ``SLen`` (Table II).

``SLen(u, v)`` is the length of the shortest directed path from ``u`` to
``v`` in the data graph, or :data:`INF` when ``v`` is unreachable from
``u``.  The matrix is stored *sparsely* — only finite entries are kept —
mirroring the paper's observation that social graphs produce many
infinite entries (nodes with no out- or in-degree), which motivates its
Hybrid-format compression remark.

The class supports the operations every layer above needs:

* construction from a :class:`~repro.graph.digraph.DataGraph` via
  all-pairs BFS,
* point queries and row views,
* row recomputation for a subset of sources (the incremental maintenance
  in :mod:`repro.spl.incremental` relies on this),
* structural edits when nodes are inserted into / removed from the graph,
* dense export to :mod:`numpy` for the ablation benchmarks.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

import numpy as np

from repro.graph.digraph import DataGraph
from repro.graph.errors import MissingNodeError
from repro.spl.sssp import bfs_lengths, bfs_lengths_within

NodeId = Hashable

#: Distance value used for unreachable pairs.
INF: float = math.inf


class SLenMatrix:
    """Sparse all-pairs shortest path length matrix over a fixed node set.

    The node set is explicit (not inferred from the finite entries) so
    that fully disconnected nodes still appear in :meth:`nodes`.

    Examples
    --------
    >>> g = DataGraph({"a": "X", "b": "X", "c": "X"}, [("a", "b"), ("b", "c")])
    >>> slen = SLenMatrix.from_graph(g)
    >>> slen.distance("a", "c")
    2
    >>> slen.distance("c", "a")
    inf
    """

    __slots__ = ("_nodes", "_rows", "_horizon")

    def __init__(self, nodes: Iterable[NodeId] = (), horizon: float = INF) -> None:
        if horizon != INF and horizon < 0:
            raise ValueError("horizon must be non-negative")
        self._nodes: set[NodeId] = set(nodes)
        self._rows: dict[NodeId, dict[NodeId, int]] = {node: {node: 0} for node in self._nodes}
        self._horizon: float = horizon

    @property
    def horizon(self) -> float:
        """Largest distance the matrix stores.

        Defaults to :data:`INF` (full all-pairs matrix).  A finite horizon
        turns the matrix into a *bounded* distance index: entries larger
        than the horizon are simply absent and read back as :data:`INF`.
        Bounded matrices are sufficient — and much cheaper to maintain —
        whenever every pattern bound is at most the horizon and no pattern
        edge uses the ``"*"`` wildcard; the experiment harness relies on
        this (DESIGN.md, substitution table).
        """
        return self._horizon

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: DataGraph, horizon: float = INF) -> "SLenMatrix":
        """Build the matrix by running a BFS from every node of ``graph``."""
        matrix = cls(graph.nodes(), horizon=horizon)
        if horizon == INF:
            for source in graph.nodes():
                matrix._rows[source] = bfs_lengths(graph, source)
        else:
            for source in graph.nodes():
                matrix._rows[source] = bfs_lengths_within(graph, source, int(horizon))
        return matrix

    @classmethod
    def from_rows(
        cls, nodes: Iterable[NodeId], rows: Mapping[NodeId, Mapping[NodeId, int]]
    ) -> "SLenMatrix":
        """Build a matrix from precomputed BFS rows (used by the partition layer)."""
        matrix = cls(nodes)
        for source, row in rows.items():
            if source not in matrix._nodes:
                raise MissingNodeError(source)
            matrix._rows[source] = {target: int(dist) for target, dist in row.items()}
            matrix._rows[source][source] = 0
        return matrix

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: NodeId, target: NodeId) -> float | int:
        """Return ``SLen(source, target)`` (:data:`INF` if unreachable)."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        if target not in self._nodes:
            raise MissingNodeError(target)
        return self._rows[source].get(target, INF)

    def row(self, source: NodeId) -> dict[NodeId, int]:
        """Return a copy of the finite entries of the row of ``source``."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        return dict(self._rows[source])

    def row_view(self, source: NodeId) -> Mapping[NodeId, int]:
        """Return the *internal* row mapping of ``source`` without copying.

        Callers must treat the returned mapping as read-only; it exists so
        that hot loops (the simulation fixpoint) can scan finite entries
        without allocating a copy per lookup.
        """
        if source not in self._nodes:
            raise MissingNodeError(source)
        return self._rows[source]

    def column(self, target: NodeId) -> dict[NodeId, int]:
        """Return ``{source: distance}`` for all sources reaching ``target``."""
        if target not in self._nodes:
            raise MissingNodeError(target)
        return {
            source: row[target]
            for source, row in self._rows.items()
            if target in row
        }

    def reachable_from(self, source: NodeId) -> frozenset[NodeId]:
        """Nodes at finite distance from ``source`` (including itself)."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        return frozenset(self._rows[source])

    def within(self, source: NodeId, bound: float | int) -> frozenset[NodeId]:
        """Nodes ``v`` with ``SLen(source, v) <= bound``."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        return frozenset(
            target for target, dist in self._rows[source].items() if dist <= bound
        )

    def nodes(self) -> frozenset[NodeId]:
        """The node universe of the matrix."""
        return frozenset(self._nodes)

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Iterate over ``(source, target, distance)`` for finite entries."""
        for source, row in self._rows.items():
            for target, dist in row.items():
                yield (source, target, dist)

    @property
    def number_of_nodes(self) -> int:
        """``|VD|`` as seen by the matrix."""
        return len(self._nodes)

    @property
    def number_of_finite_entries(self) -> int:
        """Count of finite (stored) entries."""
        return sum(len(row) for row in self._rows.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_distance(self, source: NodeId, target: NodeId, value: float | int) -> None:
        """Set one entry; :data:`INF` (or a value beyond the horizon) removes it."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        if target not in self._nodes:
            raise MissingNodeError(target)
        if value == INF or value > self._horizon:
            self._rows[source].pop(target, None)
        else:
            self._rows[source][target] = int(value)

    def set_row(self, source: NodeId, row: Mapping[NodeId, int]) -> None:
        """Replace the whole row of ``source`` with ``row`` (finite entries only)."""
        if source not in self._nodes:
            raise MissingNodeError(source)
        new_row = {
            target: int(dist)
            for target, dist in row.items()
            if dist <= self._horizon
        }
        new_row[source] = 0
        self._rows[source] = new_row

    def add_node(self, node: NodeId) -> None:
        """Add a new isolated node to the matrix universe."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rows[node] = {node: 0}

    def remove_node(self, node: NodeId) -> None:
        """Drop ``node`` from the universe, removing its row and column."""
        if node not in self._nodes:
            raise MissingNodeError(node)
        self._nodes.discard(node)
        del self._rows[node]
        for row in self._rows.values():
            row.pop(node, None)

    def recompute_rows(self, graph: DataGraph, sources: Iterable[NodeId]) -> set[NodeId]:
        """Recompute the rows of ``sources`` from ``graph`` via BFS.

        Returns the set of sources whose row actually changed.
        """
        changed: set[NodeId] = set()
        for source in sources:
            if source not in self._nodes:
                raise MissingNodeError(source)
            new_row = bfs_lengths(graph, source)
            if new_row != self._rows[source]:
                self._rows[source] = new_row
                changed.add(source)
        return changed

    # ------------------------------------------------------------------
    # Copy / comparison / export
    # ------------------------------------------------------------------
    def copy(self) -> "SLenMatrix":
        """Return a deep copy of the matrix (preserving the horizon)."""
        clone = SLenMatrix(horizon=self._horizon)
        clone._nodes = set(self._nodes)
        clone._rows = {source: dict(row) for source, row in self._rows.items()}
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SLenMatrix):
            return NotImplemented
        return self._nodes == other._nodes and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("SLenMatrix is mutable and therefore unhashable")

    def __repr__(self) -> str:
        return (
            f"SLenMatrix(nodes={self.number_of_nodes}, "
            f"finite_entries={self.number_of_finite_entries})"
        )

    def differences(self, other: "SLenMatrix") -> dict[tuple[NodeId, NodeId], tuple]:
        """Return ``{(u, v): (self_distance, other_distance)}`` for differing pairs.

        Only pairs present in both universes are compared; this is the
        ``AFF[ui, vj] = [a, b]`` structure of Table II.
        """
        shared = self._nodes & other._nodes
        changes: dict[tuple[NodeId, NodeId], tuple] = {}
        for source in shared:
            mine = self._rows[source]
            theirs = other._rows[source]
            for target in shared:
                a = mine.get(target, INF)
                b = theirs.get(target, INF)
                if a != b:
                    changes[(source, target)] = (a, b)
        return changes

    def to_dense(self, order: Optional[list[NodeId]] = None) -> tuple[np.ndarray, list[NodeId]]:
        """Export to a dense ``numpy`` array (``inf`` for unreachable pairs).

        Returns the array together with the node ordering of its axes.
        """
        ordering = list(order) if order is not None else sorted(self._nodes, key=repr)
        if set(ordering) != self._nodes:
            raise ValueError("order must be a permutation of the matrix's node set")
        index = {node: position for position, node in enumerate(ordering)}
        dense = np.full((len(ordering), len(ordering)), INF, dtype=float)
        for source, row in self._rows.items():
            i = index[source]
            for target, dist in row.items():
                dense[i, index[target]] = dist
        return dense, ordering
