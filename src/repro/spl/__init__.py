"""Shortest-path-length substrate.

The GPNM machinery is built on all-pairs shortest path *lengths* over the
data graph (the paper's ``SLen`` matrix).  This package provides:

* :mod:`repro.spl.sssp` — single-source BFS (unweighted) and Dijkstra
  (weighted extension) traversals;
* :mod:`repro.spl.matrix` — the :class:`SLenMatrix` all-pairs facade;
* :mod:`repro.spl.backend` — the pluggable storage/kernel interface and
  the sparse (dict-of-dicts) backend;
* :mod:`repro.spl.dense` — the blocked dense ``int32`` NumPy backend:
  a lazily-allocated block grid (all-``INF`` blocks elided, so memory
  scales with occupied blocks rather than |V|²) with vectorized
  construction (bit-packed BFS frontiers), insertion, deletion and
  matching kernels; the block edge is the ``dense_block_size`` knob;
* :mod:`repro.spl.incremental` — maintenance of ``SLen`` under the update
  vocabulary of Section III-C, producing the affected-pair sets (``AFF``)
  that drive elimination detection;
* :mod:`repro.spl.hybrid` — the ELL+COO "Hybrid format" compression of the
  sparse matrix discussed in the Section IV-B remark.
"""

from repro.spl.backend import (
    BACKEND_NAMES,
    DENSE_AUTO_THRESHOLD,
    SLenBackend,
    SparseSLenBackend,
    dense_available,
    resolve_backend_name,
)
from repro.spl.incremental import SLenDelta, fold_deltas, update_slen
from repro.spl.matrix import INF, SLenMatrix
from repro.spl.sssp import bfs_lengths, bfs_lengths_within, dijkstra_lengths
from repro.spl.hybrid import HybridMatrix

__all__ = [
    "INF",
    "SLenMatrix",
    "SLenDelta",
    "SLenBackend",
    "SparseSLenBackend",
    "BACKEND_NAMES",
    "DENSE_AUTO_THRESHOLD",
    "dense_available",
    "resolve_backend_name",
    "fold_deltas",
    "update_slen",
    "bfs_lengths",
    "bfs_lengths_within",
    "dijkstra_lengths",
    "HybridMatrix",
]
