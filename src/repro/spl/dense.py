"""Dense NumPy backend for the ``SLen`` matrix.

Stores the all-pairs shortest path lengths as one contiguous ``int32``
matrix ``D`` indexed by a node -> slot map, with :data:`SENTINEL`
standing in for ``INF``.  Memory is O(|V|²) *regardless of sparsity* —
4 bytes per ordered pair (a 2048-node graph costs 16 MiB) — which is the
trade-off against the dict-of-dicts sparse backend: that one stores only
finite entries but pays per-entry interpreter overhead on every kernel.
The ``auto`` selection policy (:func:`repro.spl.backend.resolve_backend_name`)
arbitrates via a node-count threshold.

The three hot maintenance kernels are vectorized:

* **construction** — frontier-array multi-source BFS: one boolean
  frontier matrix (sources × nodes) expanded level by level through a
  CSR predecessor gather + ``logical_or.reduceat``, instead of one
  Python BFS per source;
* **single-edge insertion** — the rank-1 broadcast relaxation
  ``D = minimum(D, D[:, u, None] + 1 + D[None, v, :])``, replacing the
  O(n²) Python double loop with one elementwise pass;
* **deletion settle** — a batched affected-region recompute: all
  affected source rows are settled together by iterated min-plus
  relaxation over the affected columns only (``minimum.reduceat`` over
  the CSR predecessor gather), seeded from the unaffected entries,
  exactly the Ramalingam & Reps fixpoint the per-source Dijkstra
  computes.

Distances are bounded by the horizon exactly like the sparse backend:
entries beyond it are simply absent (``SENTINEL``).  Early horizon
clipping inside the settle iteration is equivalent to the sparse
backend's clip-at-the-end because min-plus relaxation is monotone: any
prefix of a path of length ≤ horizon is itself ≤ horizon.

A CSR-style adjacency cache keyed on graph identity plus
``graph.version`` avoids rebuilding the predecessor arrays when several
kernels run against an unchanged graph (the
:class:`~repro.graph.digraph.DataGraph` version counter is bumped on
every structural mutation, and the cached graph is held and compared
with ``is``, so the cache can never serve stale adjacency).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

import numpy as np

from repro.graph.digraph import DataGraph
from repro.spl.backend import INF, SLenBackend, _NO_EDGES, _NO_NODES

NodeId = Hashable
Pair = tuple[NodeId, NodeId]
Change = tuple[float, float]

#: ``INF`` stand-in.  ``2**29`` keeps every kernel int32-safe: the
#: largest intermediate is ``SENTINEL + SENTINEL + 1 = 2**30 + 1 < 2**31``.
SENTINEL: int = 2**29


def _segment_reduce(values, segment_starts, segment_empty, ufunc, fill):
    """Per-segment ``ufunc`` reduction of ``values`` along axis 1.

    ``segment_starts``/``segment_empty`` describe CSR-style segments of
    the gathered axis.  Empty segments yield ``fill``.  Implemented via
    ``ufunc.reduceat`` over the non-empty segments only — passing empty
    segments to ``reduceat`` directly would mis-handle both the
    "start == end" case (it returns the element at ``start`` unreduced)
    and trailing empties (whose out-of-range start would have to be
    clipped, silently truncating the previous segment).
    """
    k = values.shape[0]
    out = np.full((k, len(segment_empty)), fill, dtype=values.dtype)
    if values.shape[1] == 0:
        return out
    nonempty = ~segment_empty
    if nonempty.any():
        out[:, nonempty] = ufunc.reduceat(values, segment_starts[nonempty], axis=1)
    return out


class DenseSLenBackend(SLenBackend):
    """Contiguous int32 all-pairs matrix with vectorized kernels."""

    name = "dense"

    __slots__ = ("horizon", "_index", "_slots", "_free", "_D", "_row_cache", "_csr_cache")

    def __init__(self, nodes: Iterable[NodeId] = (), horizon: float = INF) -> None:
        self.horizon = horizon
        order = list(dict.fromkeys(nodes))
        n = len(order)
        #: node -> slot (row/column position in ``_D``)
        self._index: dict[NodeId, int] = {node: slot for slot, node in enumerate(order)}
        #: slot -> node (``None`` for free slots)
        self._slots: list[Optional[NodeId]] = list(order)
        self._free: list[int] = []
        capacity = max(1, n)
        self._D = np.full((capacity, capacity), SENTINEL, dtype=np.int32)
        if n:
            diag = np.arange(n)
            self._D[diag, diag] = 0
        #: per-row materialised finite-entry dicts (invalidated on mutation)
        self._row_cache: dict[NodeId, dict[NodeId, int]] = {}
        #: (graph, version) -> CSR predecessor arrays.  The graph itself
        #: is held (identity-checked with ``is``) so a freed graph's
        #: reused id can never alias the cache.
        self._csr_cache: Optional[tuple[DataGraph, int, tuple]] = None

    # ------------------------------------------------------------------
    # Horizon helpers
    # ------------------------------------------------------------------
    @property
    def _hcap(self) -> Optional[int]:
        """The horizon as an int cap, or ``None`` for an unbounded matrix."""
        return None if self.horizon == INF else int(self.horizon)

    # ------------------------------------------------------------------
    # Storage primitives
    # ------------------------------------------------------------------
    def node_set(self) -> set[NodeId]:
        return set(self._index)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def number_of_nodes(self) -> int:
        return len(self._index)

    def get(self, source: NodeId, target: NodeId) -> float | int:
        value = int(self._D[self._index[source], self._index[target]])
        return INF if value >= SENTINEL else value

    def row(self, source: NodeId) -> dict[NodeId, int]:
        values = self._D[self._index[source]]
        slots = self._slots
        return {
            slots[position]: int(values[position])
            for position in np.nonzero(values < SENTINEL)[0]
        }

    def row_view(self, source: NodeId) -> Mapping[NodeId, int]:
        cached = self._row_cache.get(source)
        if cached is None:
            if source not in self._index:
                raise KeyError(source)
            cached = self.row(source)
            self._row_cache[source] = cached
        return cached

    def column(self, target: NodeId) -> dict[NodeId, int]:
        values = self._D[:, self._index[target]]
        slots = self._slots
        return {
            slots[position]: int(values[position])
            for position in np.nonzero(values < SENTINEL)[0]
        }

    def set_value(self, source: NodeId, target: NodeId, value: float | int) -> None:
        i = self._index[source]
        j = self._index[target]
        if value == INF or value > self.horizon:
            self._D[i, j] = SENTINEL
        else:
            self._D[i, j] = int(value)
        self._row_cache.pop(source, None)

    def set_row(self, source: NodeId, row: Mapping[NodeId, int]) -> None:
        i = self._index[source]
        self._D[i, :] = SENTINEL
        horizon = self.horizon
        for target, dist in row.items():
            if dist <= horizon:
                self._D[i, self._index[target]] = int(dist)
        self._D[i, i] = 0
        self._row_cache.pop(source, None)

    def replace_row_raw(self, source: NodeId, row: dict[NodeId, int]) -> None:
        i = self._index[source]
        self._D[i, :] = SENTINEL
        for target, dist in row.items():
            self._D[i, self._index[target]] = int(dist)
        self._row_cache.pop(source, None)

    def add_node(self, node: NodeId) -> None:
        if self._free:
            slot = self._free.pop()
            self._slots[slot] = node
        else:
            slot = len(self._slots)
            if slot >= self._D.shape[0]:
                self._grow()
            self._slots.append(node)
        self._index[node] = slot
        self._D[slot, :] = SENTINEL
        self._D[:, slot] = SENTINEL
        self._D[slot, slot] = 0

    def _grow(self) -> None:
        old = self._D
        capacity = max(4, old.shape[0] * 2)
        grown = np.full((capacity, capacity), SENTINEL, dtype=np.int32)
        used = old.shape[0]
        grown[:used, :used] = old
        self._D = grown

    def remove_node(self, node: NodeId) -> None:
        slot = self._index.pop(node)
        self._slots[slot] = None
        self._free.append(slot)
        self._D[slot, :] = SENTINEL
        self._D[:, slot] = SENTINEL
        # Every remaining row lost a column entry; drop all cached rows.
        self._row_cache.clear()

    def copy(self) -> "DenseSLenBackend":
        clone = DenseSLenBackend(horizon=self.horizon)
        clone._index = dict(self._index)
        clone._slots = list(self._slots)
        clone._free = list(self._free)
        clone._D = self._D.copy()
        return clone

    def finite_count(self) -> int:
        return int((self._D < SENTINEL).sum())

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        slots = self._slots
        for source, i in self._index.items():
            values = self._D[i]
            for position in np.nonzero(values < SENTINEL)[0]:
                yield (source, slots[position], int(values[position]))

    # ------------------------------------------------------------------
    # CSR adjacency cache
    # ------------------------------------------------------------------
    def _pred_csr(self, graph: DataGraph):
        """CSR predecessor arrays of ``graph`` over the current slot map.

        Returns ``(indptr, indices, empty)`` where ``indices[indptr[y] :
        indptr[y + 1]]`` are the slots of the in-neighbours of the node
        at slot ``y`` (graph nodes without a slot are dropped — they have
        no representable distance, exactly like their absence from a
        sparse row) and ``empty`` marks slots with no predecessor.  The
        result is cached against the graph's mutation version.
        """
        cache = self._csr_cache
        if cache is not None and cache[0] is graph and cache[1] == graph.version:
            return cache[2]
        index = self._index
        capacity = self._D.shape[0]
        counts = np.zeros(capacity + 1, dtype=np.int64)
        pred_lists: list[list[int]] = [()] * capacity  # type: ignore[list-item]
        for node, slot in index.items():
            if not graph.has_node(node):
                continue
            preds = [
                index[w] for w in graph.predecessors_view(node) if w in index
            ]
            pred_lists[slot] = preds
            counts[slot + 1] = len(preds)
        indptr = np.cumsum(counts)
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        for slot in range(capacity):
            preds = pred_lists[slot]
            if preds:
                indices[indptr[slot] : indptr[slot + 1]] = preds
        empty = indptr[:-1] == indptr[1:]
        csr = (indptr, indices, empty)
        self._csr_cache = (graph, graph.version, csr)
        return csr

    # ------------------------------------------------------------------
    # Vectorized kernels
    # ------------------------------------------------------------------
    def build(self, graph: DataGraph) -> None:
        """Frontier-array multi-source BFS over all slots at once."""
        n = len(self._slots)
        if n == 0:
            return
        indptr, indices, empty = self._pred_csr(graph)
        D = self._D
        if indices.size == 0:
            return
        frontier = np.zeros((n, D.shape[1]), dtype=bool)
        rows = np.arange(n)
        frontier[rows, rows] = True
        hcap = self._hcap
        level = 0
        while frontier.any():
            if hcap is not None and level >= hcap:
                break
            level += 1
            reached = _segment_reduce(
                frontier[:, indices], indptr[:-1], empty, np.logical_or, False
            )
            newly = reached & (D[:n, :] >= SENTINEL)
            if not newly.any():
                break
            D[:n, :][newly] = level
            frontier = newly
        self._row_cache.clear()

    def recompute_rows(self, graph: DataGraph, sources: Iterable[NodeId]) -> set[NodeId]:
        """Multi-source BFS restricted to ``sources``; returns changed rows.

        Mirrors the sparse quirk of storing plain (horizon-unfiltered)
        BFS rows: the frontier expansion here is unbounded too.
        """
        source_list = list(sources)
        if not source_list:
            return set()
        slot_of = self._index
        xi = np.array([slot_of[source] for source in source_list], dtype=np.int64)
        indptr, indices, empty = self._pred_csr(graph)
        old_rows = self._D[xi, :].copy()
        k = len(source_list)
        capacity = self._D.shape[1]
        R = np.full((k, capacity), SENTINEL, dtype=np.int32)
        R[np.arange(k), xi] = 0
        if indices.size:
            frontier = R == 0
            level = 0
            while frontier.any():
                level += 1
                reached = _segment_reduce(
                    frontier[:, indices], indptr[:-1], empty, np.logical_or, False
                )
                newly = reached & (R >= SENTINEL)
                if not newly.any():
                    break
                R[newly] = level
                frontier = newly
        changed_mask = (R != old_rows).any(axis=1)
        changed: set[NodeId] = set()
        for position in np.nonzero(changed_mask)[0]:
            self._D[xi[position], :] = R[position]
            source = source_list[int(position)]
            changed.add(source)
            self._row_cache.pop(source, None)
        return changed

    def relax_edge(self, source: NodeId, target: NodeId) -> dict[Pair, Change]:
        """Rank-1 broadcast relaxation for an inserted edge."""
        iu = self._index[source]
        iv = self._index[target]
        D = self._D
        candidate = D[:, iu, None] + D[None, iv, :]
        candidate += 1
        mask = candidate < D
        hcap = self._hcap
        if hcap is not None:
            mask &= candidate <= hcap
        xs, ys = np.nonzero(mask)
        if xs.size == 0:
            return {}
        old_values = D[xs, ys]
        new_values = candidate[xs, ys]
        D[xs, ys] = new_values
        # Assemble the changed-pairs delta with C-level zips: an early
        # insertion on a well-connected graph can improve tens of
        # thousands of pairs, so per-pair Python work would dominate the
        # whole kernel.  Old ``INF`` entries surface as float('inf') via
        # a float cast (== is unaffected: 3.0 == 3).  The slot array is
        # filled by assignment — np.array() would try to unpack sequence
        # node ids (e.g. tuples) into extra dimensions.
        slot_array = np.empty(len(self._slots), dtype=object)
        slot_array[:] = self._slots
        keys = zip(slot_array[xs].tolist(), slot_array[ys].tolist())
        olds = old_values.astype(float)
        olds[olds >= SENTINEL] = INF
        changed = dict(zip(keys, zip(olds.tolist(), new_values.tolist())))
        cache = self._row_cache
        if cache:
            for x in dict.fromkeys(xs.tolist()):
                cache.pop(self._slots[x], None)
        return changed

    def affected_by_edge_deletion(
        self, source: NodeId, target: NodeId
    ) -> dict[NodeId, set[NodeId]]:
        """Vectorized affectedness test ``D == D[:, u] + 1 + D[v, :]``."""
        iu = self._index[source]
        iv = self._index[target]
        D = self._D
        candidate = D[:, iu, None] + D[None, iv, :]
        candidate += 1
        # A sentinel on either leg makes the candidate exceed any stored
        # value, so plain equality is the full affectedness test; the
        # diagonal (D == 0 < candidate) is excluded automatically.
        xs, ys = np.nonzero(D == candidate)
        slots = self._slots
        affected: dict[NodeId, set[NodeId]] = {}
        for x, y in zip(xs.tolist(), ys.tolist()):
            affected.setdefault(slots[x], set()).add(slots[y])
        return affected

    def affected_by_node_deletion(
        self, old_row: Mapping[NodeId, int], old_column: Mapping[NodeId, int]
    ) -> dict[NodeId, set[NodeId]]:
        index = self._index
        xs_nodes = [x for x in old_column if x in index]
        ys_nodes = [y for y in old_row if y in index]
        if not xs_nodes or not ys_nodes:
            return {}
        xi = np.array([index[x] for x in xs_nodes], dtype=np.int64)
        yi = np.array([index[y] for y in ys_nodes], dtype=np.int64)
        through = (
            np.array([old_column[x] for x in xs_nodes], dtype=np.int32)[:, None]
            + np.array([old_row[y] for y in ys_nodes], dtype=np.int32)[None, :]
        )
        sub = self._D[np.ix_(xi, yi)]
        mask = (sub == through) & (xi[:, None] != yi[None, :])
        affected: dict[NodeId, set[NodeId]] = {}
        for a, b in zip(*(axis.tolist() for axis in np.nonzero(mask))):
            affected.setdefault(xs_nodes[a], set()).add(ys_nodes[b])
        return affected

    def settle_sources(
        self,
        graph_after: DataGraph,
        affected_by_source: Mapping[NodeId, set[NodeId]],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set = _NO_EDGES,
        skip_nodes: frozenset[NodeId] | set = _NO_NODES,
    ) -> dict[NodeId, dict[NodeId, int]]:
        """Batched affected-region recompute over all affected source rows.

        Affected entries start at :data:`SENTINEL` and are relaxed to a
        fixpoint through CSR predecessor gathers; unaffected entries are
        held fixed (they are exact by the Ramalingam-Reps affected-area
        argument), which makes the fixpoint equal to the per-source
        Dijkstra of the generic kernel.
        """
        if not affected_by_source:
            return {}
        index = self._index
        slots = self._slots
        sources = list(affected_by_source)
        xi = np.array([index[source] for source in sources], dtype=np.int64)
        k = len(sources)
        capacity = self._D.shape[1]
        R = self._D[xi, :].copy()
        affected_mask = np.zeros((k, capacity), dtype=bool)
        union_slots: set[int] = set()
        for position, source in enumerate(sources):
            for y in affected_by_source[source]:
                slot = index[y]
                affected_mask[position, slot] = True
                union_slots.add(slot)
        R[affected_mask] = SENTINEL

        # Only the union targets can change, so only their predecessor
        # lists are gathered (skips applied inline) — far cheaper than a
        # whole-graph CSR when the affected region is small.
        targets = np.fromiter(sorted(union_slots), dtype=np.int64, count=len(union_slots))
        pred_lists = []
        for slot in targets.tolist():
            node = slots[slot]
            pred_lists.append(
                [
                    index[w]
                    for w in graph_after.predecessors_view(node)
                    if w in index and w not in skip_nodes and (w, node) not in skip_edges
                ]
            )
        segment_lengths = np.array([len(preds) for preds in pred_lists], dtype=np.int64)
        gather_cols = (
            np.concatenate([np.asarray(preds, dtype=np.int64) for preds in pred_lists if preds])
            if int(segment_lengths.sum())
            else np.empty(0, dtype=np.int64)
        )
        segment_starts = np.concatenate(([0], np.cumsum(segment_lengths)[:-1]))
        segment_empty = segment_lengths == 0
        hcap = self._hcap
        affected_cols = affected_mask[:, targets]
        if gather_cols.size:
            while True:
                candidate = _segment_reduce(
                    R[:, gather_cols], segment_starts, segment_empty, np.minimum, SENTINEL
                )
                candidate = candidate + 1
                if hcap is not None:
                    candidate[candidate > hcap] = SENTINEL
                else:
                    candidate[candidate > SENTINEL] = SENTINEL
                current = R[:, targets]
                improved = affected_cols & (candidate < current)
                if not improved.any():
                    break
                R[:, targets] = np.where(improved, candidate, current)

        results: dict[NodeId, dict[NodeId, int]] = {}
        for position, source in enumerate(sources):
            settled: dict[NodeId, int] = {}
            row = R[position]
            for slot in np.nonzero(affected_mask[position])[0]:
                value = int(row[slot])
                if value < SENTINEL:
                    settled[slots[slot]] = value
            results[source] = settled
        return results
