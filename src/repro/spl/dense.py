"""Blocked dense NumPy backend for the ``SLen`` matrix.

The all-pairs shortest path lengths are stored as a **grid of fixed-size
``int32`` blocks** indexed by a node -> slot map, with :data:`SENTINEL`
standing in for ``INF``.  Blocks are allocated lazily the first time a
finite entry lands in them, and all-``INF`` blocks are simply absent
from the grid — so memory scales with the number of *occupied* blocks,
not with |V|².  On a horizon-bounded matrix over a sparse social graph
most off-diagonal blocks never materialise, which is what lets the
dense backend handle graphs past ~10⁴ nodes (a full 10⁴×10⁴ ``int32``
matrix costs 400 MB; the blocked layout pays only for the reachable
neighbourhood structure).  The trade-off against the dict-of-dicts
sparse backend is unchanged in spirit: the sparse backend stores only
finite entries but pays per-entry interpreter overhead on every kernel,
while the blocked layout pays (at most) a block-granular memory premium
for vectorized kernels.  The ``auto`` selection policy
(:func:`repro.spl.backend.resolve_backend_name`) arbitrates via a
node-count threshold; :data:`DEFAULT_DENSE_BLOCK_SIZE` (overridable per
matrix via the ``dense_block_size`` knob threaded through
:class:`~repro.spl.matrix.SLenMatrix`, ``ExperimentConfig`` and
``ua-gpnm --dense-block-size``) sets the block edge.

The hot maintenance kernels are vectorized and block-aware:

* **construction** — multi-source BFS with **bit-packed frontier
  words**: sources are processed in block-row stripes, each stripe's
  frontier is packed 64 sources per ``np.uint64`` word, and one level of
  expansion is a CSR predecessor gather followed by a
  ``bitwise_or.reduceat`` over the words (8× less memory traffic than
  the PR-2 boolean-frontier kernel, which survives as the
  ``"boolean"`` frontier mode for differential testing and the
  benchmark's speedup row);
* **single-edge insertion** — the rank-1 relaxation
  ``d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y))`` restricted to the
  finite column of ``u`` × the finite row of ``v`` and gathered /
  scattered block-wise, so no |V|²-sized temporary is ever allocated;
* **deletion settle** — the batched affected-region recompute: all
  affected source rows are settled together by iterated min-plus
  relaxation over the affected columns only (``minimum.reduceat`` over
  the CSR predecessor gather), seeded from the unaffected entries,
  exactly the Ramalingam & Reps fixpoint the per-source Dijkstra
  computes;
* **matching support** — :meth:`DenseSLenBackend.sources_within`
  answers "which of these sources reach some target within the bound"
  for a whole candidate set in one block-wise gather, which is what
  drives the BGS simulation fixpoint off the block grid instead of
  materialised per-row dicts (the per-row dict cache behind
  :meth:`row_view` survives as a compatibility shim for callers that
  still want mapping semantics).

Distances are bounded by the horizon exactly like the sparse backend:
entries beyond it are simply absent (``SENTINEL``).  Early horizon
clipping inside the settle iteration is equivalent to the sparse
backend's clip-at-the-end because min-plus relaxation is monotone: any
prefix of a path of length ≤ horizon is itself ≤ horizon.

A CSR-style adjacency cache keyed on graph identity plus
``graph.version`` avoids rebuilding the predecessor arrays when several
kernels run against an unchanged graph (the
:class:`~repro.graph.digraph.DataGraph` version counter is bumped on
every structural mutation, and the cached graph is held and compared
with ``is``, so the cache can never serve stale adjacency).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

import numpy as np

from repro.graph.digraph import DataGraph
from repro.spl.backend import INF, SLenBackend, _NO_EDGES, _NO_NODES

NodeId = Hashable
Pair = tuple[NodeId, NodeId]
Change = tuple[float, float]

#: ``INF`` stand-in.  ``2**29`` keeps every kernel int32-safe: the
#: largest intermediate is ``SENTINEL + SENTINEL + 1 = 2**30 + 1 < 2**31``.
SENTINEL: int = 2**29

#: Default edge length of one block (``block_size`` × ``block_size``
#: ``int32`` entries = 1 MiB at 512).  512 keeps graphs up to the PR-2
#: benchmark sizes in a single block (so small-graph kernel behaviour is
#: unchanged) while giving a 10⁴-node matrix a 20×20 grid whose
#: unreachable regions are never allocated.
DEFAULT_DENSE_BLOCK_SIZE: int = 512

#: Multi-source BFS frontier representations: ``"bitset"`` packs 64
#: sources per ``uint64`` word (the default); ``"boolean"`` is the PR-2
#: one-byte-per-source kernel, kept as the differential reference and
#: the baseline of the benchmark's construction-speedup row.
FRONTIER_MODES: tuple[str, ...] = ("bitset", "boolean")


def _segment_reduce(values, segment_starts, segment_empty, ufunc, fill, axis=1):
    """Per-segment ``ufunc`` reduction of ``values`` along ``axis``.

    ``segment_starts``/``segment_empty`` describe CSR-style segments of
    the gathered axis (axis 1 for the min-plus/boolean kernels, axis 0
    for the bit-packed frontier expansion, which gathers whole
    word-rows per predecessor).  Empty segments yield ``fill``.
    Implemented via ``ufunc.reduceat`` over the non-empty segments only
    — passing empty segments to ``reduceat`` directly would mis-handle
    both the "start == end" case (it returns the element at ``start``
    unreduced) and trailing empties (whose out-of-range start would
    have to be clipped, silently truncating the previous segment).
    """
    segments = len(segment_empty)
    if axis == 1:
        shape = (values.shape[0], segments)
    else:
        shape = (segments, values.shape[1])
    out = np.full(shape, fill, dtype=values.dtype)
    if values.shape[axis] == 0:
        return out
    nonempty = ~segment_empty
    if nonempty.any():
        reduced = ufunc.reduceat(values, segment_starts[nonempty], axis=axis)
        if axis == 1:
            out[:, nonempty] = reduced
        else:
            out[nonempty] = reduced
    return out


class DenseSLenBackend(SLenBackend):
    """Blocked ``int32`` all-pairs grid with vectorized kernels.

    ``block_size`` fixes the block edge; ``frontier_mode`` selects the
    multi-source BFS frontier representation (see
    :data:`FRONTIER_MODES`).  Storage invariants: entries of free or
    padding slots are always :data:`SENTINEL`, a block absent from the
    grid is all-:data:`SENTINEL` by definition, and every occupied
    slot's diagonal entry is ``0`` (so the diagonal blocks of occupied
    block-rows are always allocated).
    """

    name = "dense"

    __slots__ = (
        "horizon",
        "block_size",
        "frontier_mode",
        "_index",
        "_slots",
        "_free",
        "_blocks",
        "_owned",
        "_row_cache",
        "_csr_cache",
    )

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        horizon: float = INF,
        block_size: int = DEFAULT_DENSE_BLOCK_SIZE,
        frontier_mode: str = "bitset",
    ) -> None:
        """Create an identity matrix (diagonal 0) over ``nodes``."""
        if block_size < 1:
            raise ValueError("dense block size must be positive")
        if frontier_mode not in FRONTIER_MODES:
            raise ValueError(
                f"unknown frontier mode {frontier_mode!r}; expected one of {FRONTIER_MODES}"
            )
        self.horizon = horizon
        self.block_size = int(block_size)
        self.frontier_mode = frontier_mode
        order = list(dict.fromkeys(nodes))
        #: node -> slot (logical row/column position in the block grid)
        self._index: dict[NodeId, int] = {node: slot for slot, node in enumerate(order)}
        #: slot -> node (``None`` for free slots)
        self._slots: list[Optional[NodeId]] = list(order)
        self._free: list[int] = []
        #: (block_row, block_col) -> (block_size, block_size) int32 block;
        #: absent blocks are all-SENTINEL by definition (INF-block elision).
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        #: keys of blocks this instance may mutate in place.  Keys in
        #: ``_blocks`` but not here are **shared** with a :meth:`fork`
        #: relative and must be copied before the first write
        #: (copy-on-write; every write path funnels through
        #: :meth:`_ensure_block` / :meth:`_writable_block`).
        self._owned: set[tuple[int, int]] = set()
        size = self.block_size
        n = len(order)
        for block_row in range((n + size - 1) // size):
            low = block_row * size
            span = np.arange(min(n, low + size) - low)
            self._ensure_block(block_row, block_row)[span, span] = 0
        #: per-row materialised finite-entry dicts — the compatibility
        #: shim behind :meth:`row_view` (invalidated on mutation).  The
        #: matching fixpoint no longer needs it (:meth:`sources_within`
        #: reads the block grid directly).
        self._row_cache: dict[NodeId, dict[NodeId, int]] = {}
        #: (graph, version) -> CSR predecessor arrays.  The graph itself
        #: is held (identity-checked with ``is``) so a freed graph's
        #: reused id can never alias the cache.
        self._csr_cache: Optional[tuple[DataGraph, int, tuple]] = None

    # ------------------------------------------------------------------
    # Horizon / geometry helpers
    # ------------------------------------------------------------------
    @property
    def _hcap(self) -> Optional[int]:
        """The horizon as an int cap, or ``None`` for an unbounded matrix."""
        return None if self.horizon == INF else int(self.horizon)

    @property
    def _num_block_rows(self) -> int:
        """Blocks per grid edge (the grid is square)."""
        return (len(self._slots) + self.block_size - 1) // self.block_size

    @property
    def _padded_capacity(self) -> int:
        """Logical slot capacity rounded up to whole blocks.

        Slots past ``len(self._slots)`` are padding: no kernel ever
        writes a finite value there, so padded gathers read
        :data:`SENTINEL` and behave like absent nodes.
        """
        return self._num_block_rows * self.block_size

    def _ensure_block(self, block_row: int, block_col: int) -> np.ndarray:
        """A **writable** block at grid position, allocating it if absent.

        This is the single copy-on-write choke point: a block shared
        with a :meth:`fork` relative is copied (and marked owned) before
        being returned, so in-place writes can never leak into a pinned
        snapshot.  Every mutation path obtains its block through here or
        through :meth:`_writable_block`.
        """
        key = (block_row, block_col)
        block = self._blocks.get(key)
        if block is None:
            block = np.full((self.block_size, self.block_size), SENTINEL, dtype=np.int32)
            self._blocks[key] = block
            self._owned.add(key)
        elif key not in self._owned:
            block = block.copy()
            self._blocks[key] = block
            self._owned.add(key)
        return block

    def _writable_block(self, key: tuple[int, int]) -> Optional[np.ndarray]:
        """The block at ``key`` made safe for in-place writes, or ``None``.

        Unlike :meth:`_ensure_block` an absent block stays absent — used
        by write paths that only mutate existing blocks.
        """
        block = self._blocks.get(key)
        if block is None or key in self._owned:
            return block
        block = block.copy()
        self._blocks[key] = block
        self._owned.add(key)
        return block

    # ------------------------------------------------------------------
    # Memory introspection (the 10⁴-node acceptance surface)
    # ------------------------------------------------------------------
    def occupied_blocks(self) -> int:
        """Number of allocated (non-elided) blocks."""
        return len(self._blocks)

    def total_blocks(self) -> int:
        """Grid size: blocks the dense-full layout would allocate."""
        return self._num_block_rows**2

    def owned_blocks(self) -> int:
        """Blocks this instance may write in place (exclusively held)."""
        return len(self._owned)

    def shared_blocks(self) -> int:
        """Blocks shared with a :meth:`fork` relative (copy-on-write)."""
        return len(self._blocks) - len(self._owned)

    def block_arrays(self) -> Iterator[np.ndarray]:
        """Iterate over the allocated block arrays (introspection only).

        Callers deduplicate by ``id()`` to account bytes shared across
        forks exactly once; mutating a yielded array is undefined.
        """
        return iter(self._blocks.values())

    def allocated_bytes(self) -> int:
        """Bytes held by allocated blocks (the matrix's real footprint).

        Blocks shared with a fork relative are counted here in full —
        use :meth:`block_arrays` with ``id()`` deduplication for
        unique-byte accounting across a snapshot family.
        """
        return sum(block.nbytes for block in self._blocks.values())

    def dense_full_bytes(self) -> int:
        """What the pre-blocked O(|V|²) ``int32`` layout would cost."""
        n = len(self._index)
        return 4 * n * n

    # ------------------------------------------------------------------
    # Block-wise gather / scatter primitives
    # ------------------------------------------------------------------
    def _row_array(self, slot: int) -> np.ndarray:
        """One logical row as a fresh int32 array over the padded capacity."""
        size = self.block_size
        out = np.full(self._padded_capacity, SENTINEL, dtype=np.int32)
        block_row, offset = divmod(slot, size)
        blocks = self._blocks
        for block_col in range(self._num_block_rows):
            block = blocks.get((block_row, block_col))
            if block is not None:
                out[block_col * size : (block_col + 1) * size] = block[offset]
        return out

    def _column_array(self, slot: int) -> np.ndarray:
        """One logical column as a fresh int32 array over the padded capacity."""
        size = self.block_size
        out = np.full(self._padded_capacity, SENTINEL, dtype=np.int32)
        block_col, offset = divmod(slot, size)
        blocks = self._blocks
        for block_row in range(self._num_block_rows):
            block = blocks.get((block_row, block_col))
            if block is not None:
                out[block_row * size : (block_row + 1) * size] = block[:, offset]
        return out

    def _gather_rows(self, rows: np.ndarray) -> np.ndarray:
        """Stack the logical rows of slot array ``rows`` into (k, capacity)."""
        size = self.block_size
        out = np.full((len(rows), self._padded_capacity), SENTINEL, dtype=np.int32)
        if not len(rows):
            return out
        rows = np.asarray(rows, dtype=np.int64)
        positions_by_block_row: dict[int, list[int]] = {}
        for position, slot in enumerate(rows.tolist()):
            positions_by_block_row.setdefault(slot // size, []).append(position)
        blocks = self._blocks
        for block_row, positions in positions_by_block_row.items():
            pos = np.asarray(positions, dtype=np.int64)
            offsets = rows[pos] % size
            for block_col in range(self._num_block_rows):
                block = blocks.get((block_row, block_col))
                if block is not None:
                    out[pos, block_col * size : (block_col + 1) * size] = block[offsets]
        return out

    def _scatter_row(self, slot: int, values: np.ndarray) -> None:
        """Write a full padded row back, allocating blocks only for finite chunks."""
        size = self.block_size
        block_row, offset = divmod(slot, size)
        for block_col in range(self._num_block_rows):
            chunk = values[block_col * size : (block_col + 1) * size]
            key = (block_row, block_col)
            block = self._blocks.get(key)
            if block is None:
                if (chunk < SENTINEL).any():
                    self._ensure_block(block_row, block_col)[offset] = chunk
            elif key in self._owned:
                block[offset] = chunk
            elif (block[offset] != chunk).any():
                # Shared block: copy only when the row actually changes.
                self._ensure_block(block_row, block_col)[offset] = chunk

    def _gather_pairs_matrix(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """The submatrix ``D[xs × ys]`` as a fresh (|xs|, |ys|) int32 array."""
        size = self.block_size
        out = np.full((len(xs), len(ys)), SENTINEL, dtype=np.int32)
        if not len(xs) or not len(ys):
            return out
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        row_groups: dict[int, list[int]] = {}
        for position, slot in enumerate(xs.tolist()):
            row_groups.setdefault(slot // size, []).append(position)
        col_groups: dict[int, list[int]] = {}
        for position, slot in enumerate(ys.tolist()):
            col_groups.setdefault(slot // size, []).append(position)
        for block_row, row_positions in row_groups.items():
            row_pos = np.asarray(row_positions, dtype=np.int64)
            row_off = xs[row_pos] % size
            for block_col, col_positions in col_groups.items():
                block = self._blocks.get((block_row, block_col))
                if block is None:
                    continue
                col_pos = np.asarray(col_positions, dtype=np.int64)
                col_off = ys[col_pos] % size
                out[np.ix_(row_pos, col_pos)] = block[np.ix_(row_off, col_off)]
        return out

    # ------------------------------------------------------------------
    # Storage primitives
    # ------------------------------------------------------------------
    def node_set(self) -> set[NodeId]:
        """A fresh set holding the node universe."""
        return set(self._index)

    def __contains__(self, node: NodeId) -> bool:
        """Whether ``node`` is in the universe."""
        return node in self._index

    def number_of_nodes(self) -> int:
        """``|VD|`` as seen by the backend."""
        return len(self._index)

    def get(self, source: NodeId, target: NodeId) -> float | int:
        """``SLen(source, target)``; :data:`INF` when absent."""
        size = self.block_size
        i = self._index[source]
        j = self._index[target]
        block = self._blocks.get((i // size, j // size))
        if block is None:
            return INF
        value = int(block[i % size, j % size])
        return INF if value >= SENTINEL else value

    def row(self, source: NodeId) -> dict[NodeId, int]:
        """A fresh dict of the finite entries of one row."""
        values = self._row_array(self._index[source])
        slots = self._slots
        return {
            slots[position]: int(values[position])
            for position in np.nonzero(values < SENTINEL)[0]
        }

    def row_view(self, source: NodeId) -> Mapping[NodeId, int]:
        """A cached finite-entry dict of one row (compatibility shim).

        Kept for callers that want mapping semantics over a row; the
        matching fixpoint itself goes through :meth:`sources_within` and
        never materialises these dicts.
        """
        cached = self._row_cache.get(source)
        if cached is None:
            if source not in self._index:
                raise KeyError(source)
            cached = self.row(source)
            self._row_cache[source] = cached
        return cached

    def column(self, target: NodeId) -> dict[NodeId, int]:
        """``{source: distance}`` over all sources reaching ``target``."""
        values = self._column_array(self._index[target])
        slots = self._slots
        return {
            slots[position]: int(values[position])
            for position in np.nonzero(values < SENTINEL)[0]
        }

    def set_value(self, source: NodeId, target: NodeId, value: float | int) -> None:
        """Set one entry; :data:`INF` (or beyond the horizon) removes it."""
        size = self.block_size
        i = self._index[source]
        j = self._index[target]
        key = (i // size, j // size)
        if value == INF or value > self.horizon:
            block = self._blocks.get(key)
            if block is not None and block[i % size, j % size] < SENTINEL:
                self._writable_block(key)[i % size, j % size] = SENTINEL
        else:
            value = int(value)
            block = self._blocks.get(key)
            if block is None or block[i % size, j % size] != value:
                self._ensure_block(*key)[i % size, j % size] = value
        self._row_cache.pop(source, None)

    def set_row(self, source: NodeId, row: Mapping[NodeId, int]) -> None:
        """Replace one row (entries beyond the horizon are dropped)."""
        i = self._index[source]
        values = np.full(self._padded_capacity, SENTINEL, dtype=np.int32)
        horizon = self.horizon
        for target, dist in row.items():
            if dist <= horizon:
                values[self._index[target]] = int(dist)
        values[i] = 0
        self._scatter_row(i, values)
        self._row_cache.pop(source, None)

    def replace_row_raw(self, source: NodeId, row: dict[NodeId, int]) -> None:
        """Replace one row verbatim, without horizon filtering."""
        i = self._index[source]
        values = np.full(self._padded_capacity, SENTINEL, dtype=np.int32)
        for target, dist in row.items():
            values[self._index[target]] = int(dist)
        self._scatter_row(i, values)
        self._row_cache.pop(source, None)

    def add_node(self, node: NodeId) -> None:
        """Add an isolated node, reusing a free slot when one exists.

        Free slots were scrubbed to :data:`SENTINEL` on removal and
        appended slots live in never-written block regions, so only the
        diagonal needs establishing.
        """
        if self._free:
            slot = self._free.pop()
            self._slots[slot] = node
        else:
            slot = len(self._slots)
            self._slots.append(node)
        self._index[node] = slot
        block_row, offset = divmod(slot, self.block_size)
        self._ensure_block(block_row, block_row)[offset, offset] = 0

    def remove_node(self, node: NodeId) -> None:
        """Drop a node, scrubbing its row and column; prune emptied blocks."""
        slot = self._index.pop(node)
        self._slots[slot] = None
        self._free.append(slot)
        block_index, offset = divmod(slot, self.block_size)
        grid = self._num_block_rows
        candidates = {(block_index, other) for other in range(grid)}
        candidates.update((other, block_index) for other in range(grid))
        emptied = []
        for key in candidates:
            block = self._blocks.get(key)
            if block is None:
                continue
            # Scrub (and pay the whole-block emptiness scan) only when
            # the node's row/column segment actually held finite entries
            # — an O(block_size) probe per block otherwise.  The probe
            # reads the (possibly shared) block; the write goes through
            # the copy-on-write path.
            scrub_row = key[0] == block_index and (block[offset, :] < SENTINEL).any()
            scrub_col = key[1] == block_index and (block[:, offset] < SENTINEL).any()
            if not (scrub_row or scrub_col):
                continue
            block = self._writable_block(key)
            if scrub_row:
                block[offset, :] = SENTINEL
            if scrub_col:
                block[:, offset] = SENTINEL
            if not (block < SENTINEL).any():
                emptied.append(key)
        for key in emptied:
            del self._blocks[key]
            self._owned.discard(key)
        # Every remaining row lost a column entry; drop all cached rows.
        self._row_cache.clear()

    def copy(self) -> "DenseSLenBackend":
        """An independent deep copy (same block size and horizon)."""
        clone = DenseSLenBackend(
            horizon=self.horizon,
            block_size=self.block_size,
            frontier_mode=self.frontier_mode,
        )
        clone._index = dict(self._index)
        clone._slots = list(self._slots)
        clone._free = list(self._free)
        clone._blocks = {key: block.copy() for key, block in self._blocks.items()}
        clone._owned = set(clone._blocks)
        return clone

    def fork(self) -> "DenseSLenBackend":
        """A copy-on-write clone sharing every unmodified block.

        Only the node→slot map and the block-*pointer* grid are copied
        (O(occupied blocks) pointers, no block payload).  Afterwards
        **both** relatives hold every block as shared: the first
        in-place write on either side copies just the touched block, so
        a published snapshot stays frozen while the writer keeps
        settling — the MVCC primitive behind
        :mod:`repro.versioning`.  Caches are not shared; the fork
        starts with cold row/CSR caches.
        """
        clone = DenseSLenBackend(
            horizon=self.horizon,
            block_size=self.block_size,
            frontier_mode=self.frontier_mode,
        )
        clone._index = dict(self._index)
        clone._slots = list(self._slots)
        clone._free = list(self._free)
        clone._blocks = dict(self._blocks)
        clone._owned = set()
        # The parent loses ownership too: its next write to any shared
        # block must copy, keeping the fork's view immutable.
        self._owned.clear()
        return clone

    def finite_count(self) -> int:
        """Number of finite (stored) entries."""
        return int(sum((block < SENTINEL).sum() for block in self._blocks.values()))

    def finite_entries(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Iterate over ``(source, target, distance)`` finite entries."""
        slots = self._slots
        for source, i in self._index.items():
            values = self._row_array(i)
            for position in np.nonzero(values < SENTINEL)[0]:
                yield (source, slots[position], int(values[position]))

    # ------------------------------------------------------------------
    # CSR adjacency cache
    # ------------------------------------------------------------------
    def _pred_csr(self, graph: DataGraph):
        """CSR predecessor arrays of ``graph`` over the current slot map.

        Returns ``(indptr, indices, empty)`` where ``indices[indptr[y] :
        indptr[y + 1]]`` are the slots of the in-neighbours of the node
        at slot ``y`` (graph nodes without a slot are dropped — they have
        no representable distance, exactly like their absence from a
        sparse row) and ``empty`` marks slots with no predecessor.  The
        result is cached against the graph's mutation version (and the
        current padded capacity, which can grow when nodes are added).
        """
        capacity = self._padded_capacity
        cache = self._csr_cache
        if (
            cache is not None
            and cache[0] is graph
            and cache[1] == (graph.version, capacity)
        ):
            return cache[2]
        index = self._index
        counts = np.zeros(capacity + 1, dtype=np.int64)
        pred_lists: list[list[int]] = [()] * capacity  # type: ignore[list-item]
        for node, slot in index.items():
            if not graph.has_node(node):
                continue
            preds = [
                index[w] for w in graph.predecessors_view(node) if w in index
            ]
            pred_lists[slot] = preds
            counts[slot + 1] = len(preds)
        indptr = np.cumsum(counts)
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        for slot in range(capacity):
            preds = pred_lists[slot]
            if preds:
                indices[indptr[slot] : indptr[slot + 1]] = preds
        empty = indptr[:-1] == indptr[1:]
        csr = (indptr, indices, empty)
        self._csr_cache = (graph, (graph.version, capacity), csr)
        return csr

    # ------------------------------------------------------------------
    # Multi-source BFS kernels
    # ------------------------------------------------------------------
    def _bfs_rows(
        self, graph: DataGraph, source_slots: np.ndarray, hcap: Optional[int]
    ) -> np.ndarray:
        """BFS level rows (len(source_slots), padded capacity) from each source.

        Dispatches on :attr:`frontier_mode`; both representations
        compute identical levels (a differential test pins this).
        """
        if self.frontier_mode == "boolean":
            return self._bfs_rows_boolean(graph, source_slots, hcap)
        return self._bfs_rows_bitset(graph, source_slots, hcap)

    def _bfs_rows_bitset(
        self, graph: DataGraph, source_slots: np.ndarray, hcap: Optional[int]
    ) -> np.ndarray:
        """Bit-packed multi-source BFS: 64 sources per ``uint64`` word.

        The frontier and visited sets are (capacity, words) ``uint64``
        arrays whose bit ``b`` of word ``w`` belongs to source
        ``64 w + b``.  One expansion level is a CSR predecessor gather
        plus ``bitwise_or.reduceat`` over whole words — no per-source
        popcounts, and 8× less memory traffic than the boolean kernel.
        Levels are committed into the int32 result via one unpack per
        level.
        """
        k = len(source_slots)
        capacity = self._padded_capacity
        levels = np.full((k, capacity), SENTINEL, dtype=np.int32)
        if k == 0:
            return levels
        source_slots = np.asarray(source_slots, dtype=np.int64)
        rows = np.arange(k)
        levels[rows, source_slots] = 0
        indptr, indices, empty = self._pred_csr(graph)
        if indices.size == 0:
            return levels
        # The packed arrays are (capacity, words) uint64 but every bit
        # operation round-trips through the same uint8 view (packbits /
        # unpackbits byte layout), so word endianness never matters.
        words = (k + 63) // 64
        seed_bytes = np.zeros((capacity, words * 8), dtype=np.uint8)
        seed_bytes[source_slots, rows // 8] = np.left_shift(1, rows % 8).astype(np.uint8)
        frontier = seed_bytes.view(np.uint64)
        visited = frontier.copy()
        level = 0
        while True:
            if hcap is not None and level >= hcap:
                break
            level += 1
            reached = _segment_reduce(
                frontier[indices], indptr[:-1], empty, np.bitwise_or, np.uint64(0), axis=0
            )
            newly = reached & ~visited
            # Commit levels sparsely: only target slots with a fresh bit
            # are unpacked, so the per-level cost scales with the newly
            # reached region instead of capacity × sources.
            active = np.nonzero(newly.any(axis=1))[0]
            if active.size == 0:
                break
            visited |= newly
            mask = np.unpackbits(
                newly[active].view(np.uint8), axis=1, bitorder="little", count=k
            ).view(np.bool_)
            hit_rows, hit_sources = np.nonzero(mask)
            levels[hit_sources, active[hit_rows]] = level
            frontier = newly
        return levels

    def _bfs_rows_boolean(
        self, graph: DataGraph, source_slots: np.ndarray, hcap: Optional[int]
    ) -> np.ndarray:
        """Boolean-frontier multi-source BFS (the PR-2 reference kernel).

        One byte per (source, node) frontier cell, expanded through a
        CSR predecessor gather + ``logical_or.reduceat``.  Retained as
        the differential reference for the bit-packed kernel and as the
        baseline of the benchmark's construction-speedup row.
        """
        k = len(source_slots)
        capacity = self._padded_capacity
        levels = np.full((k, capacity), SENTINEL, dtype=np.int32)
        if k == 0:
            return levels
        source_slots = np.asarray(source_slots, dtype=np.int64)
        rows = np.arange(k)
        levels[rows, source_slots] = 0
        indptr, indices, empty = self._pred_csr(graph)
        if indices.size == 0:
            return levels
        frontier = np.zeros((k, capacity), dtype=bool)
        frontier[rows, source_slots] = True
        level = 0
        while frontier.any():
            if hcap is not None and level >= hcap:
                break
            level += 1
            reached = _segment_reduce(
                frontier[:, indices], indptr[:-1], empty, np.logical_or, False
            )
            newly = reached & (levels >= SENTINEL)
            if not newly.any():
                break
            levels[newly] = level
            frontier = newly
        return levels

    # ------------------------------------------------------------------
    # Vectorized maintenance kernels
    # ------------------------------------------------------------------
    def build(self, graph: DataGraph) -> None:
        """Construct all rows by striped bit-packed multi-source BFS.

        Sources are processed one block-row stripe at a time, so the
        transient level matrix is (block_size × capacity) — blocks whose
        stripe region stays all-``INF`` are never allocated, which is
        what keeps construction memory proportional to the occupied
        blocks instead of |V|².
        """
        if not self._index:
            return
        size = self.block_size
        hcap = self._hcap
        all_slots = np.array(sorted(self._index.values()), dtype=np.int64)
        for block_row in range(self._num_block_rows):
            low = block_row * size
            stripe = all_slots[(all_slots >= low) & (all_slots < low + size)]
            if stripe.size == 0:
                continue
            rows = self._bfs_rows(graph, stripe, hcap)
            offsets = stripe % size
            for block_col in range(self._num_block_rows):
                chunk = rows[:, block_col * size : (block_col + 1) * size]
                if (block_row, block_col) not in self._blocks and not (
                    chunk < SENTINEL
                ).any():
                    continue
                self._ensure_block(block_row, block_col)[offsets] = chunk
        self._row_cache.clear()

    def recompute_rows(self, graph: DataGraph, sources: Iterable[NodeId]) -> set[NodeId]:
        """Multi-source BFS restricted to ``sources``; returns changed rows.

        Mirrors the sparse quirk of storing plain (horizon-unfiltered)
        BFS rows: the frontier expansion here is unbounded too.
        """
        source_list = list(sources)
        if not source_list:
            return set()
        slot_of = self._index
        xi = np.array([slot_of[source] for source in source_list], dtype=np.int64)
        old_rows = self._gather_rows(xi)
        new_rows = self._bfs_rows(graph, xi, None)
        changed_mask = (new_rows != old_rows).any(axis=1)
        changed: set[NodeId] = set()
        for position in np.nonzero(changed_mask)[0]:
            self._scatter_row(int(xi[position]), new_rows[position])
            source = source_list[int(position)]
            changed.add(source)
            self._row_cache.pop(source, None)
        return changed

    def _block_extent(self, block_index: int) -> int:
        """Used rows/columns of one block (the last block may be partial).

        Kernels slice blocks to this extent so a small graph in a large
        block pays for its node count, not for the block padding.
        """
        return min(self.block_size, len(self._slots) - block_index * self.block_size)

    def _finite_block_stripes(self, values: np.ndarray) -> list[int]:
        """Block indices whose stripe of ``values`` holds a finite entry."""
        size = self.block_size
        return [
            block
            for block in range(self._num_block_rows)
            if (values[block * size : (block + 1) * size] < SENTINEL).any()
        ]

    def relax_edge(self, source: NodeId, target: NodeId) -> dict[Pair, Change]:
        """Rank-1 relaxation for an inserted edge, applied block by block.

        The candidate ``d(x, u) + 1 + d(v, y)`` is evaluated one block
        at a time against the block's contiguous storage; block stripes
        where the column of ``source`` (or the row of ``target``) is
        all-``INF`` are skipped outright (a :data:`SENTINEL` leg makes
        the candidate exceed every stored value), and absent blocks are
        allocated only when an in-horizon candidate actually lands in
        them.
        """
        iu = self._index[source]
        iv = self._index[target]
        column_u = self._column_array(iu)
        row_v = self._row_array(iv)
        size = self.block_size
        hcap = self._hcap
        limit = SENTINEL - 1 if hcap is None else hcap
        col_blocks = self._finite_block_stripes(column_u)
        row_blocks = self._finite_block_stripes(row_v)
        if not col_blocks or not row_blocks:
            return {}
        changed_xs: list[np.ndarray] = []
        changed_ys: list[np.ndarray] = []
        changed_old: list[np.ndarray] = []
        changed_new: list[np.ndarray] = []
        row_plus_one = {
            block_col: row_v[
                block_col * size : block_col * size + self._block_extent(block_col)
            ]
            + 1
            for block_col in row_blocks
        }
        for block_row in col_blocks:
            rows_used = self._block_extent(block_row)
            col_stripe = column_u[block_row * size : block_row * size + rows_used]
            for block_col in row_blocks:
                candidate = col_stripe[:, None] + row_plus_one[block_col][None, :]
                block = self._blocks.get((block_row, block_col))
                if block is None:
                    mask = candidate <= limit
                    a, b = np.nonzero(mask)
                    if a.size == 0:
                        continue
                    block = self._ensure_block(block_row, block_col)
                else:
                    cols_used = candidate.shape[1]
                    mask = candidate < block[:rows_used, :cols_used]
                    if hcap is not None:
                        mask &= candidate <= hcap
                    a, b = np.nonzero(mask)
                    if a.size == 0:
                        continue
                    block = self._ensure_block(block_row, block_col)
                changed_old.append(block[a, b])
                new_values = candidate[a, b].astype(np.int32)
                block[a, b] = new_values
                changed_xs.append(a + block_row * size)
                changed_ys.append(b + block_col * size)
                changed_new.append(new_values)
        if not changed_xs:
            return {}
        all_xs = np.concatenate(changed_xs)
        all_ys = np.concatenate(changed_ys)
        # Assemble the changed-pairs delta with C-level zips: an early
        # insertion on a well-connected graph can improve tens of
        # thousands of pairs, so per-pair Python work would dominate the
        # whole kernel.  Old ``INF`` entries surface as float('inf') via
        # a float cast (== is unaffected: 3.0 == 3).  The slot array is
        # filled by assignment — np.array() would try to unpack sequence
        # node ids (e.g. tuples) into extra dimensions.
        slot_array = np.empty(len(self._slots), dtype=object)
        slot_array[:] = self._slots
        keys = zip(slot_array[all_xs].tolist(), slot_array[all_ys].tolist())
        olds = np.concatenate(changed_old).astype(float)
        olds[olds >= SENTINEL] = INF
        news = np.concatenate(changed_new)
        changed = dict(zip(keys, zip(olds.tolist(), news.tolist())))
        cache = self._row_cache
        if cache:
            for x in dict.fromkeys(all_xs.tolist()):
                cache.pop(self._slots[x], None)
        return changed

    def affected_by_edge_deletion(
        self, source: NodeId, target: NodeId
    ) -> dict[NodeId, set[NodeId]]:
        """Vectorized affectedness test ``D == D[:, u] + 1 + D[v, :]``.

        Evaluated block by block against contiguous storage: absent
        blocks hold no finite pair and cannot be affected, stripes with
        an all-``INF`` leg cannot satisfy the equality (a
        :data:`SENTINEL` leg pushes the candidate past any stored
        value), and the diagonal (``D == 0 < candidate``) is excluded
        automatically.
        """
        iu = self._index[source]
        iv = self._index[target]
        column_u = self._column_array(iu)
        row_v = self._row_array(iv)
        size = self.block_size
        col_blocks = self._finite_block_stripes(column_u)
        row_blocks = self._finite_block_stripes(row_v)
        slots = self._slots
        affected: dict[NodeId, set[NodeId]] = {}
        for block_row in col_blocks:
            rows_used = self._block_extent(block_row)
            col_stripe = column_u[block_row * size : block_row * size + rows_used]
            for block_col in row_blocks:
                block = self._blocks.get((block_row, block_col))
                if block is None:
                    continue
                cols_used = self._block_extent(block_col)
                row_stripe = row_v[block_col * size : block_col * size + cols_used]
                candidate = col_stripe[:, None] + row_stripe[None, :]
                candidate += 1
                a, b = np.nonzero(block[:rows_used, :cols_used] == candidate)
                for x, y in zip(
                    (a + block_row * size).tolist(), (b + block_col * size).tolist()
                ):
                    affected.setdefault(slots[x], set()).add(slots[y])
        return affected

    def affected_by_node_deletion(
        self, old_row: Mapping[NodeId, int], old_column: Mapping[NodeId, int]
    ) -> dict[NodeId, set[NodeId]]:
        """Pairs whose every shortest path ran through a deleted node."""
        index = self._index
        xs_nodes = [x for x in old_column if x in index]
        ys_nodes = [y for y in old_row if y in index]
        if not xs_nodes or not ys_nodes:
            return {}
        xi = np.array([index[x] for x in xs_nodes], dtype=np.int64)
        yi = np.array([index[y] for y in ys_nodes], dtype=np.int64)
        through = (
            np.array([old_column[x] for x in xs_nodes], dtype=np.int32)[:, None]
            + np.array([old_row[y] for y in ys_nodes], dtype=np.int32)[None, :]
        )
        sub = self._gather_pairs_matrix(xi, yi)
        mask = (sub == through) & (xi[:, None] != yi[None, :])
        affected: dict[NodeId, set[NodeId]] = {}
        for a, b in zip(*(axis.tolist() for axis in np.nonzero(mask))):
            affected.setdefault(xs_nodes[a], set()).add(ys_nodes[b])
        return affected

    def settle_sources(
        self,
        graph_after: DataGraph,
        affected_by_source: Mapping[NodeId, set[NodeId]],
        skip_edges: frozenset[tuple[NodeId, NodeId]] | set = _NO_EDGES,
        skip_nodes: frozenset[NodeId] | set = _NO_NODES,
    ) -> dict[NodeId, dict[NodeId, int]]:
        """Batched affected-region recompute over all affected source rows.

        Affected entries start at :data:`SENTINEL` and are relaxed to a
        fixpoint through CSR predecessor gathers; unaffected entries are
        held fixed (they are exact by the Ramalingam-Reps affected-area
        argument), which makes the fixpoint equal to the per-source
        Dijkstra of the generic kernel.  The working rows are gathered
        from the block grid once (k × capacity transient) and the
        settled values are returned, not written — the caller applies
        them, exactly like the generic kernel.  Deletion settles whose
        seeding or relaxation crosses an elided (absent) block simply
        read :data:`SENTINEL` there, so INF-block elision is invisible
        to the fixpoint.
        """
        if not affected_by_source:
            return {}
        index = self._index
        slots = self._slots
        sources = list(affected_by_source)
        xi = np.array([index[source] for source in sources], dtype=np.int64)
        k = len(sources)
        capacity = self._padded_capacity
        working = self._gather_rows(xi)
        affected_mask = np.zeros((k, capacity), dtype=bool)
        union_slots: set[int] = set()
        for position, source in enumerate(sources):
            for y in affected_by_source[source]:
                slot = index[y]
                affected_mask[position, slot] = True
                union_slots.add(slot)
        working[affected_mask] = SENTINEL

        # Only the union targets can change, so only their predecessor
        # lists are gathered (skips applied inline) — far cheaper than a
        # whole-graph CSR when the affected region is small.
        targets = np.fromiter(sorted(union_slots), dtype=np.int64, count=len(union_slots))
        pred_lists = []
        for slot in targets.tolist():
            node = slots[slot]
            pred_lists.append(
                [
                    index[w]
                    for w in graph_after.predecessors_view(node)
                    if w in index and w not in skip_nodes and (w, node) not in skip_edges
                ]
            )
        segment_lengths = np.array([len(preds) for preds in pred_lists], dtype=np.int64)
        gather_cols = (
            np.concatenate([np.asarray(preds, dtype=np.int64) for preds in pred_lists if preds])
            if int(segment_lengths.sum())
            else np.empty(0, dtype=np.int64)
        )
        segment_starts = np.concatenate(([0], np.cumsum(segment_lengths)[:-1]))
        segment_empty = segment_lengths == 0
        hcap = self._hcap
        affected_cols = affected_mask[:, targets]
        if gather_cols.size:
            while True:
                candidate = _segment_reduce(
                    working[:, gather_cols], segment_starts, segment_empty, np.minimum, SENTINEL
                )
                candidate = candidate + 1
                if hcap is not None:
                    candidate[candidate > hcap] = SENTINEL
                else:
                    candidate[candidate > SENTINEL] = SENTINEL
                current = working[:, targets]
                improved = affected_cols & (candidate < current)
                if not improved.any():
                    break
                working[:, targets] = np.where(improved, candidate, current)

        results: dict[NodeId, dict[NodeId, int]] = {}
        for position, source in enumerate(sources):
            settled: dict[NodeId, int] = {}
            row = working[position]
            for slot in np.nonzero(affected_mask[position])[0]:
                value = int(row[slot])
                if value < SENTINEL:
                    settled[slots[slot]] = value
            results[source] = settled
        return results

    # ------------------------------------------------------------------
    # Matching-fixpoint kernel
    # ------------------------------------------------------------------
    def sources_within(
        self, sources: Iterable[NodeId], targets: Iterable[NodeId], bound: float | int
    ) -> set[NodeId]:
        """Subset of ``sources`` reaching some node of ``targets`` within ``bound``.

        One block-wise submatrix gather + a row-wise ``any`` instead of
        one materialised row dict per source — this is what drives the
        BGS simulation fixpoint off the block grid.  Large candidate
        sets are processed in row chunks so the transient submatrix
        stays bounded.  Sources or targets outside the universe are
        ignored (they have no representable distance).
        """
        source_list = [source for source in sources if source in self._index]
        target_slots = [self._index[target] for target in targets if target in self._index]
        if not source_list or not target_slots:
            return set()
        if bound == INF:
            limit = SENTINEL - 1
        else:
            limit = min(int(bound), SENTINEL - 1)
        if limit < 0:
            return set()
        xs = np.array([self._index[source] for source in source_list], dtype=np.int64)
        ys = np.array(target_slots, dtype=np.int64)
        satisfied: set[NodeId] = set()
        chunk = max(1, (1 << 22) // max(1, ys.size))
        for start in range(0, xs.size, chunk):
            part = xs[start : start + chunk]
            sub = self._gather_pairs_matrix(part, ys)
            hit = (sub <= limit).any(axis=1)
            for position in np.nonzero(hit)[0]:
                satisfied.add(source_list[start + int(position)])
        return satisfied
