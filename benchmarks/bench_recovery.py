"""Durability cost and crash-recovery speed of the delta journal.

Two phases, both deterministic:

* **Ingest overhead** — one writer streams an identical edge-toggle
  workload into two services, one without a journal and one with the
  write-ahead journal (fsync per accepted payload).  The gate is the
  durability budget from the issue: journaled accepted-delta throughput
  must stay at or above 0.7x the no-journal baseline.
* **Recovery** — a quiet-configured service journals a 1k-delta tail
  with no settles (so nothing is checkpointed), then "crashes" via
  ``abort()``.  The benchmark times a cold boot over that journal:
  ``register_graph`` (tail replay scheduling) plus ``drain`` (replay and
  settle).  Correctness is checked edge-by-edge: the recovered settled
  graph must agree with the writer's toggle ledger on every owned pair.

The writer owns disjoint node pairs and tracks a ledger of which owned
edges currently exist, so every submitted delta is valid regardless of
batching — any rejection is a harness or service bug and fails the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--quick]
        [--payloads N] [--tail N]

``--quick`` shortens the run for CI, writes ``BENCH_recovery_quick.json``
(never the tracked artifact) and demotes the throughput gate to a
warning; the correctness gates (no rejections, no recovery drift, no
service errors) stay fatal.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceConfig, StreamingUpdateService  # noqa: E402
from repro.workloads import (  # noqa: E402
    PatternSpec,
    SocialGraphSpec,
    generate_pattern,
    generate_social_graph,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"

#: Same scale as bench_service.py: settles take milliseconds, so the
#: journal's fsync cost is measured against realistic competing work.
NUM_NODES = 320
NUM_EDGES = 1500
PATTERN_NODES = 6
PATTERN_EDGES = 6
SEED = 2020

#: Node pairs the writer owns (its toggle working set).
NUM_PAIRS = 240
#: Edge toggles per submitted payload — one journal fsync covers the
#: whole payload, which is the batching the service encourages.
DELTAS_PER_PAYLOAD = 8

#: The durability budget: journaled ingest must retain at least this
#: fraction of the no-journal baseline throughput.
THROUGHPUT_RATIO_FLOOR = 0.7


def build_graph_and_pattern():
    """The benchmark's data graph and pattern (deterministic)."""
    data = generate_social_graph(
        SocialGraphSpec(name="bench-recovery", num_nodes=NUM_NODES, num_edges=NUM_EDGES, seed=SEED)
    )
    pattern = generate_pattern(
        PatternSpec(
            num_nodes=PATTERN_NODES,
            num_edges=PATTERN_EDGES,
            labels=sorted(data.labels()),
            seed=SEED,
        )
    )
    return data, pattern


def owned_pairs(data, rng: random.Random) -> list[tuple]:
    """Distinct ordered node pairs for the writer's toggle ledger."""
    nodes = sorted(data.nodes())
    seen: set[tuple] = set()
    pairs: list[tuple] = []
    while len(pairs) < NUM_PAIRS:
        u, v = rng.sample(nodes, 2)
        if (u, v) not in seen:
            seen.add((u, v))
            pairs.append((u, v))
    return pairs


def toggle_payloads(data, payloads: int):
    """The deterministic workload: ``payloads`` toggle payloads plus the
    final ledger (pair -> does the edge exist after the whole run)."""
    pairs = owned_pairs(data, random.Random(SEED))
    ledger = {pair: data.has_edge(*pair) for pair in pairs}
    batches = []
    cursor = 0
    for _ in range(payloads):
        inserts, deletes = [], []
        for _ in range(DELTAS_PER_PAYLOAD):
            pair = pairs[cursor % len(pairs)]
            cursor += 1
            spec = {"type": "edge", "source": pair[0], "target": pair[1]}
            (deletes if ledger[pair] else inserts).append(spec)
            ledger[pair] = not ledger[pair]
        batches.append({"inserts": inserts, "deletes": deletes})
    return batches, ledger


async def run_ingest(journal_dir, payloads: int) -> dict:
    """Submit the toggle workload; measure the submit loop's throughput.

    ``journal_dir=None`` is the no-journal baseline.  The measured window
    is first submit to last receipt — with a journal, every receipt in
    that window sits behind an fsync, which is exactly the overhead under
    test.  The settle/checkpoint work that serializes with ingest on the
    per-graph queue lands in the same window, as it does in production.
    """
    data, pattern = build_graph_and_pattern()
    batches, _ = toggle_payloads(data, payloads)
    config = ServiceConfig(
        deadline_seconds=0.02,
        max_buffer=512,
        coalesce_min_batch=32,
        journal_dir=journal_dir,
    )
    service = StreamingUpdateService(config)
    await service.register_graph("bench", pattern, data)

    accepted = rejected = 0
    started = time.perf_counter()
    for batch in batches:
        receipt = await service.submit("bench", batch)
        accepted += receipt.accepted
        rejected += receipt.rejected
    submit_seconds = time.perf_counter() - started
    drain_started = time.perf_counter()
    await service.drain()
    drain_seconds = time.perf_counter() - drain_started

    stats = service.stats("bench")
    errors = [repr(error) for _, error in service.errors]
    await service.close()
    report = {
        "journaled": journal_dir is not None,
        "payloads": payloads,
        "accepted": accepted,
        "rejected": rejected,
        "settled": stats["settled"],
        "submit_seconds": submit_seconds,
        "drain_seconds": drain_seconds,
        "accepted_per_second": accepted / submit_seconds if submit_seconds else 0.0,
        "errors": errors,
    }
    if journal_dir is not None:
        journal = stats["journal"]
        report["journal"] = {
            "appends": journal["appends"],
            "checkpoints": journal["checkpoints"],
            "compactions": journal["compactions"],
        }
    return report


async def run_recovery(journal_dir, tail_deltas: int) -> dict:
    """Journal an uncheckpointed ``tail_deltas`` tail, crash, time the boot."""
    payloads = tail_deltas // DELTAS_PER_PAYLOAD
    data, pattern = build_graph_and_pattern()
    batches, ledger = toggle_payloads(data, payloads)

    # Quiet config: nothing cuts, so nothing settles or checkpoints and
    # the whole journal is a recovery tail.
    quiet = ServiceConfig(
        deadline_seconds=30.0,
        max_buffer=tail_deltas * 2,
        coalesce_min_batch=tail_deltas * 2,
        journal_dir=journal_dir,
    )
    victim = StreamingUpdateService(quiet)
    await victim.register_graph("bench", pattern, data)
    populate_started = time.perf_counter()
    accepted = rejected = 0
    for batch in batches:
        receipt = await victim.submit("bench", batch)
        accepted += receipt.accepted
        rejected += receipt.rejected
    populate_seconds = time.perf_counter() - populate_started
    await victim.abort()  # simulated crash: buffered deltas survive only in the journal

    config = ServiceConfig(
        deadline_seconds=0.02,
        max_buffer=512,
        coalesce_min_batch=32,
        journal_dir=journal_dir,
    )
    service = StreamingUpdateService(config)
    recovery_started = time.perf_counter()
    await service.register_graph("bench", pattern, build_graph_and_pattern()[0])
    await service.drain()
    recovery_seconds = time.perf_counter() - recovery_started

    stats = service.stats("bench")
    snapshot = service.snapshot("bench")
    mismatches = sum(
        1
        for pair, present in ledger.items()
        if snapshot.data.has_edge(*pair) != present
    )
    errors = [repr(error) for _, error in service.errors]
    await service.close()
    return {
        "tail_deltas": payloads * DELTAS_PER_PAYLOAD,
        "payloads": payloads,
        "populate_accepted": accepted,
        "populate_rejected": rejected,
        "populate_seconds": populate_seconds,
        "recovery_seconds": recovery_seconds,
        "recovered": stats["recovered"],
        "recovery_skipped": stats["recovery_skipped"],
        "recovered_per_second": (
            stats["recovered"] / recovery_seconds if recovery_seconds else 0.0
        ),
        "settled": stats["settled"],
        "ledger_mismatches": mismatches,
        "errors": errors,
    }


async def run_benchmark(payloads: int, tail_deltas: int) -> dict:
    with TemporaryDirectory(prefix="bench-recovery-") as scratch:
        scratch_path = Path(scratch)
        baseline = await run_ingest(None, payloads)
        journaled = await run_ingest(str(scratch_path / "ingest"), payloads)
        recovery = await run_recovery(str(scratch_path / "recovery"), tail_deltas)
    ratio = (
        journaled["accepted_per_second"] / baseline["accepted_per_second"]
        if baseline["accepted_per_second"]
        else 0.0
    )
    return {
        "config": {
            "num_nodes": NUM_NODES,
            "num_edges": NUM_EDGES,
            "pattern": [PATTERN_NODES, PATTERN_EDGES],
            "payloads": payloads,
            "deltas_per_payload": DELTAS_PER_PAYLOAD,
            "tail_deltas": tail_deltas,
            "throughput_ratio_floor": THROUGHPUT_RATIO_FLOOR,
            "seed": SEED,
        },
        "ingest": {
            "baseline": baseline,
            "journaled": journaled,
            "throughput_ratio": ratio,
        },
        "recovery": recovery,
    }


def evaluate_gates(report: dict, quick: bool) -> list[str]:
    """Check the run's gates; returns failure messages (fatal ones first)."""
    failures = []
    baseline = report["ingest"]["baseline"]
    journaled = report["ingest"]["journaled"]
    recovery = report["recovery"]
    # Correctness gates — fatal in every mode.
    for name, phase in (("baseline", baseline), ("journaled", journaled)):
        if phase["rejected"]:
            failures.append(
                f"FATAL: {phase['rejected']} deltas rejected in the {name} ingest run "
                "(the writer owns disjoint pairs, so every toggle must be valid)"
            )
        if phase["errors"]:
            failures.append(f"FATAL: {name} ingest recorded errors: {phase['errors']}")
    if journaled["accepted"] != baseline["accepted"]:
        failures.append(
            f"FATAL: journaled run accepted {journaled['accepted']} deltas but the "
            f"baseline accepted {baseline['accepted']} — the workloads diverged"
        )
    if recovery["populate_rejected"]:
        failures.append(
            f"FATAL: {recovery['populate_rejected']} deltas rejected while journaling "
            "the recovery tail"
        )
    if recovery["recovered"] != recovery["tail_deltas"]:
        failures.append(
            f"FATAL: recovery replayed {recovery['recovered']} deltas, expected the "
            f"full {recovery['tail_deltas']}-delta tail"
        )
    if recovery["recovery_skipped"]:
        failures.append(
            f"FATAL: recovery skipped {recovery['recovery_skipped']} deltas of an "
            "uncheckpointed tail — nothing settled, so nothing may be skipped"
        )
    if recovery["ledger_mismatches"]:
        failures.append(
            f"FATAL: recovered graph disagrees with the writer's ledger on "
            f"{recovery['ledger_mismatches']} pair(s) — recovery lost or "
            "double-applied deltas"
        )
    if recovery["errors"]:
        failures.append(f"FATAL: recovery recorded errors: {recovery['errors']}")
    # The throughput gate — demoted to a warning under --quick, where the
    # short window makes the ratio noisy.
    prefix = "WARN" if quick else "FAIL"
    ratio = report["ingest"]["throughput_ratio"]
    if ratio < THROUGHPUT_RATIO_FLOOR:
        failures.append(
            f"{prefix}: journaled ingest throughput is {ratio:.2f}x the no-journal "
            f"baseline, below the {THROUGHPUT_RATIO_FLOOR:.1f}x durability budget"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--payloads", type=int, default=None, metavar="N",
        help="toggle payloads per ingest run (default 400, or 60 with --quick)",
    )
    parser.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="journaled deltas in the recovery tail (default 1000, or 200 with --quick)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short CI run: writes BENCH_recovery_quick.json, throughput gate warns",
    )
    args = parser.parse_args(argv)
    payloads = args.payloads if args.payloads is not None else (60 if args.quick else 400)
    tail = args.tail if args.tail is not None else (200 if args.quick else 1000)

    # Same rationale as bench_service.py: settles are CPU-bound pure
    # Python on executor threads, and the default GIL switch interval
    # lets them starve the event loop for long stretches.
    sys.setswitchinterval(0.001)
    report = asyncio.run(run_benchmark(payloads, tail))

    # --quick produces reduced-fidelity data; never overwrite the
    # tracked artifact with it.
    output = OUTPUT.with_name("BENCH_recovery_quick.json") if args.quick else OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    ingest, recovery = report["ingest"], report["recovery"]
    print(
        f"ingest: baseline {ingest['baseline']['accepted_per_second']:.0f} deltas/s, "
        f"journaled {ingest['journaled']['accepted_per_second']:.0f} deltas/s "
        f"(ratio {ingest['throughput_ratio']:.2f}x, "
        f"{ingest['journaled']['journal']['appends']} appends, "
        f"{ingest['journaled']['journal']['checkpoints']} checkpoints)"
    )
    print(
        f"recovery: {recovery['recovered']}-delta tail replayed and settled in "
        f"{recovery['recovery_seconds']:.3f} s "
        f"({recovery['recovered_per_second']:.0f} deltas/s)"
    )

    failures = evaluate_gates(report, quick=args.quick)
    fatal = [message for message in failures if not message.startswith("WARN")]
    for message in failures:
        print(message, file=sys.stderr)
    if failures and args.quick and not fatal:
        print("throughput gate demoted to a warning (--quick)", file=sys.stderr)
    return 1 if fatal else 0


if __name__ == "__main__":
    sys.exit(main())
