"""Snapshot publish cost: copy-on-write fork vs. whole-copy baseline.

The MVCC subsystem's core claim is that publishing a settled snapshot
is *cheap*: ``fork()`` clones the blocked SLen's block-pointer grid and
shares every block, so a publish allocates the graph copy plus a dict
of pointers — not a second copy of the distance matrix.  This benchmark
measures, at service scale (10^4 nodes, dense backend):

* bytes allocated (tracemalloc) and wall time for a copy-on-write
  publish (``data.copy()`` + ``slen.fork()``) vs. the whole-copy
  baseline (``data.copy()`` + ``slen.copy()``) — the PR's acceptance
  gate is publish bytes < 10% of the baseline,
* the shared-block fraction after a settle's worth of maintenance
  churn on the writer (how much of the matrix one version actually
  copies),
* retention amplification: unique bytes held by a
  :class:`~repro.versioning.store.VersionStore` ring of churned
  versions vs. what full copies of each version would hold.

Usage::

    PYTHONPATH=src python benchmarks/bench_snapshot.py [--quick]

``--quick`` runs a smaller graph for CI, writes
``BENCH_snapshot_quick.json`` (never the tracked artifact) and demotes
the timing gates to warnings; the allocation-ratio gate is structural
and stays fatal in both modes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.spl.matrix import SLenMatrix  # noqa: E402
from repro.versioning import VersionStore  # noqa: E402
from repro.workloads import SocialGraphSpec, generate_social_graph  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"

#: Service scale: the size the ISSUE's acceptance gate names.
NUM_NODES = 10_000
#: Quick size is chosen with headroom: the graph-copy term is linear in
#: |V| while the matrix the fork avoids copying grows quadratically, so
#: too small a graph would squeeze the allocation-ratio gate for
#: reasons that have nothing to do with CoW.
QUICK_NUM_NODES = 4_000
EDGES_PER_NODE = 3
SEED = 7

#: The acceptance gate: a CoW publish allocates < 10% of a whole copy.
PUBLISH_BYTES_RATIO_BOUND = 0.10
#: Timing gate (structural: a pointer-grid clone vs. a full memcpy).
PUBLISH_TIME_RATIO_BOUND = 0.25
#: After one settle's churn, most blocks must still be shared.
SHARED_FRACTION_BOUND = 0.50
#: Versions retained in the store-amplification measurement.
RETAINED_VERSIONS = 3
#: Maintenance churn per settle (recomputed SLen rows).
CHURN_SOURCES = 8


def traced(thunk):
    """Run ``thunk`` under tracemalloc; returns (result, bytes, seconds)."""
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    started = time.perf_counter()
    result = thunk()
    elapsed = time.perf_counter() - started
    allocated = tracemalloc.get_traced_memory()[0] - base
    tracemalloc.stop()
    return result, allocated, elapsed


def churn(slen: SLenMatrix, graph, round_index: int) -> None:
    """One settle's worth of maintenance on the writer's fork."""
    nodes = sorted(str(node) for node in slen.nodes())
    start = (round_index * CHURN_SOURCES) % max(1, len(nodes) - CHURN_SOURCES)
    slen.recompute_rows(graph, nodes[start : start + CHURN_SOURCES])


def run_benchmark(num_nodes: int) -> dict:
    """Measure publish cost and sharing at ``num_nodes``; returns the doc."""
    generated = time.perf_counter()
    data = generate_social_graph(
        SocialGraphSpec(
            name=f"bench-snapshot-{num_nodes}",
            num_nodes=num_nodes,
            num_edges=EDGES_PER_NODE * num_nodes,
            seed=SEED,
        )
    )
    built = time.perf_counter()
    slen = SLenMatrix.from_graph(data, backend="dense")
    build_seconds = time.perf_counter() - built
    backend = slen.backend

    # Whole-copy baseline first (it forces fully owned blocks either
    # way), then the CoW publish of the same state.
    whole, whole_bytes, whole_seconds = traced(lambda: (data.copy(), slen.copy()))
    del whole
    cow, cow_bytes, cow_seconds = traced(lambda: (data.copy(), slen.fork()))
    _, published = cow

    # One settle of churn on the writer: the published snapshot keeps
    # the old distances while the writer copies only the touched blocks.
    writer = slen
    churn(writer, data, 0)
    total_blocks = writer.backend.total_blocks()
    shared_after_churn = published.backend.shared_blocks()

    # Retention: a bounded ring of churned versions holds the base grid
    # once plus each version's private blocks — not N full copies.
    store = VersionStore(history=RETAINED_VERSIONS)

    class _Snapshot:
        def __init__(self, version, slen):
            self.version = version
            self.slen = slen

    chain = writer
    for version in range(RETAINED_VERSIONS):
        store.publish(_Snapshot(version, chain))
        chain = chain.fork()
        churn(chain, data, version + 1)
    store_bytes = store.allocated_bytes()
    full_copy_bytes = backend.allocated_bytes() * RETAINED_VERSIONS

    return {
        "config": {
            "num_nodes": num_nodes,
            "num_edges": EDGES_PER_NODE * num_nodes,
            "seed": SEED,
            "block_size": backend.block_size,
            "churn_sources": CHURN_SOURCES,
            "retained_versions": RETAINED_VERSIONS,
        },
        "build": {
            "graph_seconds": built - generated,
            "slen_seconds": build_seconds,
            "slen_allocated_bytes": backend.allocated_bytes(),
            "occupied_blocks": backend.occupied_blocks(),
        },
        "publish": {
            "wholecopy_bytes": whole_bytes,
            "wholecopy_seconds": whole_seconds,
            "cow_bytes": cow_bytes,
            "cow_seconds": cow_seconds,
            "bytes_ratio": cow_bytes / whole_bytes if whole_bytes else 0.0,
            "time_ratio": cow_seconds / whole_seconds if whole_seconds else 0.0,
        },
        "sharing": {
            "total_blocks": total_blocks,
            "shared_blocks_after_churn": shared_after_churn,
            "shared_fraction_after_churn": (
                shared_after_churn / total_blocks if total_blocks else 0.0
            ),
        },
        "retention": {
            "store_allocated_bytes": store_bytes,
            "full_copy_bytes": full_copy_bytes,
            "amplification": store_bytes / full_copy_bytes if full_copy_bytes else 0.0,
        },
    }


def evaluate_gates(report: dict, quick: bool) -> list[str]:
    """Check the run's gates; returns failure messages (fatal ones first)."""
    failures = []
    publish = report["publish"]
    sharing = report["sharing"]
    # The acceptance gate is structural (pointer grid vs. full blocks),
    # so it holds at the quick size too — fatal in every mode.
    if publish["bytes_ratio"] >= PUBLISH_BYTES_RATIO_BOUND:
        failures.append(
            f"FATAL: CoW publish allocated {publish['cow_bytes']} bytes = "
            f"{publish['bytes_ratio']:.1%} of the whole-copy baseline "
            f"({publish['wholecopy_bytes']}); the gate is "
            f"< {PUBLISH_BYTES_RATIO_BOUND:.0%}"
        )
    prefix = "WARN" if quick else "FAIL"
    if publish["time_ratio"] >= PUBLISH_TIME_RATIO_BOUND:
        failures.append(
            f"{prefix}: CoW publish took {publish['time_ratio']:.1%} of the "
            f"whole-copy time (bound {PUBLISH_TIME_RATIO_BOUND:.0%})"
        )
    if sharing["shared_fraction_after_churn"] < SHARED_FRACTION_BOUND:
        failures.append(
            f"{prefix}: only {sharing['shared_fraction_after_churn']:.1%} of "
            f"blocks stayed shared after one settle's churn "
            f"(bound ≥ {SHARED_FRACTION_BOUND:.0%}) — copy-on-write is "
            "copying far more than it shares"
        )
    if report["retention"]["amplification"] >= 1.0:
        failures.append(
            f"{prefix}: retaining {RETAINED_VERSIONS} churned versions holds "
            f"{report['retention']['amplification']:.2f}x the bytes of full "
            "copies — the store is not sharing blocks across versions"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI run: writes BENCH_snapshot_quick.json, timing gates warn",
    )
    args = parser.parse_args(argv)

    num_nodes = QUICK_NUM_NODES if args.quick else NUM_NODES
    report = run_benchmark(num_nodes)

    # --quick produces reduced-fidelity data; never overwrite the
    # tracked artifact with it.
    output = OUTPUT.with_name("BENCH_snapshot_quick.json") if args.quick else OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    publish, sharing = report["publish"], report["sharing"]
    print(
        f"publish at {num_nodes} nodes: CoW {publish['cow_bytes'] / 1e6:.1f} MB / "
        f"{publish['cow_seconds'] * 1000:.1f} ms vs whole-copy "
        f"{publish['wholecopy_bytes'] / 1e6:.1f} MB / "
        f"{publish['wholecopy_seconds'] * 1000:.1f} ms "
        f"(bytes ratio {publish['bytes_ratio']:.2%})"
    )
    print(
        f"sharing: {sharing['shared_blocks_after_churn']}/{sharing['total_blocks']} "
        f"blocks shared after churn "
        f"({sharing['shared_fraction_after_churn']:.1%}); retention x"
        f"{report['retention']['amplification']:.2f} of "
        f"{RETAINED_VERSIONS} full copies"
    )

    failures = evaluate_gates(report, quick=args.quick)
    fatal = [message for message in failures if not message.startswith("WARN")]
    for message in failures:
        print(message, file=sys.stderr)
    if failures and args.quick and not fatal:
        print("timing gates demoted to warnings (--quick)", file=sys.stderr)
    return 1 if fatal else 0


if __name__ == "__main__":
    sys.exit(main())
