"""Marginal cost of standing patterns under shared-maintenance fan-out.

The claim under test (ISSUE 9 / ROADMAP item 4): a settle runs the
pattern-independent work — batch application, ``SLen`` maintenance, the
affected-region computation — **once**, and each standing pattern adds
only a label-intersection filter plus (when touched) one amendment
pass.  The marginal cost of a subscription must therefore be a small
fraction of the shared pass, not a multiple of it.

The benchmark replays the *same* balanced edge-toggle stream into fresh
services carrying 1, 8 and 32 standing patterns (generated over the
graph's own label set, so the skip filter faces realistic traffic) and
times every settle end to end — shared maintenance, fan-out, snapshot
publish.  Gates:

* **fan-out gate (fatal, every mode):** the mean settle with 32
  patterns costs at most ``FANOUT_BOUND``x the 1-pattern settle.  A
  per-pattern implementation would pay ~32x.
* **shared-pass gate (fatal):** the service's own counters show exactly
  one maintenance / SLen pass per settle at every pattern count.
* **equivalence gate (fatal):** every subscription's settled matches
  equal a from-scratch ``bounded_simulation`` oracle at the end of the
  stream.

Usage::

    PYTHONPATH=src python benchmarks/bench_subscriptions.py [--quick]
        [--payloads N]

``--quick`` shortens the stream for CI and writes
``BENCH_subscriptions_quick.json`` (never the tracked artifact); all
three gates stay fatal — the fan-out bound is a ratio, so it holds at
any stream length.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.matching import MatchResult, bounded_simulation  # noqa: E402
from repro.service import ServiceConfig, StreamingUpdateService  # noqa: E402
from repro.spl.matrix import SLenMatrix  # noqa: E402
from repro.workloads import (  # noqa: E402
    PatternSpec,
    SocialGraphSpec,
    generate_pattern,
    generate_social_graph,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_subscriptions.json"

NUM_NODES = 240
NUM_EDGES = 1100
SEED = 2024

#: Standing-pattern counts probed (the first is the baseline).
PATTERN_COUNTS = (1, 8, 32)
#: Edge toggles per submitted payload (a balanced insert/delete mix —
#: every payload flips, so roughly half of each over the stream).
DELTAS_PER_PAYLOAD = 4

#: The fan-out gate: 32 standing patterns may cost at most this multiple
#: of the single-pattern settle.  Fatal in every mode.
FANOUT_BOUND = 4.0


def build_graph():
    return generate_social_graph(
        SocialGraphSpec(
            name="bench-subscriptions",
            num_nodes=NUM_NODES,
            num_edges=NUM_EDGES,
            seed=SEED,
        )
    )


def build_patterns(count: int, labels: list[str]) -> list:
    """``count`` distinct patterns over the graph's own labels."""
    patterns = []
    for position in range(count):
        size = 3 + position % 4
        patterns.append(
            generate_pattern(
                PatternSpec(
                    num_nodes=size,
                    num_edges=size,
                    labels=labels,
                    seed=SEED + position,
                )
            )
        )
    return patterns


def build_payload_stream(data, payloads: int) -> list[dict]:
    """A deterministic balanced toggle stream, valid from ``data``."""
    shadow = data.copy()
    rng = random.Random(SEED)
    nodes = sorted(shadow.nodes())
    stream = []
    for _ in range(payloads):
        inserts, deletes = [], []
        for _ in range(DELTAS_PER_PAYLOAD):
            source, target = rng.sample(nodes, 2)
            spec = {"type": "edge", "source": source, "target": target}
            if shadow.has_edge(source, target):
                shadow.remove_edge(source, target)
                deletes.append(spec)
            else:
                shadow.add_edge(source, target)
                inserts.append(spec)
        stream.append({"inserts": inserts, "deletes": deletes})
    return stream


async def run_probe(pattern_count: int, stream: list[dict]) -> dict:
    """Replay ``stream`` against ``pattern_count`` standing patterns."""
    data = build_graph()
    patterns = build_patterns(pattern_count, sorted(data.labels()))
    config = ServiceConfig(
        deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000,
        max_subscriptions=max(PATTERN_COUNTS),
    )
    service = StreamingUpdateService(config)
    await service.register("bench", data)
    for position, pattern in enumerate(patterns):
        await service.subscribe("bench", f"q{position}", pattern)

    settle_seconds: list[float] = []
    for payload in stream:
        receipt = await service.submit("bench", payload)
        started = time.perf_counter()
        await service.drain()  # cut + settle: shared pass + fan-out
        settle_seconds.append(time.perf_counter() - started)
        if receipt.rejected:
            raise RuntimeError(f"payload rejected: {receipt.errors}")

    stats = service.stats("bench")
    snapshot = service.snapshot("bench")

    # Equivalence gate inputs: settled matches vs. from-scratch oracle.
    oracle_slen = SLenMatrix.from_graph(snapshot.data)
    mismatches = 0
    for pattern_id, state in snapshot.subscriptions.items():
        oracle = MatchResult(
            bounded_simulation(state.pattern, snapshot.data, oracle_slen),
            enforce_totality=True,
        )
        if service.matches("bench", pattern_id=pattern_id) != oracle.as_dict():
            mismatches += 1
    await service.close()

    return {
        "patterns": pattern_count,
        "settles": stats["settles"],
        "settle_mean_seconds": statistics.fmean(settle_seconds),
        "settle_p50_seconds": statistics.median(settle_seconds),
        "settle_total_seconds": sum(settle_seconds),
        "maintenance_passes": stats["shared"]["maintenance_passes"],
        "slen_update_passes": stats["shared"]["slen_update_passes"],
        "fanout_amend_passes": stats["shared"]["fanout_amend_passes"],
        "fanout_skips": stats["shared"]["fanout_skips"],
        "oracle_mismatches": mismatches,
    }


async def run_benchmark(payloads: int) -> dict:
    data = build_graph()
    stream = build_payload_stream(data, payloads)
    probes = [await run_probe(count, stream) for count in PATTERN_COUNTS]
    baseline = probes[0]
    heaviest = probes[-1]
    marginal = (
        heaviest["settle_mean_seconds"] - baseline["settle_mean_seconds"]
    ) / max(1, heaviest["patterns"] - baseline["patterns"])
    return {
        "config": {
            "num_nodes": NUM_NODES,
            "num_edges": NUM_EDGES,
            "payloads": payloads,
            "deltas_per_payload": DELTAS_PER_PAYLOAD,
            "pattern_counts": list(PATTERN_COUNTS),
            "fanout_bound": FANOUT_BOUND,
            "seed": SEED,
        },
        "probes": probes,
        "fanout_ratio": heaviest["settle_mean_seconds"]
        / max(baseline["settle_mean_seconds"], 1e-9),
        "marginal_per_pattern_seconds": marginal,
    }


def evaluate_gates(report: dict) -> list[str]:
    """All three gates are fatal in every mode (the bound is a ratio)."""
    failures = []
    ratio = report["fanout_ratio"]
    if ratio > FANOUT_BOUND:
        failures.append(
            f"FATAL: {PATTERN_COUNTS[-1]} standing patterns cost {ratio:.2f}x the "
            f"single-pattern settle (bound {FANOUT_BOUND:.0f}x) — the fan-out is "
            "paying per-pattern maintenance"
        )
    for probe in report["probes"]:
        if probe["maintenance_passes"] != probe["settles"]:
            failures.append(
                f"FATAL: {probe['patterns']} patterns ran "
                f"{probe['maintenance_passes']} maintenance passes over "
                f"{probe['settles']} settles — the shared pass is not shared"
            )
        if probe["slen_update_passes"] != probe["settles"]:
            failures.append(
                f"FATAL: {probe['patterns']} patterns ran "
                f"{probe['slen_update_passes']} SLen passes over "
                f"{probe['settles']} settles"
            )
        if probe["oracle_mismatches"]:
            failures.append(
                f"FATAL: {probe['oracle_mismatches']} subscriptions diverged "
                f"from the from-scratch oracle at {probe['patterns']} patterns"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--payloads", type=int, default=None, metavar="N",
        help="toggle payloads streamed per probe (default 40, or 10 with --quick)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short CI run: writes BENCH_subscriptions_quick.json; gates stay fatal",
    )
    args = parser.parse_args(argv)
    payloads = args.payloads if args.payloads is not None else (10 if args.quick else 40)

    sys.setswitchinterval(0.001)
    report = asyncio.run(run_benchmark(payloads))

    output = OUTPUT.with_name("BENCH_subscriptions_quick.json") if args.quick else OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    for probe in report["probes"]:
        print(
            f"{probe['patterns']:>3} patterns: settle mean "
            f"{probe['settle_mean_seconds'] * 1000:.2f} ms over {probe['settles']} "
            f"settles; {probe['fanout_amend_passes']} amends + "
            f"{probe['fanout_skips']} skips; "
            f"{probe['maintenance_passes']} maintenance passes"
        )
    print(
        f"fan-out ratio {report['fanout_ratio']:.2f}x (bound {FANOUT_BOUND:.0f}x); "
        f"marginal cost {report['marginal_per_pattern_seconds'] * 1e6:.0f} us/pattern"
    )

    failures = evaluate_gates(report)
    for message in failures:
        print(message, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
