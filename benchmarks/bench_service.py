"""Streaming service under mixed read-write load: throughput + read tail.

The benchmark drives a :class:`repro.service.StreamingUpdateService`
the way a deployment would: several concurrent writers stream edge
toggles (insert when absent, delete when present) into one graph while
concurrent readers continuously query the settled state.  It measures

* sustained update throughput (accepted and settled deltas per second),
* how the admission policy cut batches (crossover / capacity / deadline),
* read latency p50/p99 — overall *and* restricted to reads issued while
  a settle was in flight, which is the claim under test: reads answer
  from the last published snapshot and never block behind maintenance,
* settle durations (the work the reads are *not* waiting for).

Each writer owns a disjoint set of node pairs and tracks its own ledger
of which owned edges currently exist, so every submitted delta is valid
regardless of how the writers interleave — any rejection is a harness
or service bug and fails the run.  After the drain, every accepted
delta must be settled (the no-loss guarantee).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
        [--duration SECONDS] [--writers N] [--readers N]

``--quick`` shortens the run for CI, writes ``BENCH_service_quick.json``
(never the tracked artifact) and demotes the timing gates to warnings;
the correctness gates (no rejected deltas, no lost deltas) stay fatal.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceConfig, StreamingUpdateService  # noqa: E402
from repro.service.service import default_algorithm_factory  # noqa: E402
from repro.workloads import (  # noqa: E402
    PatternSpec,
    SocialGraphSpec,
    generate_pattern,
    generate_social_graph,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Benchmark graph scale (past the planner's interesting regime but
#: small enough that settles take milliseconds, so the run finishes
#: quickly while still overlapping reads with many settles).
NUM_NODES = 320
NUM_EDGES = 1500
PATTERN_NODES = 6
PATTERN_EDGES = 6
SEED = 2020

#: Pairs each writer owns (its toggle working set).
PAIRS_PER_WRITER = 120
#: Edge toggles per submitted payload.
DELTAS_PER_PAYLOAD = 4

#: Read-latency bound for the (full-mode) gate: generous, because the
#: claim is "reads do not stall behind multi-millisecond settles", not
#: "reads are instant on a loaded event loop".
READ_P99_BOUND_SECONDS = 0.25

#: Graph sizes for the snapshot-publish scaling probe (dense backend).
PUBLISH_SCALING_SIZES = (320, 1280)
#: Publish cost may grow with the graph copy (linear in |V|) but not
#: with the SLen matrix (quadratic in |V|): allowed growth is the
#: node-count ratio times this slack factor, which keeps the bound well
#: under the matrix's quadratic growth while tolerating timing noise.
PUBLISH_FLATNESS_FACTOR = 3.0
#: At the largest probed size a whole SLen copy must cost at least this
#: multiple of a CoW fork (the memcpy the publish path no longer pays).
FORK_SPEEDUP_BOUND = 4.0
#: A full publish (graph copy + fork + bookkeeping) may cost at most
#: this multiple of one bare SLen memcpy at the largest probed size —
#: the old whole-copy path paid the graph copy AND the memcpy.
PUBLISH_VS_COPY_BOUND = 2.0
#: Settles measured per probed size.
PUBLISH_SETTLES = 8


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction`` quantile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def build_graph_and_pattern():
    """The benchmark's data graph and pattern (deterministic)."""
    data = generate_social_graph(
        SocialGraphSpec(name="bench-service", num_nodes=NUM_NODES, num_edges=NUM_EDGES, seed=SEED)
    )
    pattern = generate_pattern(
        PatternSpec(
            num_nodes=PATTERN_NODES,
            num_edges=PATTERN_EDGES,
            labels=sorted(data.labels()),
            seed=SEED,
        )
    )
    return data, pattern


def partition_pairs(data, writers: int, rng: random.Random) -> list[list[tuple]]:
    """Disjoint owned node-pair sets, one per writer."""
    nodes = sorted(data.nodes())
    seen: set[tuple] = set()
    pairs: list[tuple] = []
    while len(pairs) < writers * PAIRS_PER_WRITER:
        u, v = rng.sample(nodes, 2)
        if (u, v) not in seen:
            seen.add((u, v))
            pairs.append((u, v))
    return [pairs[i::writers] for i in range(writers)]


async def run_benchmark(duration: float, writers: int, readers: int) -> dict:
    """Drive the mixed workload; returns the metrics document."""
    data, pattern = build_graph_and_pattern()
    rng = random.Random(SEED)
    config = ServiceConfig(
        deadline_seconds=0.02,
        max_buffer=512,
        coalesce_min_batch=32,
    )

    # Instrument the settle path: readers tag each sample with whether a
    # settle was executing at read time, and settles report durations.
    inflight = {"count": 0}
    settle_seconds: list[float] = []

    def factory(pattern_graph, data_graph, service_config, telemetry):
        algorithm = default_algorithm_factory(
            pattern_graph, data_graph, service_config, telemetry
        )
        inner = algorithm.subsequent_query

        def instrumented(batch):
            inflight["count"] += 1
            started = time.perf_counter()
            try:
                return inner(batch)
            finally:
                settle_seconds.append(time.perf_counter() - started)
                inflight["count"] -= 1

        algorithm.subsequent_query = instrumented
        return algorithm

    service = StreamingUpdateService(config, algorithm_factory=factory)
    await service.register_graph("bench", pattern, data)

    stop = asyncio.Event()
    accepted = {"count": 0}
    rejected = {"count": 0}
    read_samples: list[tuple[float, bool]] = []

    owned = partition_pairs(data, writers, rng)

    async def writer(pair_set: list[tuple]) -> None:
        # The ledger mirrors the staged state of the owned pairs; no
        # other writer touches them, so every toggle is always valid.
        ledger = {pair: data.has_edge(*pair) for pair in pair_set}
        cursor = 0
        while not stop.is_set():
            inserts, deletes = [], []
            for _ in range(DELTAS_PER_PAYLOAD):
                pair = pair_set[cursor % len(pair_set)]
                cursor += 1
                spec = {"type": "edge", "source": pair[0], "target": pair[1]}
                (deletes if ledger[pair] else inserts).append(spec)
                ledger[pair] = not ledger[pair]
            receipt = await service.submit(
                "bench", {"inserts": inserts, "deletes": deletes}
            )
            accepted["count"] += receipt.accepted
            rejected["count"] += receipt.rejected

    async def reader(style: int) -> None:
        nodes = sorted(data.nodes())
        reader_rng = random.Random(SEED + style)
        while not stop.is_set():
            started = time.perf_counter()
            # Yield once before the read so the sample includes any
            # event-loop stall a blocking settle would cause.
            await asyncio.sleep(0)
            settling = inflight["count"] > 0
            if style % 3 == 0:
                service.matches("bench")
            elif style % 3 == 1:
                service.top_k("bench", 3)
            else:
                service.slen_distance(
                    "bench", reader_rng.choice(nodes), reader_rng.choice(nodes)
                )
            read_samples.append((time.perf_counter() - started, settling))
            await asyncio.sleep(0.001)

    tasks = [asyncio.ensure_future(writer(pair_set)) for pair_set in owned]
    tasks += [asyncio.ensure_future(reader(i)) for i in range(readers)]
    bench_started = time.perf_counter()
    await asyncio.sleep(duration)
    stop.set()
    await asyncio.gather(*tasks)
    await service.close()
    elapsed = time.perf_counter() - bench_started

    stats = service.stats("bench")
    all_reads = [sample[0] for sample in read_samples]
    settling_reads = [sample[0] for sample in read_samples if sample[1]]
    return {
        "config": {
            "num_nodes": NUM_NODES,
            "num_edges": NUM_EDGES,
            "pattern": [PATTERN_NODES, PATTERN_EDGES],
            "writers": writers,
            "readers": readers,
            "duration_seconds": duration,
            "deadline_seconds": config.deadline_seconds,
            "max_buffer": config.max_buffer,
            "coalesce_min_batch": config.coalesce_min_batch,
            "seed": SEED,
        },
        "elapsed_seconds": elapsed,
        "updates": {
            "accepted": accepted["count"],
            "rejected": rejected["count"],
            "settled": stats["settled"],
            "accepted_per_second": accepted["count"] / elapsed,
            "settled_per_second": stats["settled"] / elapsed,
            "settles": stats["settles"],
            "cut_reasons": stats["cut_reasons"],
        },
        "reads": {
            "total": len(all_reads),
            "during_settle": len(settling_reads),
            "p50_seconds": percentile(all_reads, 0.50),
            "p99_seconds": percentile(all_reads, 0.99),
            "during_settle_p50_seconds": percentile(settling_reads, 0.50),
            "during_settle_p99_seconds": percentile(settling_reads, 0.99),
        },
        "settles": {
            "count": len(settle_seconds),
            "p50_seconds": percentile(settle_seconds, 0.50),
            "max_seconds": max(settle_seconds, default=0.0),
            "mean_seconds": statistics.fmean(settle_seconds) if settle_seconds else 0.0,
        },
        "service_errors": [repr(error) for _, error in service.errors],
    }


async def measure_publish_scaling() -> list[dict]:
    """Per-settle snapshot publish cost at growing graph sizes.

    Each probe registers a dense-backend graph, settles a handful of
    single-toggle payloads (deadline 0 cuts after every submit) and
    reads the service's own ``publish_seconds`` accounting, plus a
    direct fork-vs-copy timing of the settled SLen.  The gate: publish
    cost tracks the linear graph copy, not the quadratic matrix copy.
    """
    results = []
    for num_nodes in PUBLISH_SCALING_SIZES:
        data = generate_social_graph(
            SocialGraphSpec(
                name=f"bench-publish-{num_nodes}",
                num_nodes=num_nodes,
                num_edges=4 * num_nodes,
                seed=SEED,
            )
        )
        pattern = generate_pattern(
            PatternSpec(
                num_nodes=PATTERN_NODES,
                num_edges=PATTERN_EDGES,
                labels=sorted(data.labels()),
                seed=SEED,
            )
        )
        config = ServiceConfig(
            deadline_seconds=0.0,
            max_buffer=512,
            coalesce_min_batch=10_000,
            slen_backend="dense",
            snapshot_history=4,
        )
        service = StreamingUpdateService(config)
        await service.register_graph("g", pattern, data)
        shadow = data.copy()
        rng = random.Random(SEED + num_nodes)
        nodes = sorted(shadow.nodes())
        for _ in range(PUBLISH_SETTLES):
            source, target = rng.sample(nodes, 2)
            spec = {"type": "edge", "source": source, "target": target}
            if shadow.has_edge(source, target):
                shadow.remove_edge(source, target)
                payload = {"deletes": [spec]}
            else:
                shadow.add_edge(source, target)
                payload = {"inserts": [spec]}
            await service.submit("g", payload)
            await service.drain()
        stats = service.stats("g")
        slen = service.snapshot("g").slen

        def best_of(thunk, repeats: int = 5) -> float:
            # One-shot ms-scale timings swing wildly under CPU
            # contention; the minimum is the honest cost.
            samples = []
            for _ in range(repeats):
                started = time.perf_counter()
                thunk()
                samples.append(time.perf_counter() - started)
            return min(samples)

        fork_seconds = best_of(slen.fork)
        copy_seconds = best_of(slen.copy)
        results.append(
            {
                "num_nodes": num_nodes,
                "settles": stats["settles"],
                "publish_seconds": stats["snapshot"]["publish_seconds"],
                "publish_per_settle_seconds": (
                    stats["snapshot"]["publish_seconds"] / max(1, stats["settles"])
                ),
                "slen_fork_seconds": fork_seconds,
                "slen_copy_seconds": copy_seconds,
                "slen_shared_blocks": stats["snapshot"].get("slen_shared_blocks"),
                "slen_owned_blocks": stats["snapshot"].get("slen_owned_blocks"),
            }
        )
        await service.close()
    return results


def evaluate_gates(report: dict, quick: bool) -> list[str]:
    """Check the run's gates; returns failure messages (fatal ones first)."""
    failures = []
    updates = report["updates"]
    reads = report["reads"]
    # Correctness gates — fatal in every mode.
    if updates["rejected"]:
        failures.append(
            f"FATAL: {updates['rejected']} deltas rejected (writers own disjoint "
            "pairs, so every toggle must be valid)"
        )
    if updates["accepted"] != updates["settled"]:
        failures.append(
            f"FATAL: accepted {updates['accepted']} != settled {updates['settled']} "
            "after close() — the no-loss drain guarantee is broken"
        )
    if report["service_errors"]:
        failures.append(f"FATAL: service recorded errors: {report['service_errors']}")
    # Timing gates — demoted to warnings under --quick.
    prefix = "WARN" if quick else "FAIL"
    if reads["during_settle"] == 0:
        failures.append(
            f"{prefix}: no read overlapped a settle — the run cannot support "
            "the reads-do-not-block claim (lengthen --duration)"
        )
    if reads["during_settle_p99_seconds"] > READ_P99_BOUND_SECONDS:
        failures.append(
            f"{prefix}: read p99 during settles "
            f"{reads['during_settle_p99_seconds'] * 1000:.1f} ms exceeds "
            f"{READ_P99_BOUND_SECONDS * 1000:.0f} ms — reads are stalling "
            "behind maintenance"
        )
    scaling = report.get("publish_scaling") or []
    if len(scaling) >= 2:
        first, last = scaling[0], scaling[-1]
        node_growth = last["num_nodes"] / first["num_nodes"]
        publish_growth = last["publish_per_settle_seconds"] / max(
            first["publish_per_settle_seconds"], 1e-9
        )
        if publish_growth > node_growth * PUBLISH_FLATNESS_FACTOR:
            failures.append(
                f"{prefix}: per-settle publish cost grew {publish_growth:.1f}x "
                f"from |V|={first['num_nodes']} to |V|={last['num_nodes']} "
                f"(bound {node_growth * PUBLISH_FLATNESS_FACTOR:.1f}x = linear "
                "in |V| with slack) — snapshot publishing is copying the matrix"
            )
        fork_speedup = last["slen_copy_seconds"] / max(last["slen_fork_seconds"], 1e-9)
        if fork_speedup < FORK_SPEEDUP_BOUND:
            failures.append(
                f"{prefix}: SLen fork is only {fork_speedup:.1f}x faster than a "
                f"whole copy at |V|={last['num_nodes']} "
                f"(bound ≥ {FORK_SPEEDUP_BOUND:.0f}x) — copy-on-write sharing "
                "is not engaged"
            )
        publish_vs_copy = last["publish_per_settle_seconds"] / max(
            last["slen_copy_seconds"], 1e-9
        )
        if publish_vs_copy > PUBLISH_VS_COPY_BOUND:
            failures.append(
                f"{prefix}: at |V|={last['num_nodes']} a full publish "
                f"({last['publish_per_settle_seconds'] * 1000:.1f} ms) costs "
                f"{publish_vs_copy:.1f}x the bare SLen memcpy it avoids "
                f"({last['slen_copy_seconds'] * 1000:.1f} ms; bound "
                f"{PUBLISH_VS_COPY_BOUND:.0f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="measured window (default 8, or 2 with --quick)",
    )
    parser.add_argument("--writers", type=int, default=4, metavar="N")
    parser.add_argument("--readers", type=int, default=8, metavar="N")
    parser.add_argument(
        "--quick", action="store_true",
        help="short CI run: writes BENCH_service_quick.json, timing gates warn",
    )
    args = parser.parse_args(argv)
    duration = args.duration if args.duration is not None else (2.0 if args.quick else 8.0)

    # Settles are CPU-bound pure Python on an executor thread; with the
    # default 5 ms GIL switch interval the event loop can lose the GIL
    # race for tens of milliseconds at a time (convoy effect), which
    # would show up here as read-tail latency that is not the service's
    # doing.  A shorter interval keeps the loop responsive.
    sys.setswitchinterval(0.001)
    report = asyncio.run(run_benchmark(duration, args.writers, args.readers))
    report["publish_scaling"] = asyncio.run(measure_publish_scaling())

    # --quick produces reduced-fidelity data; never overwrite the
    # tracked artifact with it.
    output = OUTPUT.with_name("BENCH_service_quick.json") if args.quick else OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    updates, reads = report["updates"], report["reads"]
    print(
        f"updates: {updates['accepted']} accepted, {updates['settled']} settled "
        f"({updates['settled_per_second']:.0f}/s) across {updates['settles']} settles; "
        f"cuts {updates['cut_reasons']}"
    )
    print(
        f"reads: {reads['total']} total ({reads['during_settle']} during settles); "
        f"p50 {reads['p50_seconds'] * 1000:.2f} ms, p99 {reads['p99_seconds'] * 1000:.2f} ms; "
        f"during settles p99 {reads['during_settle_p99_seconds'] * 1000:.2f} ms"
    )
    for probe in report["publish_scaling"]:
        print(
            f"publish at |V|={probe['num_nodes']}: "
            f"{probe['publish_per_settle_seconds'] * 1000:.2f} ms/settle; "
            f"slen fork {probe['slen_fork_seconds'] * 1000:.2f} ms vs copy "
            f"{probe['slen_copy_seconds'] * 1000:.2f} ms"
        )

    failures = evaluate_gates(report, quick=args.quick)
    fatal = [message for message in failures if not message.startswith("WARN")]
    for message in failures:
        print(message, file=sys.stderr)
    if failures and args.quick and not fatal:
        print("timing gates demoted to warnings (--quick)", file=sys.stderr)
    return 1 if fatal else 0


if __name__ == "__main__":
    sys.exit(main())
