"""Benchmarks regenerating Figures 5-9 (query time vs ΔG per dataset).

For every dataset (one per paper figure) the benchmark times one
subsequent query per method on the prepared mid-size workload, and prints
the full per-ΔG series assembled from the shared grid records.
"""

from __future__ import annotations

import pytest

from repro.algorithms import EHGPNM, IncGPNM, UAGPNM
from repro.experiments.figures import FIGURE_OF_DATASET, crossover_free, figure_series
from repro.experiments.report import render_figure

METHODS = {
    "UA-GPNM": lambda pattern, data, **kw: UAGPNM(pattern, data, use_partition=True, **kw),
    "UA-GPNM-NoPar": lambda pattern, data, **kw: UAGPNM(pattern, data, use_partition=False, **kw),
    "EH-GPNM": EHGPNM,
    "INC-GPNM": IncGPNM,
}

DATASET_PARAMS = list(FIGURE_OF_DATASET.items())


@pytest.mark.parametrize("dataset,figure", DATASET_PARAMS, ids=[d for d, _ in DATASET_PARAMS])
@pytest.mark.parametrize("method", list(METHODS))
def test_figure_subsequent_query(benchmark, dataset_cell_inputs, grid_records, dataset, figure, method):
    """One subsequent query of `method` on `dataset` (the figure's data point)."""
    data, pattern, slen, iquery, batch = dataset_cell_inputs[dataset]

    def run_once():
        engine = METHODS[method](
            pattern, data, precomputed_slen=slen, precomputed_relation=iquery
        )
        return engine.subsequent_query(batch)

    outcome = benchmark.pedantic(run_once, rounds=1, iterations=1, warmup_rounds=0)
    assert outcome.result is not None


@pytest.mark.parametrize("dataset,figure", DATASET_PARAMS, ids=[d for d, _ in DATASET_PARAMS])
def test_figure_series_shape(grid_records, dataset, figure):
    """Print the figure's series and check the paper's ordering holds."""
    print()
    print(render_figure(grid_records, dataset))
    series = figure_series(grid_records, dataset)
    assert series, f"no records for {dataset}"
    assert crossover_free(series, "UA-GPNM", "INC-GPNM")
