"""Shared state for the benchmark harness.

The per-table and per-figure benchmarks all consume the same measurement
records, so the (comparatively expensive) experiment grid is executed
once per benchmark session and cached in a session-scoped fixture.  The
grid is the ``quick`` preset trimmed to one pattern size so that the
whole benchmark run finishes in a couple of minutes; run
``ua-gpnm all --preset full`` for the complete sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.matching.gpnm import gpnm_query
from repro.spl.matrix import SLenMatrix
from repro.workloads.datasets import dataset_names, load_dataset
from repro.workloads.generators import DEFAULT_LABEL_ORDER
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

#: Grid used by the table/figure benchmarks.
BENCH_CONFIG = ExperimentConfig(
    datasets=tuple(dataset_names()),
    pattern_sizes=((8, 8),),
    delta_scales=((6, 20), (8, 40), (10, 60)),
    repetitions=1,
)


@pytest.fixture(scope="session")
def grid_records():
    """Measurement records of the benchmark grid (computed once per session)."""
    return run_experiment(BENCH_CONFIG, verify_against_oracle=False)


@pytest.fixture(scope="session")
def dataset_cell_inputs():
    """Per-dataset prepared inputs for the figure benchmarks.

    Returns ``{dataset: (data, pattern, slen, iquery, batch)}`` with the
    mid-size ΔG scale, so each figure benchmark can time one subsequent
    query per method without re-doing the setup.
    """
    inputs = {}
    for name in dataset_names():
        data = load_dataset(name, scale="quick")
        labels = tuple(label for label in DEFAULT_LABEL_ORDER if label in data.labels())
        pattern = generate_pattern(
            PatternSpec(
                num_nodes=8,
                num_edges=8,
                labels=labels,
                min_bound=2,
                max_bound=3,
                star_probability=0.0,
                respect_label_order=True,
                seed=2028,
            )
        )
        slen = SLenMatrix.from_graph(data, horizon=4)
        iquery = gpnm_query(pattern, data, slen, enforce_totality=False)
        batch = generate_update_batch(
            data,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=8, num_data_updates=40, seed=77),
        )
        inputs[name] = (data, pattern, slen, iquery, batch)
    return inputs
