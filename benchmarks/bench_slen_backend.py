"""Benchmark: sparse vs. dense ``SLen`` backend kernels across graph sizes.

For each graph size in ``GRAPH_SIZES`` the script builds a synthetic
social graph and times, on both backends,

* **build** — full all-pairs construction (``SLenMatrix.from_graph``):
  per-source Python BFS (sparse) vs one frontier-array multi-source BFS
  (dense);
* **insert-edges** — per-update maintenance of a stream of edge
  insertions (:func:`repro.spl.incremental.update_slen`): the O(n²)
  Python relaxation loop vs the rank-1 broadcast kernel;
* **delete-edges** — per-update maintenance of a stream of edge
  deletions: per-source Dijkstra settles vs the batched affected-region
  recompute;
* **coalesced-mixed** — one compile + coalesced pass over a mixed batch.

Two further sections cover the blocked dense layout:

* **construction-frontier** — the bit-packed (``uint64`` words) vs the
  boolean multi-source BFS frontier on the dense backend, per graph
  size (the blocked rewrite's construction-speedup acceptance row);
* **scaling** — a ≥10⁴-node axis on community-structured graphs with
  the experiment harness's horizon: build time per backend plus the
  blocked layout's memory accounting (occupied blocks and allocated
  bytes vs the dense-full O(n²) baseline).

Every run cross-checks the maintained matrix against a from-scratch
rebuild, so the speedups are for *identical* results.  Best-of-
``ROUNDS`` timings (robust against shared-machine noise) go to
``BENCH_slen_backend.json`` next to this file.

The exit status enforces the acceptance bars: edge-insertion
maintenance at least 4x faster on the dense backend for graphs with
>= 256 nodes (the blocked relax kernel measures at parity with PR 2's
monolithic one — ~4.5-6x depending on machine state — so the bar sits
below the noise floor of the sparse baseline, guarding against real
regressions rather than load spikes), bit-packed construction at least
2x faster than the boolean frontier at >= 512 nodes, and blocked
memory strictly below the dense-full baseline on the >= 10⁴-node
scaling rows.

Run with::

    PYTHONPATH=src python benchmarks/bench_slen_backend.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.spl.dense import DEFAULT_DENSE_BLOCK_SIZE
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import (
    SocialGraphSpec,
    generate_community_graph,
    generate_social_graph,
)
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

GRAPH_SIZES = (128, 256, 512)
#: Updates per maintenance stream.
STREAM = 32
ROUNDS = 5
BACKENDS = ("sparse", "dense")
#: The ≥10⁴ scaling axis (community graphs, one round — the signal is
#: the memory accounting and the order of magnitude, not microseconds).
SCALING_SIZES = (2048, 10240)
SCALING_HORIZON = 4
SCALING_COMMUNITY = 256
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_slen_backend.json"


def build_instance(num_nodes: int):
    data = generate_social_graph(
        SocialGraphSpec(
            name=f"bench-backend-{num_nodes}",
            num_nodes=num_nodes,
            num_edges=num_nodes * 5,
            seed=17,
        )
    )
    pattern = generate_pattern(
        PatternSpec(num_nodes=6, num_edges=6, labels=("PM", "SE", "TE"), seed=17)
    )
    return data, pattern


def stream_of(data, pattern, mix: str, seed: int):
    return generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=0, num_data_updates=STREAM, seed=seed, mix=mix
        ),
    ).data_updates()


def _edge_updates_only(updates, wanted):
    return [update for update in updates if type(update).__name__ == wanted]


def time_build(data, backend: str) -> float:
    started = time.perf_counter()
    matrix = SLenMatrix.from_graph(data, backend=backend)
    elapsed = time.perf_counter() - started
    assert matrix.number_of_nodes == data.number_of_nodes
    return elapsed


def time_stream(data, updates, backend: str) -> float:
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, backend=backend)
    started = time.perf_counter()
    for update in updates:
        update.apply(graph)
        update_slen(matrix, graph, update)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph)
    return elapsed


def time_coalesced(data, updates, backend: str) -> float:
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, backend=backend)
    started = time.perf_counter()
    compiled = compile_batch(updates)
    surviving = compiled.data_updates()
    for update in surviving:
        update.apply(graph)
    coalesce_slen(matrix, graph, surviving)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph)
    return elapsed


def best_of(timer, *args) -> float:
    """Best-of-``ROUNDS`` timing (robust against shared-machine noise)."""
    return min(timer(*args) for _ in range(ROUNDS))


def time_dense_build(data, frontier_mode: str, horizon=None) -> float:
    """Time one dense construction with the given BFS frontier mode."""
    kwargs = {} if horizon is None else {"horizon": horizon}
    started = time.perf_counter()
    matrix = SLenMatrix(data.nodes(), backend="dense", **kwargs)
    matrix.backend.frontier_mode = frontier_mode
    matrix.backend.build(data)
    elapsed = time.perf_counter() - started
    assert matrix.number_of_nodes == data.number_of_nodes
    return elapsed


def scaling_row(num_nodes: int) -> dict:
    """One ≥10⁴-axis measurement: builds + blocked memory accounting."""
    data = generate_community_graph(num_nodes, SCALING_COMMUNITY, seed=23)
    started = time.perf_counter()
    sparse = SLenMatrix.from_graph(data, horizon=SCALING_HORIZON, backend="sparse")
    sparse_seconds = time.perf_counter() - started
    started = time.perf_counter()
    dense = SLenMatrix.from_graph(data, horizon=SCALING_HORIZON, backend="dense")
    dense_seconds = time.perf_counter() - started
    assert dense == sparse, f"scaling parity failed at {num_nodes} nodes"
    backend = dense.backend
    return {
        "nodes": num_nodes,
        "edges": data.number_of_edges,
        "horizon": SCALING_HORIZON,
        "community": SCALING_COMMUNITY,
        "sparse_build_seconds": round(sparse_seconds, 6),
        "dense_build_seconds": round(dense_seconds, 6),
        "occupied_blocks": backend.occupied_blocks(),
        "total_blocks": backend.total_blocks(),
        "allocated_bytes": backend.allocated_bytes(),
        "dense_full_bytes": backend.dense_full_bytes(),
        "memory_ratio": round(
            backend.allocated_bytes() / max(1, backend.dense_full_bytes()), 4
        ),
    }


def main() -> int:
    results = []
    for num_nodes in GRAPH_SIZES:
        data, pattern = build_instance(num_nodes)
        inserts = _edge_updates_only(
            stream_of(data, pattern, "insert-heavy", seed=29), "EdgeInsertion"
        )
        deletes = _edge_updates_only(
            stream_of(data, pattern, "delete-heavy", seed=31), "EdgeDeletion"
        )
        mixed = stream_of(data, pattern, "balanced", seed=37)
        kernels = (
            ("build", time_build, ()),
            ("insert-edges", time_stream, (inserts,)),
            ("delete-edges", time_stream, (deletes,)),
            ("coalesced-mixed", time_coalesced, (mixed,)),
        )
        for kernel, timer, extra in kernels:
            timings = {}
            for backend in BACKENDS:
                args = (data, *extra, backend) if extra else (data, backend)
                timings[backend] = best_of(timer, *args)
            speedup = (
                round(timings["sparse"] / timings["dense"], 3)
                if timings["dense"]
                else None
            )
            row = {
                "nodes": num_nodes,
                "edges": data.number_of_edges,
                "kernel": kernel,
                "stream_updates": len(extra[0]) if extra else None,
                "sparse_seconds": round(timings["sparse"], 6),
                "dense_seconds": round(timings["dense"], 6),
                "speedup": speedup,
            }
            results.append(row)
            print(
                f"nodes={num_nodes:4d} kernel={kernel:15s} "
                f"sparse={timings['sparse'] * 1e3:9.2f} ms  "
                f"dense={timings['dense'] * 1e3:9.2f} ms  speedup={speedup}x",
                file=sys.stderr,
            )
    # ------------------------------------------------------------------
    # Construction-frontier section: bit-packed vs boolean BFS frontier.
    # ------------------------------------------------------------------
    construction = []
    for num_nodes in GRAPH_SIZES:
        data, _pattern = build_instance(num_nodes)
        boolean_seconds = best_of(time_dense_build, data, "boolean")
        bitset_seconds = best_of(time_dense_build, data, "bitset")
        speedup = round(boolean_seconds / bitset_seconds, 3) if bitset_seconds else None
        construction.append(
            {
                "nodes": num_nodes,
                "boolean_seconds": round(boolean_seconds, 6),
                "bitset_seconds": round(bitset_seconds, 6),
                "speedup": speedup,
            }
        )
        print(
            f"nodes={num_nodes:4d} kernel=build-frontier   "
            f"boolean={boolean_seconds * 1e3:8.2f} ms  "
            f"bitset={bitset_seconds * 1e3:8.2f} ms  speedup={speedup}x",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    # Scaling section: the ≥10⁴-node axis (one round; memory is exact).
    # ------------------------------------------------------------------
    scaling = []
    for num_nodes in SCALING_SIZES:
        row = scaling_row(num_nodes)
        scaling.append(row)
        print(
            f"nodes={num_nodes:5d} kernel=scaling-build   "
            f"sparse={row['sparse_build_seconds'] * 1e3:9.2f} ms  "
            f"dense={row['dense_build_seconds'] * 1e3:9.2f} ms  "
            f"blocks={row['occupied_blocks']}/{row['total_blocks']}  "
            f"memory={row['memory_ratio'] * 100:.1f}% of dense-full",
            file=sys.stderr,
        )

    payload = {
        "benchmark": "sparse vs dense SLen backend kernels",
        "stream_updates": STREAM,
        "rounds": ROUNDS,
        "horizon": "inf",
        "dense_block_size": DEFAULT_DENSE_BLOCK_SIZE,
        "results": results,
        "construction_frontier": construction,
        "scaling": scaling,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}", file=sys.stderr)
    # Acceptance bar 1: >= 4x on edge-insertion maintenance for
    # graphs >= 256 (see the module docstring for the bar's margin).
    failing = [
        row
        for row in results
        if row["kernel"] == "insert-edges"
        and row["nodes"] >= 256
        and (row["speedup"] is None or row["speedup"] < 4.0)
    ]
    if failing:
        print(
            f"FAIL: dense insert-edges speedup below 4x on {failing}",
            file=sys.stderr,
        )
        return 1
    # Acceptance bar 2: bit-packed construction >= 2x the boolean
    # frontier (the pre-blocked dense build) at >= 512 nodes.
    slow_construction = [
        row
        for row in construction
        if row["nodes"] >= 512 and (row["speedup"] is None or row["speedup"] < 2.0)
    ]
    if slow_construction:
        print(
            f"FAIL: bit-packed construction speedup below 2x on {slow_construction}",
            file=sys.stderr,
        )
        return 1
    # Acceptance bar 3: blocked memory below the dense-full O(n²)
    # baseline on the >= 10⁴-node scaling rows.
    oversized = [
        row
        for row in scaling
        if row["nodes"] >= 10_000 and row["allocated_bytes"] >= row["dense_full_bytes"]
    ]
    if oversized:
        print(
            f"FAIL: blocked layout not below the dense-full baseline on {oversized}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
