"""Benchmark: sparse vs. dense ``SLen`` backend kernels across graph sizes.

For each graph size in ``GRAPH_SIZES`` the script builds a synthetic
social graph and times, on both backends,

* **build** — full all-pairs construction (``SLenMatrix.from_graph``):
  per-source Python BFS (sparse) vs one frontier-array multi-source BFS
  (dense);
* **insert-edges** — per-update maintenance of a stream of edge
  insertions (:func:`repro.spl.incremental.update_slen`): the O(n²)
  Python relaxation loop vs the rank-1 broadcast kernel;
* **delete-edges** — per-update maintenance of a stream of edge
  deletions: per-source Dijkstra settles vs the batched affected-region
  recompute;
* **coalesced-mixed** — one compile + coalesced pass over a mixed batch.

Every run cross-checks the maintained matrix against a from-scratch
rebuild, so the speedups are for *identical* results.  Medians over
``ROUNDS`` runs go to ``BENCH_slen_backend.json`` next to this file.

The exit status enforces the acceptance bar: edge-insertion maintenance
must be at least 5x faster on the dense backend for graphs with >= 256
nodes.

Run with::

    PYTHONPATH=src python benchmarks/bench_slen_backend.py
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

GRAPH_SIZES = (128, 256, 512)
#: Updates per maintenance stream.
STREAM = 32
ROUNDS = 3
BACKENDS = ("sparse", "dense")
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_slen_backend.json"


def build_instance(num_nodes: int):
    data = generate_social_graph(
        SocialGraphSpec(
            name=f"bench-backend-{num_nodes}",
            num_nodes=num_nodes,
            num_edges=num_nodes * 5,
            seed=17,
        )
    )
    pattern = generate_pattern(
        PatternSpec(num_nodes=6, num_edges=6, labels=("PM", "SE", "TE"), seed=17)
    )
    return data, pattern


def stream_of(data, pattern, mix: str, seed: int):
    return generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=0, num_data_updates=STREAM, seed=seed, mix=mix
        ),
    ).data_updates()


def _edge_updates_only(updates, wanted):
    return [update for update in updates if type(update).__name__ == wanted]


def time_build(data, backend: str) -> float:
    started = time.perf_counter()
    matrix = SLenMatrix.from_graph(data, backend=backend)
    elapsed = time.perf_counter() - started
    assert matrix.number_of_nodes == data.number_of_nodes
    return elapsed


def time_stream(data, updates, backend: str) -> float:
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, backend=backend)
    started = time.perf_counter()
    for update in updates:
        update.apply(graph)
        update_slen(matrix, graph, update)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph)
    return elapsed


def time_coalesced(data, updates, backend: str) -> float:
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, backend=backend)
    started = time.perf_counter()
    compiled = compile_batch(updates)
    surviving = compiled.data_updates()
    for update in surviving:
        update.apply(graph)
    coalesce_slen(matrix, graph, surviving)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph)
    return elapsed


def median_of(timer, *args) -> float:
    return statistics.median(timer(*args) for _ in range(ROUNDS))


def main() -> int:
    results = []
    for num_nodes in GRAPH_SIZES:
        data, pattern = build_instance(num_nodes)
        inserts = _edge_updates_only(
            stream_of(data, pattern, "insert-heavy", seed=29), "EdgeInsertion"
        )
        deletes = _edge_updates_only(
            stream_of(data, pattern, "delete-heavy", seed=31), "EdgeDeletion"
        )
        mixed = stream_of(data, pattern, "balanced", seed=37)
        kernels = (
            ("build", time_build, ()),
            ("insert-edges", time_stream, (inserts,)),
            ("delete-edges", time_stream, (deletes,)),
            ("coalesced-mixed", time_coalesced, (mixed,)),
        )
        for kernel, timer, extra in kernels:
            timings = {}
            for backend in BACKENDS:
                args = (data, *extra, backend) if extra else (data, backend)
                timings[backend] = median_of(timer, *args)
            speedup = (
                round(timings["sparse"] / timings["dense"], 3)
                if timings["dense"]
                else None
            )
            row = {
                "nodes": num_nodes,
                "edges": data.number_of_edges,
                "kernel": kernel,
                "stream_updates": len(extra[0]) if extra else None,
                "sparse_seconds": round(timings["sparse"], 6),
                "dense_seconds": round(timings["dense"], 6),
                "speedup": speedup,
            }
            results.append(row)
            print(
                f"nodes={num_nodes:4d} kernel={kernel:15s} "
                f"sparse={timings['sparse'] * 1e3:9.2f} ms  "
                f"dense={timings['dense'] * 1e3:9.2f} ms  speedup={speedup}x",
                file=sys.stderr,
            )
    payload = {
        "benchmark": "sparse vs dense SLen backend kernels",
        "stream_updates": STREAM,
        "rounds": ROUNDS,
        "horizon": "inf",
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}", file=sys.stderr)
    # Acceptance bar: >= 5x on edge-insertion maintenance for graphs >= 256.
    failing = [
        row
        for row in results
        if row["kernel"] == "insert-edges"
        and row["nodes"] >= 256
        and (row["speedup"] is None or row["speedup"] < 5.0)
    ]
    if failing:
        print(
            f"FAIL: dense insert-edges speedup below 5x on {failing}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
