"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Label partition on/off for the initial ``SLen`` construction.
2. EH-Tree-based elimination analysis versus no analysis at all (the cost
   UA-GPNM adds on top of a plain batched amendment).
3. SLen storage backends: sparse dict rows, dense numpy export, Hybrid
   (ELL+COO) compression.
4. Incremental SLen maintenance versus full recomputation after a batch
   of updates.
"""

from __future__ import annotations

import pytest

from repro.elimination.detector import detect_all
from repro.elimination.eh_tree import EHTree
from repro.matching.affected import affected_set_from_delta
from repro.matching.candidates import candidate_set
from repro.matching.gpnm import gpnm_query
from repro.partition.partitioned_spl import build_slen_partitioned
from repro.spl.hybrid import HybridMatrix
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix
from repro.workloads.datasets import load_dataset
from repro.workloads.generators import DEFAULT_LABEL_ORDER
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

DATASET = "DBLP"


@pytest.fixture(scope="module")
def data():
    return load_dataset(DATASET, scale="quick")


@pytest.fixture(scope="module")
def pattern(data):
    labels = tuple(label for label in DEFAULT_LABEL_ORDER if label in data.labels())
    return generate_pattern(
        PatternSpec(
            num_nodes=8, num_edges=8, labels=labels, min_bound=2, max_bound=3,
            star_probability=0.0, respect_label_order=True, seed=5,
        )
    )


@pytest.fixture(scope="module")
def slen(data):
    return SLenMatrix.from_graph(data)


class TestPartitionAblation:
    def test_build_slen_plain(self, benchmark, data):
        result = benchmark.pedantic(SLenMatrix.from_graph, args=(data,), rounds=2, iterations=1)
        assert result.number_of_nodes == data.number_of_nodes

    def test_build_slen_partitioned(self, benchmark, data):
        result = benchmark.pedantic(build_slen_partitioned, args=(data,), rounds=2, iterations=1)
        assert result == SLenMatrix.from_graph(data)


class TestEliminationAblation:
    def test_detect_and_build_eh_tree(self, benchmark, data, pattern, slen):
        iquery = gpnm_query(pattern, data, slen, enforce_totality=False)
        batch = generate_update_batch(
            data, pattern, UpdateWorkloadSpec(num_pattern_updates=8, num_data_updates=40, seed=9)
        )
        working = data.copy()
        working_slen = slen.copy()
        candidates = [
            candidate_set(update, pattern, data, slen, iquery)
            for update in batch.pattern_updates()
        ]
        affected = []
        for update in batch.data_updates():
            update.apply(working)
            affected.append(
                affected_set_from_delta(update, update_slen(working_slen, working, update))
            )

        def analyse():
            analysis = detect_all(candidates, affected, working_slen)
            return EHTree.build(analysis, list(batch))

        tree = benchmark(analyse)
        assert tree.number_of_updates == len(batch)


class TestStorageBackendAblation:
    def test_dict_backend_lookups(self, benchmark, slen):
        nodes = sorted(slen.nodes(), key=repr)[:50]
        benchmark(lambda: [slen.distance(a, b) for a in nodes for b in nodes])

    def test_hybrid_backend_lookups(self, benchmark, slen):
        hybrid = HybridMatrix(slen)
        nodes = sorted(slen.nodes(), key=repr)[:50]
        benchmark(lambda: [hybrid.distance(a, b) for a in nodes for b in nodes])
        assert hybrid.compression_ratio > 0

    def test_dense_backend_export(self, benchmark, slen):
        dense, order = benchmark.pedantic(slen.to_dense, rounds=2, iterations=1)
        assert dense.shape == (len(order), len(order))


class TestIncrementalMaintenanceAblation:
    def test_incremental_maintenance(self, benchmark, data, pattern, slen):
        batch = generate_update_batch(
            data, pattern, UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=30, seed=13)
        )

        def maintain():
            working = data.copy()
            working_slen = slen.copy()
            for update in batch.data_updates():
                update.apply(working)
                update_slen(working_slen, working, update)
            return working_slen

        benchmark.pedantic(maintain, rounds=2, iterations=1)

    def test_full_recompute(self, benchmark, data, pattern):
        batch = generate_update_batch(
            data, pattern, UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=30, seed=13)
        )
        working = data.copy()
        for update in batch.data_updates():
            update.apply(working)
        benchmark.pedantic(SLenMatrix.from_graph, args=(working,), rounds=2, iterations=1)
