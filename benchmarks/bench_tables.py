"""Benchmarks regenerating Tables XI, XII, XIII and XIV.

Each benchmark aggregates the shared grid records into the corresponding
table and prints it next to the paper's reported numbers.  The aggregation
itself is what is timed (the grid run is shared session state); the
printed output is the reproduction artefact recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.report import (
    render_table_xi,
    render_table_xii,
    render_table_xiii,
    render_table_xiv,
)
from repro.experiments.tables import table_xi, table_xii, table_xiii, table_xiv


def test_table_xi_average_time_per_dataset(benchmark, grid_records):
    """Table XI: average query processing time per dataset."""
    result = benchmark(table_xi, grid_records)
    print()
    print(render_table_xi(grid_records))
    assert set(result) >= {"email-EU-core", "LiveJournal", "Average"}


def test_table_xii_reduction_per_dataset(benchmark, grid_records):
    """Table XII: UA-GPNM's query-time reduction per dataset."""
    result = benchmark(table_xii, grid_records)
    print()
    print(render_table_xii(grid_records))
    assert "INC-GPNM" in result["Average"]


def test_table_xiii_average_time_per_delta_scale(benchmark, grid_records):
    """Table XIII: average query processing time per ΔG scale."""
    result = benchmark(table_xiii, grid_records)
    print()
    print(render_table_xiii(grid_records))
    assert len(result) == 3


def test_table_xiv_reduction_per_delta_scale(benchmark, grid_records):
    """Table XIV: UA-GPNM's query-time reduction per ΔG scale."""
    result = benchmark(table_xiv, grid_records)
    print()
    print(render_table_xiv(grid_records))
    assert all("INC-GPNM" in row for row in result.values())


def test_reproduced_method_ordering(grid_records):
    """The headline shape: UA-GPNM <= EH-GPNM <= INC-GPNM on average."""
    averages = table_xi(grid_records)["Average"]
    assert averages["UA-GPNM"] <= averages["EH-GPNM"] <= averages["INC-GPNM"]
