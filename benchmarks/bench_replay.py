"""Record/replay fidelity and throughput of the journal replay harness.

Three phases, all deterministic:

* **Record** — a journaled multi-pattern service ingests a 600-update
  generated stream (mid-run subscribe/unsubscribe control records
  included), settling on its own cadence; the live ingest throughput is
  the baseline.
* **Replay sweep** — the journal's full window is replayed faithfully as
  the reference, then differentially verified against candidates that
  override one axis each: dense SLen backend, each explicit batch plan,
  and re-admitted boundaries.  **Any mismatch is fatal in every mode** —
  equivalence across configurations is the correctness contract of the
  whole harness, and a short run has no noise excuse.
* **Throughput gate** — the faithful reference replay must settle
  replayed updates at ≥ 0.5x the live ingest rate (replay does strictly
  more observation work per settle, but an order-of-magnitude collapse
  would make replay useless as a debugging loop).  Demoted to a warning
  under ``--quick``, where the window is small enough to be noisy.

Usage::

    PYTHONPATH=src python benchmarks/bench_replay.py [--quick] [--payloads N]

``--quick`` shortens the run for CI and writes ``BENCH_replay_quick.json``
(never the tracked artifact).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.replay import ReplayLog, verify_window  # noqa: E402
from repro.service import ServiceConfig, StreamingUpdateService  # noqa: E402
from repro.workloads import (  # noqa: E402
    PatternSpec,
    SocialGraphSpec,
    generate_pattern,
    generate_social_graph,
)
from repro.workloads.update_gen import generate_payload_stream  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_replay.json"

NUM_NODES = 256
NUM_EDGES = 1200
SEED = 2020
UPDATES_PER_PAYLOAD = 4

#: Replay must keep at least this fraction of the live ingest rate.
THROUGHPUT_RATIO_FLOOR = 0.5

#: The sweep: one overridden axis per candidate, against a faithful
#: reference under the recorded configuration.
CANDIDATES = [
    {"slen_backend": "dense"},
    {"batch_plan": "per-update"},
    {"batch_plan": "coalesced"},
    {"batch_plan": "partitioned"},
    {"mode": "readmit"},
]


def build_graph():
    return generate_social_graph(
        SocialGraphSpec(
            name="bench-replay", num_nodes=NUM_NODES, num_edges=NUM_EDGES, seed=SEED
        )
    )


def build_patterns(count: int = 3):
    labels = None
    patterns = []
    for index in range(count):
        if labels is None:
            labels = sorted(build_graph().labels())
        patterns.append(
            (
                f"p{index}",
                generate_pattern(
                    PatternSpec(
                        num_nodes=2 + index,
                        num_edges=2 + index,
                        labels=labels,
                        seed=SEED + index,
                    )
                ),
            )
        )
    return patterns


async def record(journal_dir: Path, payloads: int) -> dict:
    """The live run: journaled multi-pattern ingest with control records."""
    base = build_graph()
    patterns = build_patterns()
    config = ServiceConfig(
        deadline_seconds=0.02,
        max_buffer=512,
        coalesce_min_batch=16,
        journal_dir=str(journal_dir),
    )
    service = StreamingUpdateService(config)
    await service.register("bench", base)
    for pattern_id, pattern in patterns[:2]:
        await service.subscribe("bench", pattern_id, pattern, k=3)

    stream = list(
        generate_payload_stream(
            base,
            payloads=payloads,
            updates_per_payload=UPDATES_PER_PAYLOAD,
            seed=SEED,
        )
    )
    accepted = rejected = 0
    started = time.perf_counter()
    for index, payload in enumerate(stream):
        receipt = await service.submit("bench", payload)
        accepted += receipt.accepted
        rejected += receipt.rejected
        if index == payloads // 2:
            # Mid-run control records: the window must reproduce them.
            await service.unsubscribe("bench", patterns[1][0])
            await service.subscribe("bench", patterns[2][0], patterns[2][1], k=2)
    await service.drain()
    ingest_seconds = time.perf_counter() - started
    stats = service.stats("bench")
    errors = [repr(error) for _, error in service.errors]
    await service.close()
    return {
        "base": base,
        "payloads": payloads,
        "accepted": accepted,
        "rejected": rejected,
        "settles": stats["settles"],
        "ingest_seconds": ingest_seconds,
        "accepted_per_second": accepted / ingest_seconds if ingest_seconds else 0.0,
        "errors": errors,
    }


async def run_benchmark(payloads: int) -> dict:
    with TemporaryDirectory(prefix="bench-replay-") as scratch:
        journal_dir = Path(scratch)
        live = await record(journal_dir, payloads)
        window = ReplayLog(journal_dir / "bench.journal.jsonl").window(
            base_graph=live.pop("base")
        )
        reference, outcomes = await verify_window(window, CANDIDATES)
    return {
        "config": {
            "num_nodes": NUM_NODES,
            "num_edges": NUM_EDGES,
            "payloads": payloads,
            "updates_per_payload": UPDATES_PER_PAYLOAD,
            "throughput_ratio_floor": THROUGHPUT_RATIO_FLOOR,
            "seed": SEED,
        },
        "live": live,
        "window": window.describe(),
        "reference": {
            "overrides": reference.overrides,
            "settles": reference.settle_count,
            "updates_accepted": reference.updates_accepted,
            "updates_rejected": reference.updates_rejected,
            "wall_seconds": reference.wall_seconds,
            "updates_per_second": reference.throughput,
        },
        "throughput_ratio": (
            reference.throughput / live["accepted_per_second"]
            if live["accepted_per_second"]
            else 0.0
        ),
        "candidates": [
            {
                "overrides": candidate.overrides,
                "wall_seconds": candidate.wall_seconds,
                "updates_per_second": candidate.throughput,
                "verify": {
                    "ok": report.ok,
                    "settles_compared": report.settles_compared,
                    "patterns_compared": report.patterns_compared,
                    "slen_probes_compared": report.slen_probes_compared,
                    "as_of_versions_compared": report.as_of_versions_compared,
                    "mismatches": [m.as_dict() for m in report.mismatches],
                },
            }
            for candidate, report in outcomes
        ],
    }


def evaluate_gates(report: dict, quick: bool) -> list[str]:
    """Check the run's gates; returns failure messages (fatal ones first)."""
    failures = []
    live = report["live"]
    if live["rejected"]:
        failures.append(
            f"FATAL: {live['rejected']} updates rejected during the live recording "
            "(the generated stream is whole-stream admissible)"
        )
    if live["errors"]:
        failures.append(f"FATAL: live recording recorded errors: {live['errors']}")
    window = report["window"]
    expected_updates = report["config"]["payloads"] * UPDATES_PER_PAYLOAD
    if window["updates"] != expected_updates:
        failures.append(
            f"FATAL: the journal window holds {window['updates']} updates, expected "
            f"the full {expected_updates}-update stream"
        )
    reference = report["reference"]
    if reference["updates_rejected"]:
        failures.append(
            f"FATAL: the faithful reference replay rejected "
            f"{reference['updates_rejected']} updates it once accepted"
        )
    # The equivalence gate — fatal in EVERY mode, including --quick.
    for candidate in report["candidates"]:
        verify = candidate["verify"]
        if not verify["ok"]:
            details = "; ".join(
                f"[{m['kind']}] {m['location']}" for m in verify["mismatches"][:5]
            )
            failures.append(
                f"FATAL: candidate {candidate['overrides']} diverged from the "
                f"reference replay ({len(verify['mismatches'])} mismatch(es): {details})"
            )
        elif verify["patterns_compared"] == 0:
            failures.append(
                f"FATAL: candidate {candidate['overrides']} verified vacuously — "
                "no pattern states were compared"
            )
    # The throughput gate — demoted under --quick, where the window is
    # short enough for scheduling noise to dominate.
    prefix = "WARN" if quick else "FAIL"
    ratio = report["throughput_ratio"]
    if ratio < THROUGHPUT_RATIO_FLOOR:
        failures.append(
            f"{prefix}: faithful replay settles {ratio:.2f}x the live ingest rate, "
            f"below the {THROUGHPUT_RATIO_FLOOR:.1f}x floor"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--payloads", type=int, default=None, metavar="N",
        help="recorded payloads (default 150, or 40 with --quick)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short CI run: writes BENCH_replay_quick.json, throughput gate "
        "warns; the equivalence gate stays fatal",
    )
    args = parser.parse_args(argv)
    payloads = args.payloads if args.payloads is not None else (40 if args.quick else 150)

    # Settles are CPU-bound pure Python on executor threads; the default
    # GIL switch interval lets them starve the event loop.
    sys.setswitchinterval(0.001)
    report = asyncio.run(run_benchmark(payloads))

    # --quick produces reduced-fidelity data; never overwrite the
    # tracked artifact with it.
    output = OUTPUT.with_name("BENCH_replay_quick.json") if args.quick else OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    live, reference = report["live"], report["reference"]
    print(
        f"live: {live['accepted']} updates in {live['ingest_seconds']:.3f} s "
        f"({live['accepted_per_second']:.0f} updates/s, {live['settles']} settles)"
    )
    print(
        f"replay: {reference['updates_accepted']} updates re-settled in "
        f"{reference['wall_seconds']:.3f} s ({reference['updates_per_second']:.0f} "
        f"updates/s, ratio {report['throughput_ratio']:.2f}x live)"
    )
    for candidate in report["candidates"]:
        verify = candidate["verify"]
        label = ", ".join(
            f"{key}={value}"
            for key, value in candidate["overrides"].items()
            if key in ("mode", "slen_backend", "batch_plan")
        )
        print(
            f"verify [{label}]: {'OK' if verify['ok'] else 'MISMATCH'} "
            f"({verify['settles_compared']} settles, "
            f"{verify['patterns_compared']} pattern states, "
            f"{verify['slen_probes_compared']} slen probes, "
            f"{verify['as_of_versions_compared']} as_of versions compared)"
        )

    failures = evaluate_gates(report, quick=args.quick)
    fatal = [message for message in failures if not message.startswith("WARN")]
    for message in failures:
        print(message, file=sys.stderr)
    if failures and args.quick and not fatal:
        print("throughput gate demoted to a warning (--quick)", file=sys.stderr)
    return 1 if fatal else 0


if __name__ == "__main__":
    sys.exit(main())
