"""Benchmark: per-update vs. coalesced vs. partitioned ``SLen`` maintenance,
plus the execution planner's routing accuracy.

For each update mix in ``MIXES`` (balanced / insert-heavy / delete-heavy
— the ROADMAP's update-mix axis; deletions are where coalescing wins
big) and each batch size in ``BATCH_SIZES`` the script generates one
update workload on a synthetic social graph and times every requested
strategy (``--plan`` axis):

* **per-update** — one :func:`repro.spl.incremental.update_slen` call per
  data update (the INC-GPNM shape);
* **coalesced** — :func:`repro.batching.compiler.compile_batch` followed
  by one :func:`repro.batching.coalesce.coalesce_slen` pass;
* **partitioned** — the same pass with the partition-aware deletion
  settle (:func:`repro.partition.partitioned_spl.coalesce_slen_partitioned`);
* **auto** — run the execution planner
  (:func:`repro.batching.planner.plan_batch`) and execute whatever it
  picks, planning time included.

Every run is verified against the from-scratch matrix.  Results (median
over ``ROUNDS`` runs) are written to ``BENCH_batching.json`` next to
this file, including per-cell planner choices and the overall
``planner_choice_accuracy`` (fraction of cells where auto matched the
empirically fastest forced strategy).  The script exits non-zero when a
decisive coalescing cell regresses below 1x or when auto loses more
than 10% (plus a small absolute tolerance) to the best forced strategy.

``--telemetry-out PATH`` additionally records one
:class:`~repro.batching.telemetry.PlanObservation` per timed run —
exactly the input :func:`repro.batching.calibrate.refit_cost_model`
needs, which is how the CI calibration job produces its refit.
``--quick`` trims the grid for CI (fewer rounds, no tiny cells, and the
timing gates become warnings instead of failures — shared runners are
too noisy to gate on, and the calibration job gates on non-timing
assertions instead).

Run with::

    PYTHONPATH=src python benchmarks/bench_batching.py [--plan auto ...] \\
        [--quick] [--telemetry-out telemetry.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.batching.planner import DEFAULT_COST_MODEL, BatchStatistics, plan_batch
from repro.batching.telemetry import PlanObservation, TelemetryLog
from repro.partition.label_partition import LabelPartition
from repro.partition.partitioned_spl import coalesce_slen_partitioned
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

BATCH_SIZES = (1, 8, 64, 256)
#: The --quick grid: drops the tiny cells (they carry no calibration
#: signal) and keeps the decisive sizes around the crossover.
QUICK_BATCH_SIZES = (8, 64, 256)
MIXES = ("balanced", "insert-heavy", "delete-heavy")
FORCED = ("per-update", "coalesced", "partitioned")
PLANS = FORCED + ("auto",)
ROUNDS = 5
#: Matches the experiment harness's bounded distance index.
HORIZON = 4
#: Auto may lose this fraction (plus ABS_TOLERANCE) to the best forced
#: strategy before the script flags it.
AUTO_LOSS_LIMIT = 1.10
ABS_TOLERANCE_SECONDS = 0.002
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batching.json"


def build_instance():
    data = generate_social_graph(
        SocialGraphSpec(name="bench-batching", num_nodes=320, num_edges=1500, seed=11)
    )
    pattern = generate_pattern(
        PatternSpec(num_nodes=6, num_edges=6, labels=("PM", "SE", "TE"), seed=11)
    )
    return data, pattern


def workload(data, pattern, batch_size: int, mix: str):
    return generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=0,
            num_data_updates=batch_size,
            seed=23 + batch_size,
            mix=mix,
        ),
    ).data_updates()


def _run_strategy(strategy: str, graph, matrix, updates, partition=None) -> None:
    """Execute one maintenance strategy in place.

    ``partition`` is the pre-batch :class:`LabelPartition` (built
    outside the timed window), mirroring the warm cross-batch cache the
    algorithms keep: the partitioned route pays only the O(|batch|)
    deletion bookkeeping in-band, exactly like
    ``GPNMAlgorithm._settle_partition`` — so benchmark telemetry and
    algorithm telemetry measure the same quantity.
    """
    if strategy == "per-update":
        for update in updates:
            update.apply(graph)
            update_slen(matrix, graph, update)
        return
    compiled = compile_batch(updates)
    surviving = compiled.data_updates()
    if strategy == "partitioned" and partition is not None:
        for update in surviving:
            if update.is_deletion:
                partition.apply_update(update)
    for update in surviving:
        update.apply(graph)
    if strategy == "coalesced":
        coalesce_slen(matrix, graph, surviving)
    else:
        coalesce_slen_partitioned(matrix, graph, surviving, partition=partition)


def time_strategy(data, updates, strategy: str, telemetry=None) -> tuple[float, str]:
    """One timed run; returns (seconds, executed_strategy)."""
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, horizon=HORIZON)
    stats = BatchStatistics.from_updates(
        updates,
        node_count=graph.number_of_nodes,
        backend=matrix.backend_name,
        partition_available=True,
    )
    # The warm-cache analog: the pre-batch partition exists before the
    # batch arrives, so its construction is not part of the strategy
    # cost.  Only routes that can execute partitioned need it.
    partition = (
        LabelPartition.from_graph(graph)
        if strategy in ("partitioned", "auto")
        else None
    )
    started = time.perf_counter()
    executed = strategy
    if strategy == "auto":
        executed = plan_batch(stats).strategy
    _run_strategy(executed, graph, matrix, updates, partition=partition)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph, horizon=HORIZON)
    if telemetry is not None:
        telemetry.record(
            PlanObservation(
                statistics=stats,
                requested=strategy,
                planned=executed,
                executed=executed,
                predicted_costs=DEFAULT_COST_MODEL.estimate(stats),
                elapsed_seconds=elapsed,
                algorithm="bench_batching",
            )
        )
    return elapsed, executed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--plan",
        action="append",
        choices=PLANS,
        default=None,
        metavar="STRATEGY",
        help=(
            "strategy axis to benchmark (repeatable; default: all of "
            f"{', '.join(PLANS)})"
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help=f"runs per cell (default {ROUNDS})"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI grid: 3 rounds, no tiny cells, timing gates demoted to "
            "warnings (the calibration job gates on non-timing assertions)"
        ),
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="write one PlanObservation per timed run as a telemetry JSON log",
    )
    args = parser.parse_args(argv)
    plans = tuple(dict.fromkeys(args.plan)) if args.plan else PLANS
    batch_sizes = QUICK_BATCH_SIZES if args.quick else BATCH_SIZES
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else ROUNDS)
    telemetry = TelemetryLog() if args.telemetry_out else None
    # --quick produces reduced-fidelity data; never overwrite the
    # tracked full-grid artifact with it.
    output = OUTPUT.with_name("BENCH_batching_quick.json") if args.quick else OUTPUT

    data, pattern = build_instance()
    results = []
    matched_cells = 0
    accuracy_cells = 0
    auto_loss_violations = []
    for mix in MIXES:
        for batch_size in batch_sizes:
            updates = workload(data, pattern, batch_size, mix)
            eliminated = compile_batch(updates).report.eliminated
            timings: dict[str, float] = {}
            auto_choice = None
            for strategy in plans:
                samples = []
                for _ in range(rounds):
                    elapsed, executed = time_strategy(
                        data, updates, strategy, telemetry=telemetry
                    )
                    samples.append(elapsed)
                    if strategy == "auto":
                        auto_choice = executed
                timings[strategy] = statistics.median(samples)
            row = {
                "mix": mix,
                "batch_size": batch_size,
                "applied_updates": len(updates),
                "compiled_away": eliminated,
                "strategies": {
                    name: round(seconds, 6) for name, seconds in timings.items()
                },
            }
            # Back-compat fields for the original two-strategy report.
            if "per-update" in timings:
                row["per_update_seconds"] = round(timings["per-update"], 6)
            if "coalesced" in timings:
                row["coalesced_seconds"] = round(timings["coalesced"], 6)
            if "per-update" in timings and "coalesced" in timings:
                row["speedup"] = (
                    round(timings["per-update"] / timings["coalesced"], 3)
                    if timings["coalesced"]
                    else None
                )
            forced_present = [name for name in FORCED if name in timings]
            if forced_present:
                best_forced = min(forced_present, key=timings.get)
                row["best_forced"] = best_forced
                if "auto" in timings:
                    accuracy_cells += 1
                    row["auto_choice"] = auto_choice
                    row["auto_matches_best"] = auto_choice == best_forced
                    matched_cells += row["auto_matches_best"]
                    loss = (
                        timings["auto"] / timings[best_forced]
                        if timings[best_forced]
                        else 1.0
                    )
                    row["auto_loss"] = round(loss, 3)
                    if (
                        loss > AUTO_LOSS_LIMIT
                        and timings["auto"] - timings[best_forced] > ABS_TOLERANCE_SECONDS
                    ):
                        auto_loss_violations.append((mix, batch_size, loss))
            results.append(row)
            summary = "  ".join(
                f"{name}={seconds * 1e3:8.2f}ms" for name, seconds in timings.items()
            )
            print(f"mix={mix:13s} batch={batch_size:4d}  {summary}", file=sys.stderr)
    payload = {
        "benchmark": "SLen maintenance strategies (per-update / coalesced / partitioned / auto)",
        "graph": {"nodes": data.number_of_nodes, "edges": data.number_of_edges},
        "horizon": HORIZON,
        "rounds": rounds,
        "plans": list(plans),
        "planner_choice_accuracy": (
            round(matched_cells / accuracy_cells, 3) if accuracy_cells else None
        ),
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}", file=sys.stderr)
    if telemetry is not None:
        telemetry.save(args.telemetry_out)
        print(
            f"wrote {len(telemetry)} observations to {args.telemetry_out}",
            file=sys.stderr,
        )
    if accuracy_cells:
        print(
            f"planner choice accuracy: {matched_cells}/{accuracy_cells}",
            file=sys.stderr,
        )

    failed = False
    # Coalescing earns its keep on deletion-bearing batches well above
    # the fallback threshold; batch 64 sits at par (within noise of 1x),
    # so gating there would flake, and insert-heavy streams are a
    # documented non-win (the coalesced sweep does the same relaxations
    # plus attribution bookkeeping).  Only the decisive cells are gated.
    gated = [
        row
        for row in results
        if row["mix"] != "insert-heavy"
        and row["batch_size"] >= 256
        and row.get("speedup") is not None
    ]
    if any(row["speedup"] < 1.0 for row in gated):
        print(
            "WARNING: coalesced slower than per-update on a large deletion-bearing batch",
            file=sys.stderr,
        )
        failed = True
    # The acceptance gate: auto must never lose >10% wall-clock to the
    # best forced strategy (small absolute tolerance for tiny cells).
    for mix, batch_size, loss in auto_loss_violations:
        print(
            f"WARNING: auto lost {loss:.2f}x to the best forced strategy "
            f"(mix={mix}, batch={batch_size})",
            file=sys.stderr,
        )
        failed = True
    if failed and args.quick:
        # Shared CI runners are too noisy to gate on wall-clock; the
        # calibration job gates on the non-timing assertions instead.
        print("timing gates demoted to warnings (--quick)", file=sys.stderr)
        return 0
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
